//! The server-rendered web user interface (Fig. 3).
//!
//! The paper's UI is "Google Maps, calendars, dialog boxes, and common
//! HTML UI components such as text boxes, check boxes and radio
//! buttons"; offline, the map region picker becomes four numeric
//! bounding-box fields (see DESIGN.md substitutions), everything else is
//! the same form surface:
//!
//! * `GET /ui/login`, `POST /ui/login` — username/password login
//!   producing a session token (§5.4's web login system).
//! * `GET /ui/rules` — the rule-builder form plus the current rule list
//!   rendered from their canonical JSON.
//! * `POST /ui/rules` — creates a rule from the form fields and appends
//!   it to the contributor's rule set (bumping the epoch and syncing the
//!   broker, exactly like the API path).
//! * `GET /ui/data` — the contributor's data viewer (per-series stats).
//! * `GET /ui/audit` — the contributor's enforcement audit trail, paged
//!   backwards with `?before=<seq>`.
//! * `GET /ui/privacy` — the sharing-awareness dashboard: who receives
//!   the contributor's data, the outcome mix, per-rule hit counts with
//!   dead-rule highlighting, and the recent decision trend.
//!
//! Sessions travel in the `session` query parameter; the web username is
//! the contributor id.

use crate::service::Inner;
use sensorsafe_net::{Params, Request, Response, Router, Status};
use sensorsafe_policy::{
    AbstractionSpec, Action, ActivityAbs, BinaryAbs, Conditions, ConsumerSelector, LocationAbs,
    LocationCondition, PrivacyRule, TimeAbs, TimeCondition,
};
use sensorsafe_types::{
    ChannelId, ConsumerId, ContextKind, ContributorId, Region, RepeatTime, TimeOfDay, Weekday,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Escapes text for HTML interpolation.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn page(title: &str, body: &str) -> Response {
    Response::html(format!(
        "<!DOCTYPE html><html><head><title>{t} — SensorSafe</title></head>\
         <body><h1>{t}</h1>{body}</body></html>",
        t = escape(title)
    ))
}

/// Parses an `application/x-www-form-urlencoded` body.
fn parse_form(body: &[u8]) -> BTreeMap<String, String> {
    let text = String::from_utf8_lossy(body);
    let mut map = BTreeMap::new();
    for pair in text.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        map.insert(url_decode(k), url_decode(v));
    }
    map
}

fn url_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn require_session(inner: &Inner, req: &Request) -> Result<String, Response> {
    req.query
        .get("session")
        .and_then(|token| inner.sessions.validate(token))
        .ok_or_else(|| Response::error(Status::Unauthorized, "not logged in (see /ui/login)"))
}

fn login_form() -> Response {
    page(
        "Login",
        r#"<form method="post" action="/ui/login">
            <label>Username <input type="text" name="username"></label>
            <label>Password <input type="password" name="password"></label>
            <button type="submit">Log in</button>
        </form>"#,
    )
}

fn handle_login(inner: &Inner, req: &Request) -> Response {
    let form = parse_form(&req.body);
    let (Some(username), Some(password)) = (form.get("username"), form.get("password")) else {
        return Response::error(Status::BadRequest, "missing username or password");
    };
    if !inner.passwords.verify(username, password) {
        return Response::error(Status::Unauthorized, "bad credentials");
    }
    let token = inner.sessions.login(username);
    page(
        "Logged in",
        &format!(
            r#"<p>Welcome, {u}.</p>
            <ul>
              <li><a href="/ui/rules?session={t}">Privacy rules</a></li>
              <li><a href="/ui/data?session={t}">My data</a></li>
              <li><a href="/ui/audit?session={t}">Audit trail</a></li>
              <li><a href="/ui/privacy?session={t}">Sharing awareness</a></li>
            </ul>
            <p data-session-token="{t}"></p>"#,
            u = escape(username),
            t = token,
        ),
    )
}

/// The rule-builder form: the same condition/action surface as Table 1.
fn rules_form(session: &str) -> String {
    let context_boxes: String = ContextKind::ALL
        .iter()
        .map(|k| {
            format!(
                r#"<label><input type="checkbox" name="context" value="{k}">{k}</label>"#,
                k = k.as_str()
            )
        })
        .collect();
    let day_boxes: String = Weekday::ALL
        .iter()
        .map(|d| {
            format!(
                r#"<label><input type="checkbox" name="day" value="{d}">{d}</label>"#,
                d = d.as_str()
            )
        })
        .collect();
    let ladder = |name: &str, options: &[&str]| -> String {
        let opts: String = std::iter::once(String::from(r#"<option value=""></option>"#))
            .chain(
                options
                    .iter()
                    .map(|o| format!(r#"<option value="{o}">{o}</option>"#)),
            )
            .collect();
        format!(
            r#"<label>{name} <select name="abs_{lower}">{opts}</select></label>"#,
            lower = name.to_ascii_lowercase()
        )
    };
    format!(
        r#"<form method="post" action="/ui/rules?session={session}">
        <fieldset><legend>Consumer</legend>
          <label>User <input type="text" name="consumer"></label>
          <label>Group <input type="text" name="group"></label>
          <label>Study <input type="text" name="study"></label>
        </fieldset>
        <fieldset><legend>Location</legend>
          <label>Label <input type="text" name="location_label"></label>
          <label>South <input type="number" step="any" name="south"></label>
          <label>North <input type="number" step="any" name="north"></label>
          <label>West <input type="number" step="any" name="west"></label>
          <label>East <input type="number" step="any" name="east"></label>
        </fieldset>
        <fieldset><legend>Time</legend>
          {day_boxes}
          <label>From <input type="time" name="from"></label>
          <label>To <input type="time" name="to"></label>
        </fieldset>
        <fieldset><legend>Sensor</legend>
          <label>Channels (comma-separated) <input type="text" name="sensors"></label>
        </fieldset>
        <fieldset><legend>Context</legend>{context_boxes}</fieldset>
        <fieldset><legend>Action</legend>
          <label><input type="radio" name="action" value="Allow" checked>Allow</label>
          <label><input type="radio" name="action" value="Deny">Deny</label>
          <label><input type="radio" name="action" value="Abstraction">Abstraction</label>
          {loc_ladder}{time_ladder}{act_ladder}{stress_ladder}{smoke_ladder}{conv_ladder}
        </fieldset>
        <button type="submit">Add rule</button>
        </form>"#,
        loc_ladder = ladder(
            "Location",
            &[
                "Coordinates",
                "StreetAddress",
                "Zipcode",
                "City",
                "State",
                "Country",
                "NotShared"
            ]
        ),
        time_ladder = ladder(
            "Time",
            &["Milliseconds", "Hour", "Day", "Month", "Year", "NotShared"]
        ),
        act_ladder = ladder(
            "Activity",
            &["Raw", "TransportMode", "MoveNotMove", "NotShared"]
        ),
        stress_ladder = ladder("Stress", &["Raw", "Label", "NotShared"]),
        smoke_ladder = ladder("Smoking", &["Raw", "Label", "NotShared"]),
        conv_ladder = ladder("Conversation", &["Raw", "Label", "NotShared"]),
    )
}

fn handle_rules_page(inner: &Inner, req: &Request) -> Response {
    let username = match require_session(inner, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let id = ContributorId::new(username.clone());
    let rules_html = match inner.state.read_contributor(&id) {
        Some(account) => {
            let items: String = account
                .rules
                .iter()
                .map(|r| {
                    format!(
                        "<li><code>{}</code></li>",
                        escape(&sensorsafe_json::to_string_pretty(&r.to_json()))
                    )
                })
                .collect();
            format!(
                "<p>Rule epoch: {}</p><ol id=\"rules\">{items}</ol>",
                account.rule_epoch
            )
        }
        None => "<p>No contributor account.</p>".to_string(),
    };
    let session = req.query.get("session").cloned().unwrap_or_default();
    page(
        "Privacy Rules",
        &format!("{rules_html}{}", rules_form(&session)),
    )
}

/// Multi-valued form lookup (check-box groups repeat the key).
fn form_all(body: &[u8], key: &str) -> Vec<String> {
    let text = String::from_utf8_lossy(body);
    text.split('&')
        .filter_map(|pair| pair.split_once('='))
        .filter(|(k, _)| url_decode(k) == key)
        .map(|(_, v)| url_decode(v))
        .filter(|v| !v.is_empty())
        .collect()
}

fn rule_from_form(body: &[u8]) -> Result<PrivacyRule, String> {
    let form = parse_form(body);
    let get = |k: &str| form.get(k).filter(|v| !v.is_empty());
    let mut consumers = Vec::new();
    if let Some(u) = get("consumer") {
        consumers.push(ConsumerSelector::User(ConsumerId::new(u.clone())));
    }
    if let Some(g) = get("group") {
        consumers.push(ConsumerSelector::Group(sensorsafe_types::GroupId::new(
            g.clone(),
        )));
    }
    if let Some(s) = get("study") {
        consumers.push(ConsumerSelector::Study(sensorsafe_types::StudyId::new(
            s.clone(),
        )));
    }
    let mut location = LocationCondition::default();
    if let Some(label) = get("location_label") {
        location.labels.push(label.clone());
    }
    let bounds: Vec<Option<f64>> = ["south", "north", "west", "east"]
        .iter()
        .map(|k| get(k).and_then(|v| v.parse().ok()))
        .collect();
    if let [Some(south), Some(north), Some(west), Some(east)] = bounds[..] {
        if south > north {
            return Err("region south above north".into());
        }
        location.regions.push(Region::new(south, north, west, east));
    }
    let days: Vec<Weekday> = form_all(body, "day")
        .iter()
        .filter_map(|d| Weekday::parse(d))
        .collect();
    let mut time = TimeCondition::default();
    if let (Some(from), Some(to)) = (get("from"), get("to")) {
        let from = TimeOfDay::parse(from).ok_or("bad 'from' time")?;
        let to = TimeOfDay::parse(to).ok_or("bad 'to' time")?;
        time.repeats.push(RepeatTime::new(days, from, to));
    }
    let sensors: Vec<ChannelId> = get("sensors")
        .map(|s| {
            s.split(',')
                .map(str::trim)
                .filter(|c| !c.is_empty())
                .map(ChannelId::new)
                .collect()
        })
        .unwrap_or_default();
    let contexts: Vec<ContextKind> = form_all(body, "context")
        .iter()
        .filter_map(|c| ContextKind::parse(c))
        .collect();
    let action = match get("action").map(String::as_str) {
        Some("Allow") | None => Action::Allow,
        Some("Deny") => Action::Deny,
        Some("Abstraction") => {
            let spec = AbstractionSpec {
                location: get("abs_location").and_then(|v| LocationAbs::parse(v)),
                time: get("abs_time").and_then(|v| TimeAbs::parse(v)),
                activity: get("abs_activity").and_then(|v| ActivityAbs::parse(v)),
                stress: get("abs_stress").and_then(|v| BinaryAbs::parse(v)),
                smoking: get("abs_smoking").and_then(|v| BinaryAbs::parse(v)),
                conversation: get("abs_conversation").and_then(|v| BinaryAbs::parse(v)),
            };
            if spec.is_empty() {
                return Err("abstraction action needs at least one ladder level".into());
            }
            Action::Abstraction(spec)
        }
        Some(other) => return Err(format!("unknown action '{other}'")),
    };
    Ok(PrivacyRule {
        conditions: Conditions {
            consumers,
            location: (!location.is_empty()).then_some(location),
            time: (!time.is_empty()).then_some(time),
            sensors,
            contexts,
        },
        action,
    })
}

fn handle_rules_post(inner: &Inner, req: &Request) -> Response {
    let username = match require_session(inner, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let rule = match rule_from_form(&req.body) {
        Ok(r) => r,
        Err(e) => return Response::error(Status::BadRequest, &e),
    };
    let id = ContributorId::new(username);
    let (epoch, rules) = {
        let Some(mut account) = inner.state.write_contributor(&id) else {
            return Response::error(Status::NotFound, "no contributor account");
        };
        let mut rules = account.rules.clone();
        rules.push(rule);
        (account.set_rules(rules.clone()), rules)
    };
    inner.push_rules_to_broker(&id, epoch, &rules);
    page(
        "Rule added",
        &format!(
            r#"<p>Rule stored; epoch is now {epoch}.</p>
            <a href="/ui/rules?session={s}">Back to rules</a>"#,
            s = req.query.get("session").cloned().unwrap_or_default()
        ),
    )
}

/// Rows the audit page shows per request.
const AUDIT_PAGE_ROWS: usize = 50;

/// `GET /ui/audit` — the contributor's view of the enforcement audit
/// ledger: who asked for their data, what the policy engine decided,
/// which rules matched, and the trace id to follow the request with.
/// The contributor filter and row limit are pushed down into the ledger
/// (`AuditLedger::page` does one backward scan — no full-ledger
/// materialization), and `?before=<seq>` pages backwards in time.
fn handle_audit_page(inner: &Inner, req: &Request) -> Response {
    let username = match require_session(inner, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let before = req.query.get("before").and_then(|v| v.parse::<u64>().ok());
    let page_result = inner.ledger.page(&sensorsafe_obsv::AuditFilter {
        contributor: Some(username.clone()),
        before,
        limit: AUDIT_PAGE_ROWS,
        ..Default::default()
    });
    let rows: String = page_result
        .records
        .iter()
        .rev() // newest first for the reader
        .map(|r| {
            let rules = r
                .matched_rules
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
                 <td><code>{:016x}</code></td></tr>",
                r.seq,
                r.unix_ms,
                escape(&r.consumer),
                r.outcome.as_str(),
                escape(&rules),
                r.trace_id,
            )
        })
        .collect();
    // When the page is full and its oldest row isn't seq 0, there may be
    // older matches — link the next page with that seq as the cursor.
    let older = match page_result.records.first() {
        Some(oldest) if page_result.records.len() == AUDIT_PAGE_ROWS && oldest.seq > 0 => {
            format!(
                r#"<p><a href="/ui/audit?session={s}&amp;before={b}">Older decisions</a></p>"#,
                s = req.query.get("session").cloned().unwrap_or_default(),
                b = oldest.seq
            )
        }
        _ => String::new(),
    };
    let body = format!(
        "<p>{matched} decision(s) recorded for you; newest first \
         (up to {AUDIT_PAGE_ROWS} shown).</p>\
         <table id=\"audit\">\
         <tr><th>#</th><th>Time (unix ms)</th><th>Consumer</th>\
         <th>Decision</th><th>Matched rules</th><th>Trace</th></tr>{rows}</table>{older}",
        matched = page_result.matched,
    );
    page(&format!("Audit trail of {username}"), &body)
}

/// `GET /ui/privacy` — the sharing-awareness dashboard (the paper's §6
/// "who is receiving my data" question, answered from the decision
/// stream): top consumers with their outcome mix, per-rule hit counts
/// with dead rules highlighted, baseline-only flows, and the recent
/// decision trend.
fn handle_privacy_page(inner: &Inner, req: &Request) -> Response {
    let username = match require_session(inner, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let s = inner.awareness.contributor_summary(&username);
    let consumer_rows: String = s
        .consumers
        .iter()
        .map(|f| {
            let note = if f.baseline_only {
                " <em>(baseline only — no rule governs this flow)</em>"
            } else {
                ""
            };
            format!(
                "<tr><td>{}{note}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                escape(&f.consumer),
                f.counts.allowed,
                f.counts.abstracted,
                f.counts.denied,
                f.counts.total(),
            )
        })
        .collect();
    let rule_rows: String = s
        .rule_hits
        .iter()
        .map(|r| {
            let epoch_note = if r.current { " (current)" } else { "" };
            format!(
                "<tr><td>{}{epoch_note}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                r.epoch, r.rule, r.hits, r.last_unix_ms,
            )
        })
        .collect();
    let dead = if s.dead_rules.is_empty() {
        "<p>No dead rules: every current rule has matched at least once.</p>".to_string()
    } else {
        format!(
            "<p class=\"dead-rules\"><strong>Dead rules</strong> (never matched since \
             epoch {}): {}</p>",
            s.rule_epoch,
            s.dead_rules
                .iter()
                .map(|i| format!("#{i}"))
                .collect::<Vec<_>>()
                .join(", ")
        )
    };
    let trend_rows: String = s
        .trend
        .iter()
        .map(|p| {
            format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                p.bucket_unix_secs, p.allowed, p.abstracted, p.denied,
            )
        })
        .collect();
    let body = format!(
        "<p>{total} decision(s) observed ({allowed} allowed, {abstracted} abstracted, \
         {denied} denied; {baseline} matched no rule; {suppressed} channel(s) suppressed \
         by dependency closure). Rule set epoch {epoch} with {rules} rule(s).</p>\
         <h2>Consumers (busiest first)</h2>\
         <table id=\"consumers\"><tr><th>Consumer</th><th>Allowed</th>\
         <th>Abstracted</th><th>Denied</th><th>Total</th></tr>{consumer_rows}</table>\
         <h2>Rule hits</h2>{dead}\
         <table id=\"rule-hits\"><tr><th>Epoch</th><th>Rule</th><th>Hits</th>\
         <th>Last match (unix ms)</th></tr>{rule_rows}</table>\
         <h2>Recent trend ({bucket}s buckets)</h2>\
         <table id=\"trend\"><tr><th>Bucket (unix s)</th><th>Allowed</th>\
         <th>Abstracted</th><th>Denied</th></tr>{trend_rows}</table>\
         <p>Aggregates digest <code>{digest}</code> — reproducible offline by \
         replaying the audit ledger (docs/OPERATIONS.md).</p>",
        total = s.counts.total(),
        allowed = s.counts.allowed,
        abstracted = s.counts.abstracted,
        denied = s.counts.denied,
        baseline = s.counts.baseline,
        suppressed = s.suppressed_channels,
        epoch = s.rule_epoch,
        rules = s.rule_count,
        bucket = sensorsafe_obsv::awareness::TREND_BUCKET_SECS,
        digest = s.digest,
    );
    page(&format!("Sharing awareness for {username}"), &body)
}

fn handle_data_page(inner: &Inner, req: &Request) -> Response {
    let username = match require_session(inner, req) {
        Ok(u) => u,
        Err(resp) => return resp,
    };
    let id = ContributorId::new(username.clone());
    let body = match inner.state.read_contributor(&id) {
        Some(account) => {
            let stats = account.store.stats();
            format!(
                "<table id=\"stats\">\
                 <tr><th>Segments</th><td>{}</td></tr>\
                 <tr><th>Samples</th><td>{}</td></tr>\
                 <tr><th>Approx. bytes</th><td>{}</td></tr>\
                 <tr><th>Merges</th><td>{}</td></tr>\
                 <tr><th>Annotations</th><td>{}</td></tr>\
                 </table>",
                stats.segments, stats.samples, stats.approx_bytes, stats.merges, stats.annotations
            )
        }
        None => "<p>No contributor account.</p>".to_string(),
    };
    page(&format!("Data of {username}"), &body)
}

/// `GET /ui/spans` — the continuous span-stats table (profiling plane),
/// behind a session like every other UI page.
fn handle_spans_page(inner: &Inner, req: &Request) -> Response {
    if let Err(resp) = require_session(inner, req) {
        return resp;
    }
    let body = format!(
        "<p>Per-span timing since process start. Pull folded stacks from \
         <code>/debug/profile?seconds=5</code> for a flamegraph.</p>\n{}",
        sensorsafe_net::spans_table_html()
    );
    page("Profiling spans", &body)
}

/// Mounts the web UI onto the service's router.
pub(crate) fn mount(router: &mut Router, inner: Arc<Inner>) {
    {
        router.get("/ui/login", move |_: &Request, _: &Params| login_form());
    }
    {
        let inner = inner.clone();
        router.post("/ui/login", move |req: &Request, _: &Params| {
            handle_login(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.get("/ui/rules", move |req: &Request, _: &Params| {
            handle_rules_page(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.post("/ui/rules", move |req: &Request, _: &Params| {
            handle_rules_post(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.get("/ui/data", move |req: &Request, _: &Params| {
            handle_data_page(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.get("/ui/audit", move |req: &Request, _: &Params| {
            handle_audit_page(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.get("/ui/privacy", move |req: &Request, _: &Params| {
            handle_privacy_page(&inner, req)
        });
    }
    {
        let inner = inner.clone();
        router.get("/ui/spans", move |req: &Request, _: &Params| {
            handle_spans_page(&inner, req)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{DataStoreConfig, DataStoreService};
    use sensorsafe_json::json;
    use sensorsafe_net::Service;

    fn logged_in_service() -> (DataStoreService, String) {
        let (svc, admin) = DataStoreService::new(DataStoreConfig::default());
        // Create Alice the contributor + her web login.
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Created);
        assert!(svc.create_web_user("alice", "hunter2"));
        // Log in through the form.
        let mut login = Request {
            method: sensorsafe_net::Method::Post,
            path: "/ui/login".into(),
            query: Default::default(),
            headers: Default::default(),
            body: b"username=alice&password=hunter2".to_vec(),
            idempotent: false,
        };
        login.headers.insert(
            "content-type".into(),
            "application/x-www-form-urlencoded".into(),
        );
        let resp = svc.handle(&login);
        assert_eq!(resp.status, Status::Ok);
        let html = String::from_utf8(resp.body).unwrap();
        let token = html
            .split("data-session-token=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .to_string();
        (svc, token)
    }

    #[test]
    fn login_page_has_form_components() {
        let (svc, _) = DataStoreService::new(DataStoreConfig::default());
        let resp = svc.handle(&Request::get("/ui/login"));
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("type=\"password\""));
        assert!(html.contains("action=\"/ui/login\""));
    }

    #[test]
    fn bad_credentials_rejected() {
        let (svc, _) = DataStoreService::new(DataStoreConfig::default());
        svc.create_web_user("alice", "right");
        let mut login = Request::get("/ui/login");
        login.method = sensorsafe_net::Method::Post;
        login.body = b"username=alice&password=wrong".to_vec();
        assert_eq!(svc.handle(&login).status, Status::Unauthorized);
    }

    #[test]
    fn rules_page_requires_session() {
        let (svc, _) = logged_in_service();
        let resp = svc.handle(&Request::get("/ui/rules"));
        assert_eq!(resp.status, Status::Unauthorized);
        let resp = svc.handle(&Request::get("/ui/rules").with_query("session", "forged-token"));
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn rules_page_shows_fig3_components() {
        let (svc, token) = logged_in_service();
        let resp = svc.handle(&Request::get("/ui/rules").with_query("session", token));
        assert_eq!(resp.status, Status::Ok);
        let html = String::from_utf8(resp.body).unwrap();
        // The Fig. 3 form surface: check boxes, radio buttons, text
        // boxes, the region fields, every context, every ladder.
        assert!(html.contains("type=\"checkbox\""));
        assert!(html.contains("type=\"radio\""));
        assert!(html.contains("type=\"text\""));
        assert!(html.contains("name=\"south\""));
        for k in ContextKind::ALL {
            assert!(html.contains(k.as_str()), "missing context {k}");
        }
        assert!(html.contains("abs_location"));
        assert!(html.contains("NotShared"));
    }

    #[test]
    fn posting_the_fig4_rule_through_the_form() {
        let (svc, token) = logged_in_service();
        // Rule 2 of Fig. 4: Bob @ UCLA, weekdays 9-6, conversation →
        // stress NotShared.
        let body = "consumer=Bob&location_label=UCLA\
            &day=Mon&day=Tue&day=Wed&day=Thu&day=Fri\
            &from=9%3A00am&to=6%3A00pm&context=Conversation\
            &action=Abstraction&abs_stress=NotShared";
        let mut req = Request::get("/ui/rules").with_query("session", token.clone());
        req.method = sensorsafe_net::Method::Post;
        req.body = body.as_bytes().to_vec();
        let resp = svc.handle(&req);
        assert_eq!(
            resp.status,
            Status::Ok,
            "{:?}",
            String::from_utf8(resp.body)
        );
        // The rule shows up on the rules page and in the API model.
        let resp = svc.handle(&Request::get("/ui/rules").with_query("session", token));
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("Conversation"));
        let id = ContributorId::new("alice");
        let (epoch, rules) = svc
            .state()
            .with_contributor(&id, |a| (a.rule_epoch, a.rules.clone()))
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(rules.len(), 1);
        let rule = &rules[0];
        assert_eq!(
            rule.conditions.consumers,
            vec![ConsumerSelector::User(ConsumerId::new("Bob"))]
        );
        assert_eq!(rule.conditions.contexts, vec![ContextKind::Conversation]);
        let repeat = &rule.conditions.time.as_ref().unwrap().repeats[0];
        assert_eq!(repeat.days.len(), 5);
        assert_eq!(repeat.from, TimeOfDay::new(9, 0));
        match &rule.action {
            Action::Abstraction(spec) => {
                assert_eq!(spec.stress, Some(BinaryAbs::NotShared))
            }
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn form_validation_errors() {
        let (svc, token) = logged_in_service();
        for bad in [
            "action=Abstraction", // no ladder level
            "south=2.0&north=1.0&west=0&east=1&action=Deny",
            "from=9%3A00am&to=nonsense&action=Deny",
            "action=Teleport",
        ] {
            let mut req = Request::get("/ui/rules").with_query("session", token.clone());
            req.method = sensorsafe_net::Method::Post;
            req.body = bad.as_bytes().to_vec();
            assert_eq!(
                svc.handle(&req).status,
                Status::BadRequest,
                "should reject {bad}"
            );
        }
    }

    #[test]
    fn data_page_shows_stats_table() {
        let (svc, token) = logged_in_service();
        let resp = svc.handle(&Request::get("/ui/data").with_query("session", token));
        assert_eq!(resp.status, Status::Ok);
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("id=\"stats\""));
        assert!(html.contains("Segments"));
    }

    #[test]
    fn audit_page_lists_enforcement_decisions() {
        let (svc, token) = logged_in_service();
        // Session required.
        assert_eq!(
            svc.handle(&Request::get("/ui/audit")).status,
            Status::Unauthorized
        );
        // Empty ledger renders an empty table.
        let resp = svc.handle(&Request::get("/ui/audit").with_query("session", token.clone()));
        assert_eq!(resp.status, Status::Ok);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("id=\"audit\""));
        // A consumer query leaves a visible decision row.
        svc.audit_ledger().append(sensorsafe_obsv::DecisionRecord {
            seq: 0,
            unix_ms: 42,
            trace_id: 0xabcd,
            rule_epoch: 1,
            contributor: "alice".into(),
            consumer: "bob".into(),
            matched_rules: vec![1],
            outcome: sensorsafe_obsv::audit::Outcome::Denied,
            suppressed_channels: 0,
        });
        let resp = svc.handle(&Request::get("/ui/audit").with_query("session", token));
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("bob"), "{html}");
        assert!(html.contains("denied"));
        assert!(html.contains("000000000000abcd"));
    }

    #[test]
    fn audit_page_paginates_backwards_with_before() {
        let (svc, token) = logged_in_service();
        // 120 decisions for alice interleaved with noise from another
        // contributor: the page must show only alice's newest 50 and the
        // "Older" cursor must walk her history, not raw sequence numbers.
        for i in 0..120u64 {
            svc.audit_ledger().append(sensorsafe_obsv::DecisionRecord {
                seq: 0,
                unix_ms: i,
                trace_id: i,
                rule_epoch: 1,
                contributor: if i % 3 == 0 { "mallory" } else { "alice" }.into(),
                consumer: format!("c{i}"),
                matched_rules: vec![],
                outcome: sensorsafe_obsv::audit::Outcome::Allowed,
                suppressed_channels: 0,
            });
        }
        let resp = svc.handle(&Request::get("/ui/audit").with_query("session", token.clone()));
        let html = String::from_utf8(resp.body).unwrap();
        // 80 of the 120 belong to alice; the newest 50 are shown.
        assert!(html.contains("80 decision(s)"), "{html}");
        assert!(html.contains("c119"));
        assert!(!html.contains("<td>c117</td>")); // mallory's row stays filtered out
        let before = html
            .split("before=")
            .nth(1)
            .expect("older link present")
            .split('"')
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap();
        let resp = svc.handle(
            &Request::get("/ui/audit")
                .with_query("session", token)
                .with_query("before", before.to_string()),
        );
        let html = String::from_utf8(resp.body).unwrap();
        // The older page holds strictly older rows and never repeats the
        // cursor row.
        assert!(html.contains("80 decision(s)"));
        assert!(!html.contains("c119"), "{html}");
    }

    #[test]
    fn privacy_page_shows_awareness_summary() {
        let (svc, token) = logged_in_service();
        // Session required, like every UI page.
        assert_eq!(
            svc.handle(&Request::get("/ui/privacy")).status,
            Status::Unauthorized
        );
        // Two rules live, one decision that matched only rule 0: rule 1
        // is dead; carol's flow is rule-governed, dave's baseline-only.
        svc.awareness().note_rule_set("alice", 2, 2);
        svc.awareness().observe(&sensorsafe_obsv::DecisionRecord {
            seq: 0,
            unix_ms: 60_000,
            trace_id: 1,
            rule_epoch: 2,
            contributor: "alice".into(),
            consumer: "carol".into(),
            matched_rules: vec![0],
            outcome: sensorsafe_obsv::audit::Outcome::Abstracted,
            suppressed_channels: 2,
        });
        svc.awareness().observe(&sensorsafe_obsv::DecisionRecord {
            seq: 1,
            unix_ms: 120_000,
            trace_id: 2,
            rule_epoch: 2,
            contributor: "alice".into(),
            consumer: "dave".into(),
            matched_rules: vec![],
            outcome: sensorsafe_obsv::audit::Outcome::Allowed,
            suppressed_channels: 0,
        });
        let resp = svc.handle(&Request::get("/ui/privacy").with_query("session", token));
        assert_eq!(resp.status, Status::Ok);
        let html = String::from_utf8(resp.body).unwrap();
        assert!(html.contains("id=\"consumers\""), "{html}");
        assert!(html.contains("carol"));
        assert!(html.contains("baseline only"), "{html}");
        assert!(html.contains("Dead rules"), "{html}");
        assert!(html.contains("#1"));
        assert!(html.contains("id=\"rule-hits\""));
        assert!(html.contains("id=\"trend\""));
        assert!(html.contains("Aggregates digest"));
    }

    #[test]
    fn html_escaping() {
        assert_eq!(escape("<b>&\"x\""), "&lt;b&gt;&amp;&quot;x&quot;");
    }

    #[test]
    fn form_parsing() {
        let form = parse_form(b"a=1&b=hello+world&c=%E4%B8%96");
        assert_eq!(form["a"], "1");
        assert_eq!(form["b"], "hello world");
        assert_eq!(form["c"], "世");
        assert_eq!(form_all(b"x=1&x=2&y=3&x=", "x"), vec!["1", "2"]);
    }
}
