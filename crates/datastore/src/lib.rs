#![deny(missing_docs)]
//! The SensorSafe remote data store server (Fig. 2, left).
//!
//! One data store hosts one or more contributors' data (a personal
//! machine hosts one; an institutional server hosts its study's
//! participants, per the IRB requirement of §1). Every API access passes
//! the authentication layer ([`sensorsafe_auth::KeyRing`]); data
//! consumers reach data only through the **query/privacy processing
//! module** ([`pipeline`]), which evaluates the contributor's privacy
//! rules per context window and rewrites segments before they leave the
//! server.
//!
//! * [`state`] — per-contributor accounts (segment store, rules, labeled
//!   places) and registered consumers.
//! * [`pipeline`] — the enforcement pipeline: query → window split →
//!   rule evaluation → rewritten [`SharedSegment`](sensorsafe_policy::SharedSegment)s, plus the JSON wire
//!   codec for shared views.
//! * [`service`] — the HTTP API surface (register / upload / query /
//!   rules / places) and broker rule-sync hooks (§5.2).
//! * [`web`] — the server-rendered web UI (Fig. 3): login, rule builder,
//!   data viewer.

pub mod pipeline;
pub mod repl;
pub mod service;
pub mod state;
pub mod web;

pub use pipeline::{shared_view, shared_view_from_json, shared_view_to_json, SharedView};
pub use repl::{ReplShipper, ReplicaLink};
pub use service::{
    annotation_to_json, BrokerLink, DataStoreConfig, DataStoreService, StorageEngine,
};
pub use state::{
    ConsumerAccount, ContributorAccount, ContributorReadGuard, ContributorWriteGuard,
    DataStoreState, LockMode,
};
