//! Server-side state: contributor and consumer accounts.
//!
//! # Sharding and lock order
//!
//! Mutable state is sharded per contributor: a lock-striped *directory*
//! maps contributor ids to `Arc<RwLock<ContributorAccount>>`, so uploads
//! to one contributor never contend with queries against another. The
//! lock hierarchy (also documented in DESIGN.md §7) is:
//!
//! 1. **Directory stripe** (`RwLock` over one stripe's id → account map)
//!    — held only long enough to clone the account `Arc`, never while an
//!    account lock is held.
//! 2. **Account lock** (`RwLock<ContributorAccount>`) — held for the
//!    duration of one request's work on that contributor. At most one
//!    account lock per thread.
//! 3. **Compiled-rule cache** (`Mutex` inside the account) — leaf lock,
//!    held only to read or replace the cached `Arc<CompiledRules>`.
//!
//! Debug builds assert this order (`mod lock_order`): acquiring a stripe
//! while holding an account lock, or a second account lock, panics.
//!
//! [`LockMode::GlobalLock`] layers the seed's coarse single-lock behavior
//! on top (every access also takes one global `RwLock`), kept as the
//! baseline the `c1_concurrency` bench compares against.
//!
//! WAL group commit (DESIGN.md §8) deliberately sits *outside* this
//! hierarchy: durable uploads stage log records while holding the
//! account write lock, but wait for the batch fsync only after every
//! lock above has been released, so disk latency never extends an
//! account-lock hold.

use parking_lot::{
    ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use sensorsafe_policy::{CompiledRules, PrivacyRule};
use sensorsafe_store::{GroupCommitConfig, MergePolicy, SegmentStore, StoreError, StoreJournal};
use sensorsafe_types::{ConsumerId, ContributorId, GeoPoint, GroupId, Region, StudyId};
use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Instant;

/// Number of directory stripes. Contention on the directory itself is
/// rare (registration only); 16 stripes keep even registration bursts
/// spread out without meaningfully growing the state footprint.
const STRIPES: usize = 16;

/// One contributor hosted on this data store.
pub struct ContributorAccount {
    /// The contributor's unique name.
    pub id: ContributorId,
    /// Their sensor data.
    pub store: SegmentStore,
    /// Their privacy rules (order is irrelevant: evaluation is
    /// most-restrictive-wins).
    pub rules: Vec<PrivacyRule>,
    /// Monotonic rule version, bumped on every change and carried in
    /// broker sync messages.
    pub rule_epoch: u64,
    /// Labeled places ("home", "UCLA") drawn on the map UI; a window's
    /// location labels are the labels whose region contains its point.
    pub places: Vec<(String, Region)>,
    /// Lazily compiled rules, keyed by the epoch they were compiled at.
    /// An epoch bump invalidates the entry; the next enforcement pass
    /// recompiles once and every request after that shares the `Arc`.
    compiled: Mutex<Option<(u64, Arc<CompiledRules>)>>,
}

impl ContributorAccount {
    /// A fresh account with an in-memory store and no rules (deny-by-
    /// default shares nothing until the contributor writes rules).
    pub fn new(id: ContributorId, merge: MergePolicy) -> ContributorAccount {
        ContributorAccount {
            id,
            store: SegmentStore::in_memory(merge),
            rules: Vec::new(),
            rule_epoch: 0,
            places: Vec::new(),
            compiled: Mutex::new(None),
        }
    }

    /// A durable account whose store replays from `wal_path`, using the
    /// default group-commit batching.
    pub fn open(
        id: ContributorId,
        wal_path: impl AsRef<std::path::Path>,
        merge: MergePolicy,
    ) -> Result<ContributorAccount, StoreError> {
        ContributorAccount::open_with(id, wal_path, merge, GroupCommitConfig::default())
    }

    /// [`ContributorAccount::open`] with explicit WAL group-commit
    /// batching configuration.
    ///
    /// Durable uploads stage records under this account's write lock and
    /// wait for the batch commit *after* releasing it (the stage-then-
    /// wait path; DESIGN.md §8), so `wal_config` bounds how long an
    /// acked upload can wait and how many concurrent uploads share one
    /// fsync.
    pub fn open_with(
        id: ContributorId,
        wal_path: impl AsRef<std::path::Path>,
        merge: MergePolicy,
        wal_config: GroupCommitConfig,
    ) -> Result<ContributorAccount, StoreError> {
        Ok(ContributorAccount {
            id,
            store: SegmentStore::open_with(wal_path, merge, wal_config)?,
            rules: Vec::new(),
            rule_epoch: 0,
            places: Vec::new(),
            compiled: Mutex::new(None),
        })
    }

    /// A durable account backed by the **store-wide journal** (storage
    /// engine v2): records stage into the shared [`StoreJournal`] and
    /// ride its single commit thread's batched fsyncs. Any state the
    /// journal recovered for this account at open (checkpoint +
    /// tail-segment replay) is claimed here — `take_account` hands it
    /// over exactly once, so a second registration of the same name
    /// starts from the live directory entry, not a stale replay.
    pub fn open_journal(
        id: ContributorId,
        journal: Arc<StoreJournal>,
        merge: MergePolicy,
    ) -> ContributorAccount {
        let name = id.as_str().to_string();
        let recovered = journal.take_account(&name);
        let (records, rule_epoch) = match recovered {
            Some(r) => (r.records, r.rule_epoch),
            None => (Vec::new(), 0),
        };
        ContributorAccount {
            id,
            store: SegmentStore::open_journal(journal, name, merge, records),
            rules: Vec::new(),
            rule_epoch,
            places: Vec::new(),
            compiled: Mutex::new(None),
        }
    }

    /// Labels active at `point`.
    pub fn labels_at(&self, point: &GeoPoint) -> Vec<String> {
        self.places
            .iter()
            .filter(|(_, region)| region.contains(point))
            .map(|(label, _)| label.clone())
            .collect()
    }

    /// Replaces the rule set, bumping the epoch. Returns the new epoch.
    pub fn set_rules(&mut self, rules: Vec<PrivacyRule>) -> u64 {
        self.rules = rules;
        self.rule_epoch += 1;
        self.rule_epoch
    }

    /// The current rules in compiled form, recompiled at most once per
    /// epoch. Callers hold the account lock (shared is enough), so the
    /// `(rules, rule_epoch)` pair is coherent; the inner mutex only
    /// guards the cache slot itself.
    pub fn compiled_rules(&self) -> Arc<CompiledRules> {
        let mut cache = self.compiled.lock();
        if let Some((epoch, compiled)) = cache.as_ref() {
            if *epoch == self.rule_epoch {
                return Arc::clone(compiled);
            }
        }
        let compiled = Arc::new(CompiledRules::compile(&self.rules));
        *cache = Some((self.rule_epoch, Arc::clone(&compiled)));
        compiled
    }
}

/// A consumer registered on this data store (auto-registered by the
/// broker, §5.4), with membership info used by group/study rule
/// conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerAccount {
    /// The consumer's unique name.
    pub id: ConsumerId,
    /// Group memberships.
    pub groups: Vec<GroupId>,
    /// Study enrollments.
    pub studies: Vec<StudyId>,
}

impl ConsumerAccount {
    /// The evaluation-context form.
    pub fn to_ctx(&self) -> sensorsafe_policy::ConsumerCtx {
        sensorsafe_policy::ConsumerCtx {
            id: Some(self.id.clone()),
            groups: self.groups.clone(),
            studies: self.studies.clone(),
        }
    }
}

/// Which locking discipline [`DataStoreState`] runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LockMode {
    /// Per-contributor account locks behind a striped directory
    /// (production mode).
    #[default]
    Sharded,
    /// The seed's coarse behavior: every contributor access additionally
    /// serializes through one global `RwLock` (reads shared, writes
    /// exclusive). Kept for same-run A/B comparison in benches.
    GlobalLock,
}

/// Debug-build lock-order assertions (see the module docs for the
/// hierarchy). Zero code in release builds.
#[cfg(debug_assertions)]
mod lock_order {
    use std::cell::Cell;

    thread_local! {
        static ACCOUNT_LOCKS_HELD: Cell<usize> = const { Cell::new(0) };
    }

    pub(super) fn acquire_account() {
        ACCOUNT_LOCKS_HELD.with(|held| {
            assert_eq!(
                held.get(),
                0,
                "lock-order violation: acquiring a second contributor account \
                 lock on this thread (deadlock risk — account locks never nest)"
            );
            held.set(held.get() + 1);
        });
    }

    pub(super) fn release_account() {
        ACCOUNT_LOCKS_HELD.with(|held| held.set(held.get().saturating_sub(1)));
    }

    pub(super) fn assert_no_account_lock() {
        ACCOUNT_LOCKS_HELD.with(|held| {
            assert_eq!(
                held.get(),
                0,
                "lock-order violation: touching the contributor directory while \
                 holding an account lock (directory locks come first)"
            );
        });
    }
}

#[cfg(not(debug_assertions))]
mod lock_order {
    pub(super) fn acquire_account() {}
    pub(super) fn release_account() {}
    pub(super) fn assert_no_account_lock() {}
}

/// Shared (read) access to one contributor, held until dropped.
///
/// Returned by [`DataStoreState::read_contributor`]. The guard owns an
/// `Arc` to the account's lock, so it stays valid even if the directory
/// changes concurrently.
pub struct ContributorReadGuard<'a> {
    // The owned guard keeps the account's lock allocation alive itself
    // (it holds an `Arc` of the lock), so the directory may rehash or the
    // entry be replaced while this guard is out.
    guard: ArcRwLockReadGuard<ContributorAccount>,
    _global: Option<RwLockReadGuard<'a, ()>>,
}

impl Deref for ContributorReadGuard<'_> {
    type Target = ContributorAccount;
    fn deref(&self) -> &ContributorAccount {
        &self.guard
    }
}

impl Drop for ContributorReadGuard<'_> {
    fn drop(&mut self) {
        lock_order::release_account();
    }
}

/// Exclusive (write) access to one contributor, held until dropped.
///
/// Returned by [`DataStoreState::write_contributor`].
pub struct ContributorWriteGuard<'a> {
    // Owned guard, as in `ContributorReadGuard`.
    guard: ArcRwLockWriteGuard<ContributorAccount>,
    _global: Option<RwLockWriteGuard<'a, ()>>,
}

impl Deref for ContributorWriteGuard<'_> {
    type Target = ContributorAccount;
    fn deref(&self) -> &ContributorAccount {
        &self.guard
    }
}

impl DerefMut for ContributorWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut ContributorAccount {
        &mut self.guard
    }
}

impl Drop for ContributorWriteGuard<'_> {
    fn drop(&mut self) {
        lock_order::release_account();
    }
}

type Stripe = RwLock<BTreeMap<ContributorId, Arc<RwLock<ContributorAccount>>>>;

/// All mutable server state, sharded per contributor (module docs).
pub struct DataStoreState {
    stripes: Vec<Stripe>,
    consumers: RwLock<BTreeMap<ConsumerId, Arc<ConsumerAccount>>>,
    /// `Some` in [`LockMode::GlobalLock`]: the extra coarse lock every
    /// contributor access takes, reproducing the seed's serialization.
    global: Option<RwLock<()>>,
}

impl Default for DataStoreState {
    fn default() -> DataStoreState {
        DataStoreState::with_mode(LockMode::default())
    }
}

/// FNV-1a over the contributor name; stable and dependency-free.
fn stripe_of(id: &ContributorId) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.as_str().bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % STRIPES as u64) as usize
}

fn lock_wait_histogram(mode: &str) -> Arc<sensorsafe_obsv::Histogram> {
    sensorsafe_obsv::global().histogram(
        "sensorsafe_datastore_lock_wait_seconds",
        "Time spent waiting to acquire a contributor account lock.",
        &[("mode", mode)],
        None,
    )
}

/// Static stripe-label table: label values are `&str` and 16 stripes is a
/// closed set, so no per-observation allocation.
const STRIPE_LABELS: [&str; STRIPES] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

/// Per-stripe lock-wait attribution: when the aggregate
/// `sensorsafe_datastore_lock_wait_seconds` climbs, this family says
/// whether the contention is spread evenly or one stripe (one hot
/// contributor hashing there) is the culprit.
fn stripe_lock_wait_histogram(stripe: usize, mode: &str) -> Arc<sensorsafe_obsv::Histogram> {
    sensorsafe_obsv::global().histogram(
        "sensorsafe_datastore_stripe_lock_wait_seconds",
        "Time waiting to acquire a contributor account lock, by directory stripe.",
        &[("mode", mode), ("stripe", STRIPE_LABELS[stripe % STRIPES])],
        None,
    )
}

impl DataStoreState {
    /// Empty state in the default (sharded) mode.
    pub fn new() -> DataStoreState {
        DataStoreState::default()
    }

    /// Empty state under an explicit locking discipline.
    pub fn with_mode(mode: LockMode) -> DataStoreState {
        sensorsafe_obsv::global()
            .gauge(
                "sensorsafe_datastore_shards",
                "Lock stripes in the contributor directory.",
                &[],
            )
            .set(STRIPES as i64);
        DataStoreState {
            stripes: (0..STRIPES).map(|_| Stripe::default()).collect(),
            consumers: RwLock::default(),
            global: match mode {
                LockMode::Sharded => None,
                LockMode::GlobalLock => Some(RwLock::new(())),
            },
        }
    }

    /// The locking discipline this state runs under.
    pub fn lock_mode(&self) -> LockMode {
        if self.global.is_some() {
            LockMode::GlobalLock
        } else {
            LockMode::Sharded
        }
    }

    fn update_account_gauge(&self) {
        sensorsafe_obsv::global()
            .gauge(
                "sensorsafe_datastore_contributor_accounts",
                "Contributor accounts hosted on this data store.",
                &[],
            )
            .set(self.contributor_count() as i64);
    }

    /// Adds a contributor account; returns `false` if the name is taken.
    pub fn add_contributor(&self, account: ContributorAccount) -> bool {
        lock_order::assert_no_account_lock();
        let added = {
            let mut stripe = self.stripes[stripe_of(&account.id)].write();
            if stripe.contains_key(&account.id) {
                false
            } else {
                stripe.insert(account.id.clone(), Arc::new(RwLock::new(account)));
                true
            }
        };
        if added {
            self.update_account_gauge();
        }
        added
    }

    /// Adds a consumer account; returns `false` if the name is taken.
    pub fn add_consumer(&self, account: ConsumerAccount) -> bool {
        let mut consumers = self.consumers.write();
        if consumers.contains_key(&account.id) {
            return false;
        }
        consumers.insert(account.id.clone(), Arc::new(account));
        true
    }

    /// Clones the account `Arc` out of the directory (brief stripe read).
    fn lookup(&self, id: &ContributorId) -> Option<Arc<RwLock<ContributorAccount>>> {
        lock_order::assert_no_account_lock();
        self.stripes[stripe_of(id)].read().get(id).cloned()
    }

    /// Acquires shared access to a contributor's account. Concurrent
    /// readers of the same account proceed in parallel; readers of
    /// *different* accounts never contend at all (sharded mode).
    pub fn read_contributor(&self, id: &ContributorId) -> Option<ContributorReadGuard<'_>> {
        // The wait clock covers the whole acquisition path, so in
        // `GlobalLock` mode time blocked on the global lock shows up in
        // the histogram too (that is the contention the sharding kills).
        let waited = Instant::now();
        // Profiling frame covers the acquisition only, so sampled stacks
        // separate lock-wait time from time spent holding the lock.
        let prof = sensorsafe_obsv::prof_frame!("stripe-lock-wait");
        let _global = self.global.as_ref().map(|g| g.read());
        let account = self.lookup(id)?;
        lock_order::acquire_account();
        let guard = RwLock::read_arc(&account);
        drop(prof);
        let elapsed = waited.elapsed();
        lock_wait_histogram("read").observe(elapsed);
        stripe_lock_wait_histogram(stripe_of(id), "read").observe(elapsed);
        Some(ContributorReadGuard { guard, _global })
    }

    /// Acquires exclusive access to a contributor's account. Only writers
    /// and readers of the *same* account are serialized (sharded mode).
    pub fn write_contributor(&self, id: &ContributorId) -> Option<ContributorWriteGuard<'_>> {
        let waited = Instant::now();
        let prof = sensorsafe_obsv::prof_frame!("stripe-lock-wait");
        let _global = self.global.as_ref().map(|g| g.write());
        let account = self.lookup(id)?;
        lock_order::acquire_account();
        let guard = RwLock::write_arc(&account);
        drop(prof);
        let elapsed = waited.elapsed();
        lock_wait_histogram("write").observe(elapsed);
        stripe_lock_wait_histogram(stripe_of(id), "write").observe(elapsed);
        Some(ContributorWriteGuard { guard, _global })
    }

    /// Runs `f` with shared access to a contributor (convenience wrapper
    /// over [`DataStoreState::read_contributor`]).
    pub fn with_contributor<R>(
        &self,
        id: &ContributorId,
        f: impl FnOnce(&ContributorAccount) -> R,
    ) -> Option<R> {
        self.read_contributor(id).map(|guard| f(&guard))
    }

    /// Runs `f` with exclusive access to a contributor (convenience
    /// wrapper over [`DataStoreState::write_contributor`]).
    pub fn with_contributor_mut<R>(
        &self,
        id: &ContributorId,
        f: impl FnOnce(&mut ContributorAccount) -> R,
    ) -> Option<R> {
        self.write_contributor(id).map(|mut guard| f(&mut guard))
    }

    /// Looks up a consumer account (cheap: shared `Arc`, no deep clone).
    pub fn consumer(&self, id: &ConsumerId) -> Option<Arc<ConsumerAccount>> {
        self.consumers.read().get(id).cloned()
    }

    /// Contributor names hosted here, in name order.
    pub fn contributor_ids(&self) -> Vec<ContributorId> {
        lock_order::assert_no_account_lock();
        let mut ids: Vec<ContributorId> = self
            .stripes
            .iter()
            .flat_map(|stripe| stripe.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Number of hosted contributors.
    pub fn contributor_count(&self) -> usize {
        lock_order::assert_no_account_lock();
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// Sticky WAL I/O failures across every hosted contributor, as
    /// `(contributor, error)` pairs. Non-empty means this store has acked
    /// its last durable write: `/healthz` reports it as `degraded`.
    pub fn wal_sticky_errors(&self) -> Vec<(ContributorId, String)> {
        let mut errors = Vec::new();
        for id in self.contributor_ids() {
            if let Some(err) = self
                .with_contributor(&id, |a| a.store.wal_sticky_error())
                .flatten()
            {
                errors.push((id, err));
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_types::Region;

    #[test]
    fn contributor_lifecycle() {
        let state = DataStoreState::new();
        let alice = ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        assert!(state.add_contributor(alice));
        let dup = ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        assert!(!state.add_contributor(dup));
        assert_eq!(state.contributor_count(), 1);
        assert_eq!(state.contributor_ids(), vec![ContributorId::new("alice")]);
    }

    #[test]
    fn rule_epoch_bumps() {
        let state = DataStoreState::new();
        state.add_contributor(ContributorAccount::new(
            ContributorId::new("alice"),
            MergePolicy::default(),
        ));
        let id = ContributorId::new("alice");
        let e1 = state
            .with_contributor_mut(&id, |a| a.set_rules(vec![PrivacyRule::allow_all()]))
            .unwrap();
        let e2 = state
            .with_contributor_mut(&id, |a| a.set_rules(vec![]))
            .unwrap();
        assert_eq!(e1, 1);
        assert_eq!(e2, 2);
        assert_eq!(state.with_contributor(&id, |a| a.rules.len()).unwrap(), 0);
    }

    #[test]
    fn labels_at_point() {
        let mut account =
            ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        account.places = vec![
            ("UCLA".to_string(), Region::around(GeoPoint::ucla(), 0.01)),
            ("LA".to_string(), Region::new(33.5, 34.5, -119.0, -117.5)),
        ];
        let labels = account.labels_at(&GeoPoint::ucla());
        assert_eq!(labels, vec!["UCLA".to_string(), "LA".to_string()]);
        let downtown = GeoPoint::new(34.05, -118.25);
        assert_eq!(account.labels_at(&downtown), vec!["LA".to_string()]);
        let nyc = GeoPoint::new(40.7, -74.0);
        assert!(account.labels_at(&nyc).is_empty());
    }

    #[test]
    fn consumer_accounts() {
        let state = DataStoreState::new();
        let bob = ConsumerAccount {
            id: ConsumerId::new("bob"),
            groups: vec![GroupId::new("researchers")],
            studies: vec![StudyId::new("stress-study")],
        };
        assert!(state.add_consumer(bob.clone()));
        assert!(!state.add_consumer(bob.clone()));
        let fetched = state.consumer(&ConsumerId::new("bob")).unwrap();
        assert_eq!(*fetched, bob);
        let ctx = fetched.to_ctx();
        assert_eq!(ctx.id, Some(ConsumerId::new("bob")));
        assert_eq!(ctx.groups.len(), 1);
        assert!(state.consumer(&ConsumerId::new("eve")).is_none());
    }

    #[test]
    fn guards_give_direct_access() {
        let state = DataStoreState::new();
        let id = ContributorId::new("alice");
        state.add_contributor(ContributorAccount::new(id.clone(), MergePolicy::default()));
        {
            let mut guard = state.write_contributor(&id).unwrap();
            guard.set_rules(vec![PrivacyRule::allow_all()]);
        }
        let guard = state.read_contributor(&id).unwrap();
        assert_eq!(guard.rule_epoch, 1);
        assert_eq!(guard.rules.len(), 1);
        drop(guard);
        assert!(state
            .read_contributor(&ContributorId::new("ghost"))
            .is_none());
    }

    #[test]
    fn guard_outlives_concurrent_directory_growth() {
        // A held guard stays valid while another thread mutates the
        // directory around it (registration on the same stripes).
        let state = Arc::new(DataStoreState::new());
        let id = ContributorId::new("alice");
        state.add_contributor(ContributorAccount::new(id.clone(), MergePolicy::default()));
        let guard = state.read_contributor(&id).unwrap();
        let registrar = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                for i in 0..32 {
                    state.add_contributor(ContributorAccount::new(
                        ContributorId::new(format!("other-{i}")),
                        MergePolicy::default(),
                    ));
                }
            })
        };
        registrar.join().unwrap();
        assert_eq!(guard.id, id);
        drop(guard);
        assert_eq!(state.contributor_count(), 33);
    }

    #[test]
    fn compiled_rules_cache_invalidated_by_epoch_bump() {
        let mut account =
            ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        let empty = account.compiled_rules();
        assert!(empty.is_empty());
        // Same epoch: the same compiled object is shared.
        assert!(Arc::ptr_eq(&empty, &account.compiled_rules()));
        account.set_rules(vec![PrivacyRule::allow_all()]);
        let compiled = account.compiled_rules();
        assert_eq!(compiled.len(), 1);
        assert!(!Arc::ptr_eq(&empty, &compiled));
        assert!(Arc::ptr_eq(&compiled, &account.compiled_rules()));
    }

    #[test]
    fn global_lock_mode_behaves_identically() {
        let state = DataStoreState::with_mode(LockMode::GlobalLock);
        assert_eq!(state.lock_mode(), LockMode::GlobalLock);
        let id = ContributorId::new("alice");
        state.add_contributor(ContributorAccount::new(id.clone(), MergePolicy::default()));
        state
            .with_contributor_mut(&id, |a| a.set_rules(vec![PrivacyRule::allow_all()]))
            .unwrap();
        assert_eq!(state.with_contributor(&id, |a| a.rule_epoch).unwrap(), 1);
        assert_eq!(DataStoreState::new().lock_mode(), LockMode::Sharded);
    }

    #[test]
    fn stripe_distribution_is_stable() {
        // The FNV mapping must be deterministic (directory lookups would
        // break otherwise) and spread names across stripes.
        let a = stripe_of(&ContributorId::new("alice"));
        assert_eq!(a, stripe_of(&ContributorId::new("alice")));
        let used: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| stripe_of(&ContributorId::new(format!("contributor-{i}"))))
            .collect();
        assert!(used.len() > STRIPES / 2, "poor stripe spread: {used:?}");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn directory_access_under_account_lock_panics() {
        let state = DataStoreState::new();
        let id = ContributorId::new("alice");
        state.add_contributor(ContributorAccount::new(id.clone(), MergePolicy::default()));
        let _guard = state.read_contributor(&id).unwrap();
        // Touching the directory while holding an account lock violates
        // the documented order.
        let _ = state.contributor_count();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn nested_account_locks_panic() {
        let state = DataStoreState::new();
        for name in ["alice", "bob"] {
            state.add_contributor(ContributorAccount::new(
                ContributorId::new(name),
                MergePolicy::default(),
            ));
        }
        let _first = state
            .read_contributor(&ContributorId::new("alice"))
            .unwrap();
        let _second = state.read_contributor(&ContributorId::new("bob"));
    }
}
