//! Server-side state: contributor and consumer accounts.

use parking_lot::RwLock;
use sensorsafe_policy::PrivacyRule;
use sensorsafe_store::{MergePolicy, SegmentStore, StoreError};
use sensorsafe_types::{ConsumerId, ContributorId, GeoPoint, GroupId, Region, StudyId};
use std::collections::BTreeMap;

/// One contributor hosted on this data store.
pub struct ContributorAccount {
    /// The contributor's unique name.
    pub id: ContributorId,
    /// Their sensor data.
    pub store: SegmentStore,
    /// Their privacy rules (order is irrelevant: evaluation is
    /// most-restrictive-wins).
    pub rules: Vec<PrivacyRule>,
    /// Monotonic rule version, bumped on every change and carried in
    /// broker sync messages.
    pub rule_epoch: u64,
    /// Labeled places ("home", "UCLA") drawn on the map UI; a window's
    /// location labels are the labels whose region contains its point.
    pub places: Vec<(String, Region)>,
}

impl ContributorAccount {
    /// A fresh account with an in-memory store and no rules (deny-by-
    /// default shares nothing until the contributor writes rules).
    pub fn new(id: ContributorId, merge: MergePolicy) -> ContributorAccount {
        ContributorAccount {
            id,
            store: SegmentStore::in_memory(merge),
            rules: Vec::new(),
            rule_epoch: 0,
            places: Vec::new(),
        }
    }

    /// A durable account whose store replays from `wal_path`.
    pub fn open(
        id: ContributorId,
        wal_path: impl AsRef<std::path::Path>,
        merge: MergePolicy,
    ) -> Result<ContributorAccount, StoreError> {
        Ok(ContributorAccount {
            id,
            store: SegmentStore::open(wal_path, merge)?,
            rules: Vec::new(),
            rule_epoch: 0,
            places: Vec::new(),
        })
    }

    /// Labels active at `point`.
    pub fn labels_at(&self, point: &GeoPoint) -> Vec<String> {
        self.places
            .iter()
            .filter(|(_, region)| region.contains(point))
            .map(|(label, _)| label.clone())
            .collect()
    }

    /// Replaces the rule set, bumping the epoch. Returns the new epoch.
    pub fn set_rules(&mut self, rules: Vec<PrivacyRule>) -> u64 {
        self.rules = rules;
        self.rule_epoch += 1;
        self.rule_epoch
    }
}

/// A consumer registered on this data store (auto-registered by the
/// broker, §5.4), with membership info used by group/study rule
/// conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsumerAccount {
    /// The consumer's unique name.
    pub id: ConsumerId,
    /// Group memberships.
    pub groups: Vec<GroupId>,
    /// Study enrollments.
    pub studies: Vec<StudyId>,
}

impl ConsumerAccount {
    /// The evaluation-context form.
    pub fn to_ctx(&self) -> sensorsafe_policy::ConsumerCtx {
        sensorsafe_policy::ConsumerCtx {
            id: Some(self.id.clone()),
            groups: self.groups.clone(),
            studies: self.studies.clone(),
        }
    }
}

/// All mutable server state behind one lock.
///
/// A single `RwLock` keeps the invariants simple (rules and data for a
/// contributor can never be observed mid-update); queries take the read
/// side, so concurrent consumers proceed in parallel.
#[derive(Default)]
pub struct DataStoreState {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    contributors: BTreeMap<ContributorId, ContributorAccount>,
    consumers: BTreeMap<ConsumerId, ConsumerAccount>,
}

impl DataStoreState {
    /// Empty state.
    pub fn new() -> DataStoreState {
        DataStoreState::default()
    }

    /// Adds a contributor account; returns `false` if the name is taken.
    pub fn add_contributor(&self, account: ContributorAccount) -> bool {
        let mut inner = self.inner.write();
        if inner.contributors.contains_key(&account.id) {
            return false;
        }
        inner.contributors.insert(account.id.clone(), account);
        true
    }

    /// Adds a consumer account; returns `false` if the name is taken.
    pub fn add_consumer(&self, account: ConsumerAccount) -> bool {
        let mut inner = self.inner.write();
        if inner.consumers.contains_key(&account.id) {
            return false;
        }
        inner.consumers.insert(account.id.clone(), account);
        true
    }

    /// Runs `f` with shared access to a contributor.
    pub fn with_contributor<R>(
        &self,
        id: &ContributorId,
        f: impl FnOnce(&ContributorAccount) -> R,
    ) -> Option<R> {
        let inner = self.inner.read();
        inner.contributors.get(id).map(f)
    }

    /// Runs `f` with exclusive access to a contributor.
    pub fn with_contributor_mut<R>(
        &self,
        id: &ContributorId,
        f: impl FnOnce(&mut ContributorAccount) -> R,
    ) -> Option<R> {
        let mut inner = self.inner.write();
        inner.contributors.get_mut(id).map(f)
    }

    /// Looks up a consumer account.
    pub fn consumer(&self, id: &ConsumerId) -> Option<ConsumerAccount> {
        self.inner.read().consumers.get(id).cloned()
    }

    /// Contributor names hosted here.
    pub fn contributor_ids(&self) -> Vec<ContributorId> {
        self.inner.read().contributors.keys().cloned().collect()
    }

    /// Number of hosted contributors.
    pub fn contributor_count(&self) -> usize {
        self.inner.read().contributors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_types::Region;

    #[test]
    fn contributor_lifecycle() {
        let state = DataStoreState::new();
        let alice = ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        assert!(state.add_contributor(alice));
        let dup = ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        assert!(!state.add_contributor(dup));
        assert_eq!(state.contributor_count(), 1);
        assert_eq!(state.contributor_ids(), vec![ContributorId::new("alice")]);
    }

    #[test]
    fn rule_epoch_bumps() {
        let state = DataStoreState::new();
        state.add_contributor(ContributorAccount::new(
            ContributorId::new("alice"),
            MergePolicy::default(),
        ));
        let id = ContributorId::new("alice");
        let e1 = state
            .with_contributor_mut(&id, |a| a.set_rules(vec![PrivacyRule::allow_all()]))
            .unwrap();
        let e2 = state
            .with_contributor_mut(&id, |a| a.set_rules(vec![]))
            .unwrap();
        assert_eq!(e1, 1);
        assert_eq!(e2, 2);
        assert_eq!(state.with_contributor(&id, |a| a.rules.len()).unwrap(), 0);
    }

    #[test]
    fn labels_at_point() {
        let mut account =
            ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        account.places = vec![
            ("UCLA".to_string(), Region::around(GeoPoint::ucla(), 0.01)),
            ("LA".to_string(), Region::new(33.5, 34.5, -119.0, -117.5)),
        ];
        let labels = account.labels_at(&GeoPoint::ucla());
        assert_eq!(labels, vec!["UCLA".to_string(), "LA".to_string()]);
        let downtown = GeoPoint::new(34.05, -118.25);
        assert_eq!(account.labels_at(&downtown), vec!["LA".to_string()]);
        let nyc = GeoPoint::new(40.7, -74.0);
        assert!(account.labels_at(&nyc).is_empty());
    }

    #[test]
    fn consumer_accounts() {
        let state = DataStoreState::new();
        let bob = ConsumerAccount {
            id: ConsumerId::new("bob"),
            groups: vec![GroupId::new("researchers")],
            studies: vec![StudyId::new("stress-study")],
        };
        assert!(state.add_consumer(bob.clone()));
        assert!(!state.add_consumer(bob.clone()));
        let fetched = state.consumer(&ConsumerId::new("bob")).unwrap();
        assert_eq!(fetched, bob);
        let ctx = fetched.to_ctx();
        assert_eq!(ctx.id, Some(ConsumerId::new("bob")));
        assert_eq!(ctx.groups.len(), 1);
        assert!(state.consumer(&ConsumerId::new("eve")).is_none());
    }
}
