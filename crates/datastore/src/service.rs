//! The remote data store's HTTP API surface.
//!
//! Every endpoint follows the paper's §5.4 convention: the caller's API
//! key travels in the body of a POST request (never in the URL, where it
//! would land in logs). The service implements [`sensorsafe_net::Service`]
//! so it can be served over TCP ([`sensorsafe_net::Server`]) or called
//! in-process by the benches.
//!
//! | Endpoint | Who | Purpose |
//! |---|---|---|
//! | `GET /health` | anyone | liveness + stats |
//! | `POST /api/register` | admin key | create contributor/consumer accounts (consumer registration is how the broker escrows keys) |
//! | `POST /api/upload` | contributor | upload wave segments + annotations |
//! | `POST /api/query` | consumer or owner | query a contributor's data through the privacy pipeline |
//! | `POST /api/rules/set` | contributor | replace privacy rules (pushes a sync to the broker) |
//! | `POST /api/rules/get` | contributor | read own rules |
//! | `POST /api/places/set` | contributor | define labeled places |
//! | `GET /ui/*`, `POST /ui/*` | browser | web user interface (see [`crate::web`]) |

use crate::pipeline::{shared_view, shared_view_to_json};
use crate::state::{ConsumerAccount, ContributorAccount, DataStoreState, LockMode};
use parking_lot::Mutex;
use sensorsafe_auth::{ApiKey, KeyRing, PasswordStore, Principal, Role, SessionManager};
use sensorsafe_json::{json, Value};
use sensorsafe_net::{Request, Response, Router, Service, Status, Transport};
use sensorsafe_obsv::{audit, trace, AuditLedger, MemoryLedger, Registry, TraceRecorder};
use sensorsafe_policy::{DependencyGraph, PrivacyRule};
use sensorsafe_store::{repl, GroupCommitConfig, MergePolicy, Query, ReplConfig};
use sensorsafe_types::{
    ConsumerId, ContextAnnotation, ContributorId, GroupId, Region, StudyId, WaveSegment,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Which durability engine backs hosted contributor stores when a data
/// directory is configured (ignored for in-memory deployments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageEngine {
    /// Storage engine v2 (default): one store-wide
    /// [`sensorsafe_store::StoreJournal`] shared by every hosted
    /// account. A single commit thread batches records from many
    /// contributors into one `write`+`fsync`, segments rotate at a size
    /// threshold, each rotation checkpoints account state so crash
    /// replay is bounded to the tail segment, and checkpointed segments
    /// are garbage-collected once replication acks catch up.
    #[default]
    Journal,
    /// Storage engine v1: one `<dir>/<name>.wal` group-commit log per
    /// contributor account. Kept for migration and as the bench
    /// baseline; fsync cost scales with the number of concurrently
    /// active accounts.
    PerAccountWal,
}

/// Construction-time configuration.
#[derive(Debug, Clone)]
pub struct DataStoreConfig {
    /// Human-readable server name (shown in the web UI).
    pub name: String,
    /// Merge policy for hosted contributors' stores.
    pub merge: MergePolicy,
    /// Directory for durable storage. `None` keeps all data in memory
    /// (tests, benches); with a directory set, contributor data is
    /// recovered on registration — from the shared journal
    /// (`<dir>/journal.seg-N` + `<dir>/journal.ckpt`) under
    /// [`StorageEngine::Journal`], or from `<dir>/<name>.wal` under
    /// [`StorageEngine::PerAccountWal`] — so a restarted server
    /// recovers its data.
    pub data_dir: Option<std::path::PathBuf>,
    /// Durability engine for contributor data under `data_dir`. See
    /// [`StorageEngine`] and `docs/OPERATIONS.md` ("Storage engine").
    pub engine: StorageEngine,
    /// Journal segment rotation thresholds (journal engine only). See
    /// [`sensorsafe_store::JournalConfig`].
    pub journal: sensorsafe_store::JournalConfig,
    /// Locking discipline for contributor state. `GlobalLock` reproduces
    /// the pre-sharding coarse lock (bench baseline only).
    pub lock_mode: LockMode,
    /// WAL group-commit batching for durable contributor stores (ignored
    /// when `data_dir` is `None`). Applies to both engines: the journal
    /// engine uses it as its commit-thread batching window. See
    /// [`GroupCommitConfig`] and `docs/OPERATIONS.md` for tuning.
    pub wal: GroupCommitConfig,
    /// Requests slower than this are pinned in the slow-trace ring and
    /// logged as one structured JSON line (`None` disables capture). See
    /// docs/OPERATIONS.md for tuning guidance.
    pub slow_request_threshold: Option<std::time::Duration>,
}

impl Default for DataStoreConfig {
    fn default() -> Self {
        DataStoreConfig {
            name: "sensorsafe-datastore".to_string(),
            merge: MergePolicy::default(),
            data_dir: None,
            engine: StorageEngine::default(),
            journal: sensorsafe_store::JournalConfig::default(),
            lock_mode: LockMode::Sharded,
            wal: GroupCommitConfig::default(),
            slow_request_threshold: None,
        }
    }
}

/// Link to the broker for rule synchronization (§5.2).
pub struct BrokerLink {
    /// Transport to the broker.
    pub transport: Arc<dyn Transport>,
    /// This store's API key on the broker (`Role::Server` there).
    pub store_key: String,
    /// Address consumers should use to reach this store.
    pub store_addr: String,
}

pub(crate) struct Inner {
    pub(crate) config: DataStoreConfig,
    /// The shared store-wide journal (storage engine v2). `Some` only
    /// when `data_dir` is set and the engine is
    /// [`StorageEngine::Journal`]; a journal that fails to open degrades
    /// the server to per-account WALs rather than refusing to start.
    pub(crate) journal: Option<Arc<sensorsafe_store::StoreJournal>>,
    pub(crate) state: DataStoreState,
    pub(crate) keys: KeyRing,
    pub(crate) graph: DependencyGraph,
    pub(crate) broker: Mutex<Option<BrokerLink>>,
    pub(crate) replica: Mutex<Option<crate::repl::ReplicaLink>>,
    /// Contributors whose shipping stream has been handshaken against
    /// the replica's durable high-water this attachment (see
    /// `repl_ship_now`). Cleared on re-attach and on any ship failure,
    /// so a replica restart forces a fresh `/repl/status` check.
    pub(crate) repl_synced: Mutex<BTreeSet<ContributorId>>,
    pub(crate) passwords: PasswordStore,
    pub(crate) sessions: SessionManager,
    pub(crate) registry: Registry,
    pub(crate) traces: Arc<TraceRecorder>,
    pub(crate) ledger: Arc<dyn AuditLedger>,
    /// True when the configured file ledger failed verification and
    /// decisions are going to an in-memory fallback; `/healthz` reports
    /// the component as degraded so the condition is visible fleet-wide.
    pub(crate) ledger_fallback: bool,
    /// The sharing-awareness plane: live privacy-decision analytics fed
    /// from the same `record_decision` stream as the ledger, surfaced via
    /// `/api/privacy/summary` and `/ui/privacy`.
    pub(crate) awareness: Arc<sensorsafe_obsv::AwarenessPlane>,
    pub(crate) started: std::time::Instant,
}

/// The data store service. Cheap to clone (shared state).
#[derive(Clone)]
pub struct DataStoreService {
    inner: Arc<Inner>,
    router: Arc<Router>,
}

fn bad_request(msg: &str) -> Response {
    Response::error(Status::BadRequest, msg)
}

fn unauthorized() -> Response {
    Response::error(Status::Unauthorized, "invalid API key")
}

impl Inner {
    /// Authenticates the `key` field of a request body.
    pub(crate) fn authenticate(&self, body: &Value) -> Option<Principal> {
        let key = body.get("key").and_then(Value::as_str)?;
        self.keys.authenticate(key)
    }

    fn handle_register(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(
                Status::Forbidden,
                "registration requires the admin or broker key",
            );
        }
        let Some(name) = body.get("name").and_then(Value::as_str) else {
            return bad_request("missing 'name'");
        };
        if name.is_empty() {
            return bad_request("empty 'name'");
        }
        let Some(role) = body
            .get("role")
            .and_then(Value::as_str)
            .and_then(Role::parse)
        else {
            return bad_request("missing or invalid 'role'");
        };
        let created = match role {
            Role::Contributor => {
                let mut account = match self.open_contributor_account(name) {
                    Ok(account) => account,
                    Err(e) => {
                        return Response::error(
                            Status::InternalError,
                            &format!("failed to open contributor store: {e}"),
                        )
                    }
                };
                // A replicated primary ships every account from birth.
                if self.replica.lock().is_some() {
                    account.store.enable_replication(ReplConfig::default());
                }
                // Journal recovery may have restored a non-zero rule set;
                // seed the awareness plane with whatever epoch is live.
                let rule_meta = (account.rule_epoch, account.rules.len());
                let created = self.state.add_contributor(account);
                if created {
                    self.awareness.note_rule_set(name, rule_meta.0, rule_meta.1);
                }
                created
            }
            Role::Consumer => {
                let groups = body
                    .get("groups")
                    .and_then(Value::as_string_list)
                    .unwrap_or_default()
                    .into_iter()
                    .map(GroupId::new)
                    .collect();
                let studies = body
                    .get("studies")
                    .and_then(Value::as_string_list)
                    .unwrap_or_default()
                    .into_iter()
                    .map(StudyId::new)
                    .collect();
                self.state.add_consumer(ConsumerAccount {
                    id: ConsumerId::new(name),
                    groups,
                    studies,
                })
            }
            Role::Server => false,
        };
        if !created {
            return Response::error(Status::Conflict, "account already exists");
        }
        let key = self.keys.register(Principal {
            name: name.to_string(),
            role,
        });
        // Mirror the account (and its exact key) to the replica so a
        // promoted replica authenticates the same clients. The key is
        // only recoverable here, at mint time — the ring keeps digests.
        let empty = Value::Array(Vec::new());
        self.mirror_registration_to_replica(
            name,
            role.as_str(),
            &key.to_hex(),
            body.get("groups").unwrap_or(&empty),
            body.get("studies").unwrap_or(&empty),
        );
        Response::json_with_status(Status::Created, &json!({ "api_key": (key.to_hex()) }))
    }

    /// Opens (or creates) the hosted account for `name` under the
    /// configured durability engine: in-memory without a data directory,
    /// the shared journal under [`StorageEngine::Journal`], otherwise a
    /// per-account `<dir>/<name>.wal`. Journal-recovered state (if any)
    /// is claimed exactly once inside
    /// [`ContributorAccount::open_journal`].
    fn open_contributor_account(
        &self,
        name: &str,
    ) -> Result<ContributorAccount, sensorsafe_store::StoreError> {
        let id = ContributorId::new(name);
        match (&self.config.data_dir, &self.journal) {
            (None, _) => Ok(ContributorAccount::new(id, self.config.merge)),
            (Some(_), Some(journal)) => Ok(ContributorAccount::open_journal(
                id,
                journal.clone(),
                self.config.merge,
            )),
            (Some(dir), None) => {
                let path = dir.join(format!("{name}.wal"));
                ContributorAccount::open_with(id, path, self.config.merge, self.config.wal)
            }
        }
    }

    /// Creates an empty contributor account if `name` has none yet (the
    /// replica side of replication: accounts materialize on first
    /// mirrored registration or shipped batch). Durable when the store
    /// has a data directory. Returns `false` only on a WAL open failure.
    fn ensure_contributor_account(&self, name: &str) -> bool {
        let id = ContributorId::new(name);
        if self.state.with_contributor(&id, |_| ()).is_some() {
            return true;
        }
        let account = match self.open_contributor_account(name) {
            Ok(account) => account,
            Err(_) => return false,
        };
        // A concurrent insert losing the race is fine: the account exists.
        self.state.add_contributor(account);
        true
    }

    /// `POST /repl/segment` — a primary pushes one sealed replication
    /// batch. Idempotent by `(contributor, seq)`: the replica records the
    /// highest applied sequence in its own WAL (crash-safe) and skips
    /// anything at or below it, so the primary can re-send after a lost
    /// ack. The batch is applied **atomically** (one WAL frame carries
    /// the records and the high-water advance together), so a crash can
    /// never leave a half-applied batch for a re-send to duplicate.
    /// Frames carrying an epoch older than the account's assignment
    /// epoch are rejected — a deposed primary cannot overwrite a promoted
    /// replica.
    fn handle_repl_segment(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "replication requires a server key");
        }
        let Some(hex) = body.get("batch").and_then(Value::as_str) else {
            return bad_request("missing 'batch'");
        };
        let bytes = match repl::from_hex(hex) {
            Ok(b) => b,
            Err(e) => return bad_request(&format!("bad batch hex: {e}")),
        };
        let frame = match repl::decode_batch(&bytes) {
            Ok(f) => f,
            Err(e) => return bad_request(&format!("bad replication frame: {e}")),
        };
        if !self.ensure_contributor_account(&frame.contributor) {
            return Response::error(Status::InternalError, "failed to open replica account");
        }
        let id = ContributorId::new(frame.contributor.as_str());
        let seq = frame.seq;
        let (applied, ticket) = {
            let Some(mut account) = self.state.write_contributor(&id) else {
                return Response::error(Status::InternalError, "replica account vanished");
            };
            if frame.epoch < account.store.assignment_epoch() {
                let epoch = account.store.assignment_epoch();
                return Response::json_with_status(
                    Status::Conflict,
                    &json!({ "error": "stale_epoch", "epoch": epoch }),
                );
            }
            match account.store.apply_repl_batch(seq, frame.records) {
                Ok(false) => (false, None),
                Ok(true) => (true, account.store.commit_ticket()),
                Err(e) => {
                    return Response::error(
                        Status::InternalError,
                        &format!("replica apply failed: {e}"),
                    )
                }
            }
        };
        // Same durability contract as /api/upload: the ack promises the
        // batch survives a replica crash, so the fsync must land first.
        if let Some(ticket) = ticket {
            if let Err(e) = ticket.wait() {
                return Response::error(
                    Status::InternalError,
                    &format!("durable commit failed: {e}"),
                );
            }
        }
        if applied {
            sensorsafe_obsv::global()
                .counter(
                    "sensorsafe_datastore_repl_applied_batches_total",
                    "Replication batches durably applied by this replica.",
                    &[],
                )
                .inc();
        }
        Response::json(&json!({ "applied": applied, "seq": seq }))
    }

    /// `POST /repl/status` — the shipping primary's handshake. Reports
    /// this replica's durable apply high-water and assignment epoch so a
    /// restarted primary (whose in-memory shipping sequence restarted
    /// from scratch) can detect divergence and trigger a full resync
    /// instead of shipping batches the replica will silently skip.
    fn handle_repl_status(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "replication requires a server key");
        }
        let Some(contributor) = body.get("contributor").and_then(Value::as_str) else {
            return bad_request("missing 'contributor'");
        };
        if !self.ensure_contributor_account(contributor) {
            return Response::error(Status::InternalError, "failed to open replica account");
        }
        let id = ContributorId::new(contributor);
        let Some(account) = self.state.read_contributor(&id) else {
            return Response::error(Status::InternalError, "replica account vanished");
        };
        Response::json(&json!({
            "applied": (account.store.repl_applied()),
            "epoch": (account.store.assignment_epoch()),
            "fenced": (account.store.fenced()),
        }))
    }

    /// `POST /repl/reset` — wipes this replica's copy of one
    /// contributor's data ahead of a full re-snapshot (the primary calls
    /// this when the status handshake shows the streams diverged). The
    /// wipe is durable (the WAL is rewritten) and epoch-guarded: a
    /// deposed primary carrying a stale epoch cannot wipe a promoted
    /// replica, and the assignment epoch/fence survive the reset.
    fn handle_repl_reset(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "replication requires a server key");
        }
        let Some(contributor) = body.get("contributor").and_then(Value::as_str) else {
            return bad_request("missing 'contributor'");
        };
        let Some(epoch) = body.get("epoch").and_then(Value::as_u64) else {
            return bad_request("missing 'epoch'");
        };
        if !self.ensure_contributor_account(contributor) {
            return Response::error(Status::InternalError, "failed to open replica account");
        }
        let id = ContributorId::new(contributor);
        let outcome = self.state.with_contributor_mut(&id, |account| {
            let current = account.store.assignment_epoch();
            if epoch < current {
                return Err(current);
            }
            Ok(account.store.repl_reset())
        });
        match outcome {
            Some(Ok(Ok(()))) => Response::json(&json!({ "ok": true })),
            Some(Ok(Err(e))) => {
                Response::error(Status::InternalError, &format!("replica reset failed: {e}"))
            }
            Some(Err(current)) => Response::json_with_status(
                Status::Conflict,
                &json!({ "error": "stale_epoch", "epoch": current }),
            ),
            None => Response::error(Status::InternalError, "replica account vanished"),
        }
    }

    /// `POST /repl/register` — a primary mirrors a freshly minted
    /// account. The replica adopts the *same* API key, so clients keep
    /// authenticating after failover without re-registering.
    fn handle_repl_register(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "replication requires a server key");
        }
        let Some(name) = body.get("name").and_then(Value::as_str) else {
            return bad_request("missing 'name'");
        };
        let Some(role) = body
            .get("role")
            .and_then(Value::as_str)
            .and_then(Role::parse)
        else {
            return bad_request("missing or invalid 'role'");
        };
        let Some(key) = body
            .get("mirrored_key")
            .and_then(Value::as_str)
            .and_then(ApiKey::parse)
        else {
            return bad_request("missing or invalid 'mirrored_key'");
        };
        match role {
            Role::Contributor => {
                if !self.ensure_contributor_account(name) {
                    return Response::error(
                        Status::InternalError,
                        "failed to open replica account",
                    );
                }
            }
            Role::Consumer => {
                let groups = body
                    .get("groups")
                    .and_then(Value::as_string_list)
                    .unwrap_or_default()
                    .into_iter()
                    .map(GroupId::new)
                    .collect();
                let studies = body
                    .get("studies")
                    .and_then(Value::as_string_list)
                    .unwrap_or_default()
                    .into_iter()
                    .map(StudyId::new)
                    .collect();
                self.state.add_consumer(ConsumerAccount {
                    id: ConsumerId::new(name),
                    groups,
                    studies,
                });
            }
            Role::Server => return bad_request("server keys are never mirrored"),
        }
        self.keys.register_key(
            &key,
            Principal {
                name: name.to_string(),
                role,
            },
        );
        Response::json(&json!({ "ok": true }))
    }

    /// `POST /repl/rules` — a primary mirrors a rule change so a promoted
    /// replica enforces the same privacy rules. Epoch-guarded: a stale
    /// mirror never regresses the replica's copy.
    fn handle_repl_rules(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "replication requires a server key");
        }
        let Some(contributor) = body.get("contributor").and_then(Value::as_str) else {
            return bad_request("missing 'contributor'");
        };
        let Some(epoch) = body.get("epoch").and_then(Value::as_u64) else {
            return bad_request("missing 'epoch'");
        };
        let Some(rules_json) = body.get("rules") else {
            return bad_request("missing 'rules'");
        };
        let rules = match PrivacyRule::parse_rules(&rules_json.to_string()) {
            Ok(r) => r,
            Err(e) => return bad_request(&e.to_string()),
        };
        if !self.ensure_contributor_account(contributor) {
            return Response::error(Status::InternalError, "failed to open replica account");
        }
        let id = ContributorId::new(contributor);
        let current = self
            .state
            .with_contributor_mut(&id, |account| {
                if epoch > account.rule_epoch {
                    account.rules = rules.clone();
                    account.rule_epoch = epoch;
                }
                account.rule_epoch
            })
            .unwrap_or(0);
        if current == epoch {
            // Adopted: the mirrored set is now live on this replica too.
            self.awareness
                .note_rule_set(contributor, epoch, rules.len());
        }
        Response::json(&json!({ "epoch": current }))
    }

    /// Shared body of `/repl/fence` and `/repl/promote`: both CAS the
    /// account's assignment epoch forward and set the fenced flag. An
    /// epoch older than the current one is rejected as stale, making both
    /// operations idempotent and safe to retry. The transition is staged
    /// on the account's WAL and the 200 waits for the commit — the broker
    /// stops retrying a fence once acknowledged, so the ack must mean
    /// the fence survives a restart.
    fn repl_set_epoch(&self, body: &Value, fenced: bool) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Server {
            return Response::error(Status::Forbidden, "fencing requires a server key");
        }
        let Some(contributor) = body.get("contributor").and_then(Value::as_str) else {
            return bad_request("missing 'contributor'");
        };
        let Some(epoch) = body.get("epoch").and_then(Value::as_u64) else {
            return bad_request("missing 'epoch'");
        };
        if !self.ensure_contributor_account(contributor) {
            return Response::error(Status::InternalError, "failed to open replica account");
        }
        let id = ContributorId::new(contributor);
        let outcome = self.state.with_contributor_mut(&id, |account| {
            let current = account.store.assignment_epoch();
            if epoch < current {
                return Err(current);
            }
            Ok(account
                .store
                .note_assignment(epoch, fenced)
                .map(|()| account.store.commit_ticket()))
        });
        match outcome {
            Some(Ok(Ok(ticket))) => {
                if let Some(ticket) = ticket {
                    if let Err(e) = ticket.wait() {
                        return Response::error(
                            Status::InternalError,
                            &format!("fence persist failed: {e}"),
                        );
                    }
                }
                Response::json(&json!({ "ok": true, "epoch": epoch }))
            }
            Some(Ok(Err(e))) => {
                Response::error(Status::InternalError, &format!("fence persist failed: {e}"))
            }
            Some(Err(current)) => Response::json_with_status(
                Status::Conflict,
                &json!({ "error": "stale_epoch", "epoch": current }),
            ),
            None => Response::error(Status::InternalError, "replica account vanished"),
        }
    }

    /// `POST /repl/fence` — the broker fences a deposed primary: the
    /// account stops accepting contributor writes and the shipper stops
    /// pushing its batches.
    fn handle_repl_fence(&self, body: &Value) -> Response {
        self.repl_set_epoch(body, true)
    }

    /// `POST /repl/promote` — the broker promotes this store to primary
    /// for the contributor at the given epoch; writes are (re-)enabled.
    fn handle_repl_promote(&self, body: &Value) -> Response {
        self.repl_set_epoch(body, false)
    }

    fn handle_upload(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Contributor {
            return Response::error(Status::Forbidden, "only contributors upload data");
        }
        let id = ContributorId::new(principal.name);
        let mut segments = Vec::new();
        if let Some(items) = body.get("segments").and_then(Value::as_array) {
            for item in items {
                match WaveSegment::from_json(item) {
                    Ok(seg) => segments.push(seg),
                    Err(e) => return bad_request(&format!("bad segment: {e}")),
                }
            }
        }
        let mut annotations = Vec::new();
        if let Some(items) = body.get("annotations").and_then(Value::as_array) {
            for item in items {
                match annotation_from_json(item) {
                    Ok(ann) => annotations.push(ann),
                    Err(e) => return bad_request(&format!("bad annotation: {e}")),
                }
            }
        }
        // Optional idempotency token: a client that retries an upload
        // whose response was lost sends the same token again, and the
        // duplicate is answered from the store's token ledger instead of
        // being stored twice.
        let token = match body.get("upload_token") {
            None => None,
            Some(v) => {
                let Some(hex) = v.as_str() else {
                    return bad_request("bad 'upload_token': expected hex string");
                };
                match repl::from_hex(hex) {
                    Ok(t) if !t.is_empty() => Some(t),
                    _ => return bad_request("bad 'upload_token': expected hex string"),
                }
            }
        };
        // Stage-then-wait: the account write lock covers only the
        // in-memory mutation and WAL *staging*; the fsync wait happens
        // after the lock is released, so concurrent uploads (to this or
        // other accounts) group-commit instead of serializing on disk
        // latency (DESIGN.md §8).
        let (stored, annotated, ticket) = {
            let Some(mut account) = self.state.write_contributor(&id) else {
                return Response::error(Status::NotFound, "no such contributor account");
            };
            // Epoch fence: after a failover this store is no longer the
            // contributor's primary. Rejecting with the new epoch lets the
            // client re-resolve the assignment at the broker and retry.
            if account.store.fenced() {
                let epoch = account.store.assignment_epoch();
                return Response::json_with_status(
                    Status::Conflict,
                    &json!({ "error": "fenced", "epoch": epoch }),
                );
            }
            if let Some(token) = token.as_deref() {
                if let Some((stored, annotated)) = account.store.check_upload_token(token) {
                    sensorsafe_obsv::global()
                        .counter(
                            "sensorsafe_datastore_duplicate_uploads_total",
                            "Upload retries answered from the idempotency-token ledger.",
                            &[],
                        )
                        .inc();
                    return Response::json(&json!({
                        "stored_segments": (stored as usize),
                        "stored_annotations": (annotated as usize),
                        "duplicate": true,
                    }));
                }
            }
            let mut stored = 0usize;
            for seg in segments {
                if account.store.insert_segment(seg).is_ok() {
                    stored += 1;
                }
            }
            let mut annotated = 0usize;
            for ann in annotations {
                if account.store.insert_annotation(ann).is_ok() {
                    annotated += 1;
                }
            }
            if let Some(token) = token {
                if let Err(e) =
                    account
                        .store
                        .note_upload_token(token, stored as u32, annotated as u32)
                {
                    return Response::error(
                        Status::InternalError,
                        &format!("durable commit failed: {e}"),
                    );
                }
            }
            (stored, annotated, account.store.commit_ticket())
        };
        // Durable mode: make the batch crash-safe before acking. The ack
        // is a durability promise, so a failed commit must be a 500.
        if let Some(ticket) = ticket {
            if let Err(e) = ticket.wait() {
                return Response::error(
                    Status::InternalError,
                    &format!("durable commit failed: {e}"),
                );
            }
            // Process-wide (like the WAL fsync counter it pairs with):
            // fsyncs_total / durable_uploads_total is the group-commit
            // coalescing ratio the C2 bench asserts on.
            sensorsafe_obsv::global()
                .counter(
                    "sensorsafe_datastore_durable_uploads_total",
                    "Upload requests acked after a durable WAL commit.",
                    &[],
                )
                .inc();
        }
        Response::json(&json!({
            "stored_segments": stored,
            "stored_annotations": annotated,
        }))
    }

    fn handle_query(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        trace::phase("auth");
        let Some(contributor) = body.get("contributor").and_then(Value::as_str) else {
            return bad_request("missing 'contributor'");
        };
        let contributor = ContributorId::new(contributor);
        let query = match body.get("query") {
            None => Query::all(),
            Some(q) => match Query::from_json(q) {
                Ok(q) => q,
                Err(e) => return bad_request(&format!("bad query: {e}")),
            },
        };
        // Owners see their own data raw ("view their own data using the
        // web-based interface"); everyone else goes through enforcement.
        let owner = principal.role == Role::Contributor && principal.name == contributor.as_str();
        if owner {
            let Some(account) = self.state.read_contributor(&contributor) else {
                return Response::error(Status::NotFound, "no such contributor");
            };
            let segments: Vec<Value> = account
                .store
                .query(&query)
                .iter()
                .map(WaveSegment::to_json)
                .collect();
            return Response::json(&json!({ "segments": (Value::Array(segments)) }));
        }
        if principal.role != Role::Consumer {
            return Response::error(Status::Forbidden, "consumers only");
        }
        let Some(consumer) = self
            .state
            .consumer(&ConsumerId::new(principal.name.clone()))
        else {
            return Response::error(Status::Forbidden, "consumer not registered here");
        };
        // Tag this thread with the consumer so `policy::enforce` deep in the
        // pipeline attributes its per-decision audit counters correctly,
        // and with the ledger + contributor so every enforcement decision
        // lands in the tamper-evident audit trail.
        let _audit = audit::consumer_scope(principal.name.clone());
        let _ledger = audit::ledger_scope(self.ledger.clone(), contributor.as_str().to_string());
        sensorsafe_obsv::global()
            .counter(
                "sensorsafe_audit_requests_total",
                "Consumer data queries entering the enforcement pipeline.",
                &[(
                    "consumer",
                    &audit::consumer_label("sensorsafe_audit_requests_total", &principal.name),
                )],
            )
            .inc();
        let ctx = consumer.to_ctx();
        let Some(account) = self.state.read_contributor(&contributor) else {
            return Response::error(Status::NotFound, "no such contributor");
        };
        // The awareness scope needs the rule epoch that is live for this
        // request (read under the same account guard enforcement uses),
        // so rule hits attribute to the exact rule set that produced them.
        let _aware = sensorsafe_obsv::awareness::awareness_scope(
            self.awareness.clone(),
            contributor.as_str().to_string(),
            account.rule_epoch,
        );
        let view = shared_view(&account, &ctx, &query, &self.graph);
        let payload = shared_view_to_json(&view);
        trace::phase("serialize");
        drop(account);
        Response::json(&payload)
    }

    fn handle_rules_set(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Contributor {
            return Response::error(Status::Forbidden, "only contributors edit their rules");
        }
        let Some(rules_json) = body.get("rules") else {
            return bad_request("missing 'rules'");
        };
        let rules = match PrivacyRule::parse_rules(&rules_json.to_string()) {
            Ok(r) => r,
            Err(e) => return bad_request(&e.to_string()),
        };
        let id = ContributorId::new(principal.name.clone());
        let epoch = {
            let Some(mut account) = self.state.write_contributor(&id) else {
                return Response::error(Status::NotFound, "no such contributor account");
            };
            if account.store.fenced() {
                let epoch = account.store.assignment_epoch();
                return Response::json_with_status(
                    Status::Conflict,
                    &json!({ "error": "fenced", "epoch": epoch }),
                );
            }
            account.set_rules(rules.clone())
        };
        self.awareness
            .note_rule_set(id.as_str(), epoch, rules.len());
        let synced = self.push_rules_to_broker(&id, epoch, &rules);
        self.mirror_rules_to_replica(id.as_str(), epoch, &PrivacyRule::rules_to_json(&rules));
        Response::json(&json!({ "epoch": epoch, "broker_synced": synced }))
    }

    /// Pushes one contributor's rules to the broker. Returns whether the
    /// broker acknowledged ("remote data stores automatically communicate
    /// with the broker to synchronize the privacy rules", §5.2).
    pub(crate) fn push_rules_to_broker(
        &self,
        contributor: &ContributorId,
        epoch: u64,
        rules: &[PrivacyRule],
    ) -> bool {
        let guard = self.broker.lock();
        let Some(link) = guard.as_ref() else {
            return false;
        };
        let payload = json!({
            "key": (link.store_key.clone()),
            "contributor": (contributor.as_str()),
            "store_addr": (link.store_addr.clone()),
            "epoch": epoch,
            "rules": (PrivacyRule::rules_to_json(rules)),
        });
        link.transport
            .round_trip(&Request::post_json("/api/sync", &payload))
            .map(|resp| resp.status.is_success())
            .unwrap_or(false)
    }

    fn handle_rules_get(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Contributor {
            return Response::error(Status::Forbidden, "only contributors read their rules");
        }
        let id = ContributorId::new(principal.name);
        let Some(account) = self.state.read_contributor(&id) else {
            return Response::error(Status::NotFound, "no such contributor account");
        };
        Response::json(&json!({
            "rules": (PrivacyRule::rules_to_json(&account.rules)),
            "epoch": (account.rule_epoch),
        }))
    }

    fn handle_places_set(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        if principal.role != Role::Contributor {
            return Response::error(Status::Forbidden, "only contributors edit their places");
        }
        let Some(items) = body.get("places").and_then(Value::as_array) else {
            return bad_request("missing 'places'");
        };
        let mut places = Vec::with_capacity(items.len());
        for item in items {
            let Some(label) = item.get("label").and_then(Value::as_str) else {
                return bad_request("place missing 'label'");
            };
            let get = |k: &str| item.path(&format!("region.{k}")).and_then(Value::as_f64);
            let (Some(south), Some(north), Some(west), Some(east)) =
                (get("south"), get("north"), get("west"), get("east"))
            else {
                return bad_request("place missing region bounds");
            };
            if south > north {
                return bad_request("place region south above north");
            }
            places.push((label.to_string(), Region::new(south, north, west, east)));
        }
        let id = ContributorId::new(principal.name);
        match self.state.write_contributor(&id) {
            Some(mut account) => {
                account.places = places;
                Response::json(&json!({ "ok": true }))
            }
            None => Response::error(Status::NotFound, "no such contributor account"),
        }
    }

    /// `POST /api/audit` — the contributor-facing audit query (§3's
    /// oversight requirement: owners can see exactly which consumers got
    /// what). The key travels in the body per §5.4. Contributors see
    /// their own enforcement history; the admin key may pass an explicit
    /// `contributor` filter (or none, for the whole ledger).
    fn handle_audit(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        let contributor_filter = match principal.role {
            Role::Contributor => Some(principal.name.clone()),
            Role::Server => body
                .get("contributor")
                .and_then(Value::as_str)
                .map(str::to_string),
            Role::Consumer => {
                return Response::error(
                    Status::Forbidden,
                    "the audit ledger is owner- and operator-facing",
                )
            }
        };
        // Filtering is pushed down into the ledger backend: one backward
        // scan, only the page's rows are cloned (never the whole ledger).
        let page = self.ledger.page(&sensorsafe_obsv::AuditFilter {
            contributor: contributor_filter,
            consumer: body
                .get("consumer")
                .and_then(Value::as_str)
                .map(str::to_string),
            from_ms: body.get("from_ms").and_then(Value::as_u64),
            to_ms: body.get("to_ms").and_then(Value::as_u64),
            before: body.get("before").and_then(Value::as_u64),
            limit: body
                .get("limit")
                .and_then(Value::as_u64)
                .unwrap_or(100)
                .min(1_000) as usize,
        });
        let decisions: Vec<Value> = page
            .records
            .iter()
            .map(|r| {
                json!({
                    "seq": (r.seq),
                    "unix_ms": (r.unix_ms),
                    "trace_id": (format!("{:016x}", r.trace_id)),
                    "rule_epoch": (r.rule_epoch),
                    "contributor": (r.contributor.clone()),
                    "consumer": (r.consumer.clone()),
                    "outcome": (r.outcome.as_str()),
                    "matched_rules": (Value::Array(
                        r.matched_rules.iter().map(|&i| Value::from(i as u64)).collect(),
                    )),
                    "suppressed_channels": (r.suppressed_channels),
                })
            })
            .collect();
        Response::json(&json!({
            "decisions": (Value::Array(decisions)),
            "matched": (page.matched),
            "ledger_len": (self.ledger.len()),
        }))
    }

    /// `POST /api/privacy/summary` — the sharing-awareness plane's JSON
    /// face (§6's posture-inspection walkthroughs, made queryable). The
    /// key travels in the body per §5.4. Contributors see their own
    /// summary; the admin key passes an explicit `contributor`; consumers
    /// are refused — this surface is about them, not for them.
    fn handle_privacy_summary(&self, body: &Value) -> Response {
        let Some(principal) = self.authenticate(body) else {
            return unauthorized();
        };
        let contributor = match principal.role {
            Role::Contributor => principal.name.clone(),
            Role::Server => match body.get("contributor").and_then(Value::as_str) {
                Some(c) => c.to_string(),
                None => return bad_request("missing 'contributor'"),
            },
            Role::Consumer => {
                return Response::error(
                    Status::Forbidden,
                    "the privacy summary is owner- and operator-facing",
                )
            }
        };
        let summary = self.awareness.contributor_summary(&contributor);
        Response::json(&privacy_summary_json(
            &contributor,
            &summary,
            self.ledger.len(),
        ))
    }

    fn handle_health(&self) -> Response {
        Response::json(&json!({
            "ok": true,
            "server": (self.config.name.clone()),
            "contributors": (self.state.contributor_count()),
        }))
    }

    /// The newest rule epoch across hosted contributors — the epoch the
    /// broker's mirror should have caught up to.
    fn latest_rule_epoch(&self) -> u64 {
        self.state
            .contributor_ids()
            .into_iter()
            .filter_map(|id| self.state.with_contributor(&id, |a| a.rule_epoch))
            .max()
            .unwrap_or(0)
    }

    /// Liveness plus component health. Always HTTP 200 — liveness probes
    /// must keep passing while the process can answer at all — but the
    /// body's `status` drops to `degraded` when a component is impaired
    /// (a sticky WAL commit failure, or the audit ledger running on its
    /// in-memory fallback), which the broker's fleet health plane reads.
    fn handle_healthz(&self) -> Response {
        let wal_errors = self.state.wal_sticky_errors();
        let wal_status = match wal_errors.first() {
            None => "ok".to_string(),
            Some((contributor, err)) => {
                format!(
                    "error ({} accounts): {}: {err}",
                    wal_errors.len(),
                    contributor
                )
            }
        };
        let ledger_status = if self.ledger_fallback {
            "fallback_memory"
        } else {
            "ok"
        };
        let degraded = wal_status != "ok" || ledger_status != "ok";
        Response::json(&json!({
            "status": (if degraded { "degraded" } else { "ok" }),
            "version": (env!("CARGO_PKG_VERSION")),
            "uptime_secs": (self.started.elapsed().as_secs()),
            "rule_sync_epoch": (self.latest_rule_epoch()),
            "components": {
                "wal": (wal_status),
                "audit_ledger": (ledger_status),
            },
        }))
    }

    /// Instance metrics first, then the process-wide registry (net/store/
    /// policy counters), in one scrape body.
    fn handle_metrics(&self) -> Response {
        let mut body = self.registry.encode();
        body.push_str(&sensorsafe_obsv::global().encode());
        Response::text(body)
    }
}

fn annotation_from_json(value: &Value) -> Result<ContextAnnotation, String> {
    let start = value
        .path("window.start")
        .and_then(Value::as_i64)
        .ok_or("annotation missing window.start")?;
    let end = value
        .path("window.end")
        .and_then(Value::as_i64)
        .ok_or("annotation missing window.end")?;
    if end < start {
        return Err("annotation window end before start".into());
    }
    let states_json = value
        .get("states")
        .and_then(Value::as_array)
        .ok_or("annotation missing states")?;
    let mut states = Vec::with_capacity(states_json.len());
    for s in states_json {
        let kind = s
            .get("kind")
            .and_then(Value::as_str)
            .and_then(sensorsafe_types::ContextKind::parse)
            .ok_or("bad state kind")?;
        let active = s
            .get("active")
            .and_then(Value::as_bool)
            .ok_or("bad state active flag")?;
        states.push(sensorsafe_types::ContextState { kind, active });
    }
    Ok(ContextAnnotation::new(
        sensorsafe_types::TimeRange::new(
            sensorsafe_types::Timestamp::from_millis(start),
            sensorsafe_types::Timestamp::from_millis(end),
        ),
        states,
    ))
}

/// Serializes an annotation to the upload wire form (client side).
pub fn annotation_to_json(ann: &ContextAnnotation) -> Value {
    json!({
        "window": {
            "start": (ann.window.start.millis()),
            "end": (ann.window.end.millis()),
        },
        "states": (Value::Array(
            ann.states
                .iter()
                .map(|s| json!({"kind": (s.kind.as_str()), "active": (s.active)}))
                .collect(),
        )),
    })
}

/// Serializes a [`sensorsafe_obsv::ContributorSummary`] into the
/// `/api/privacy/summary` response shape (shared with `/ui/privacy`).
fn privacy_summary_json(
    contributor: &str,
    summary: &sensorsafe_obsv::ContributorSummary,
    ledger_len: u64,
) -> Value {
    let consumers: Vec<Value> = summary
        .consumers
        .iter()
        .map(|f| {
            json!({
                "consumer": (f.consumer.clone()),
                "allowed": (f.counts.allowed),
                "abstracted": (f.counts.abstracted),
                "denied": (f.counts.denied),
                "baseline": (f.counts.baseline),
                "total": (f.counts.total()),
                "baseline_only": (f.baseline_only),
            })
        })
        .collect();
    let rule_hits: Vec<Value> = summary
        .rule_hits
        .iter()
        .map(|r| {
            json!({
                "epoch": (r.epoch),
                "rule": (r.rule as u64),
                "hits": (r.hits),
                "last_unix_ms": (r.last_unix_ms),
                "current": (r.current),
            })
        })
        .collect();
    let trend: Vec<Value> = summary
        .trend
        .iter()
        .map(|p| {
            json!({
                "bucket_unix_secs": (p.bucket_unix_secs),
                "allowed": (p.allowed),
                "abstracted": (p.abstracted),
                "denied": (p.denied),
            })
        })
        .collect();
    let dead_rules: Vec<Value> = summary
        .dead_rules
        .iter()
        .map(|&r| Value::from(r as u64))
        .collect();
    let baseline_only: Vec<Value> = summary
        .baseline_only_consumers
        .iter()
        .map(|c| Value::from(c.clone()))
        .collect();
    json!({
        "contributor": (contributor.to_string()),
        "rule_epoch": (summary.rule_epoch),
        "rule_count": (summary.rule_count as u64),
        "decisions": (json!({
            "allowed": (summary.counts.allowed),
            "abstracted": (summary.counts.abstracted),
            "denied": (summary.counts.denied),
            "baseline": (summary.counts.baseline),
            "total": (summary.counts.total()),
        })),
        "suppressed_channels": (summary.suppressed_channels),
        "last_unix_ms": (summary.last_unix_ms),
        "consumers": (Value::Array(consumers)),
        "rule_hits": (Value::Array(rule_hits)),
        "dead_rules": (Value::Array(dead_rules)),
        "baseline_only_consumers": (Value::Array(baseline_only)),
        "trend": (Value::Array(trend)),
        "aggregates_digest": (summary.digest.clone()),
        "ledger_len": (ledger_len),
    })
}

impl DataStoreService {
    /// Builds a service. Returns the service plus the **admin key** (a
    /// `Role::Server` credential the operator uses to create accounts
    /// and that the broker uses for escrowed consumer registration).
    pub fn new(config: DataStoreConfig) -> (DataStoreService, ApiKey) {
        let state = DataStoreState::with_mode(config.lock_mode);
        // The audit ledger is durable alongside the WALs when a data
        // directory is configured. A ledger that fails verification is
        // never silently adopted: the file is left untouched for offline
        // forensics (docs/OPERATIONS.md) and decisions go to a fresh
        // in-memory ledger so enforcement keeps being recorded.
        let mut ledger_fallback = false;
        let ledger: Arc<dyn AuditLedger> = match &config.data_dir {
            None => Arc::new(MemoryLedger::new()),
            Some(dir) => match sensorsafe_store::FileLedger::open(dir.join("audit.ledger")) {
                Ok(ledger) => Arc::new(ledger),
                Err(e) => {
                    eprintln!(
                        "{{\"event\":\"audit_ledger_rejected\",\"server\":\"{}\",\"error\":\"{e}\"}}",
                        config.name
                    );
                    ledger_fallback = true;
                    Arc::new(MemoryLedger::new())
                }
            },
        };
        // Storage engine v2: one shared journal for every hosted
        // account. An open failure (corrupt checkpoint, unwritable
        // directory) degrades to per-account WALs — the server still
        // starts and /healthz exposes the per-store engine state — but
        // is loudly logged because the operator chose the journal.
        let journal = match (&config.data_dir, config.engine) {
            (Some(dir), StorageEngine::Journal) => {
                let journal_config = sensorsafe_store::JournalConfig {
                    commit: config.wal,
                    ..config.journal
                };
                match sensorsafe_store::StoreJournal::open(dir, journal_config) {
                    Ok(journal) => Some(Arc::new(journal)),
                    Err(e) => {
                        eprintln!(
                            "{{\"event\":\"journal_open_failed\",\"server\":\"{}\",\"error\":\"{e}\",\"fallback\":\"per_account_wal\"}}",
                            config.name
                        );
                        None
                    }
                }
            }
            _ => None,
        };
        let traces = TraceRecorder::new(256);
        traces.set_slow_threshold(sensorsafe_obsv::trace::slow_threshold_from_env(
            config.slow_request_threshold,
        ));
        let inner = Arc::new(Inner {
            config,
            journal,
            state,
            keys: KeyRing::new(),
            graph: DependencyGraph::paper(),
            broker: Mutex::new(None),
            replica: Mutex::new(None),
            repl_synced: Mutex::new(BTreeSet::new()),
            passwords: PasswordStore::new(),
            sessions: SessionManager::new(),
            registry: Registry::new(),
            traces,
            ledger,
            ledger_fallback,
            awareness: Arc::new(sensorsafe_obsv::AwarenessPlane::new()),
            started: std::time::Instant::now(),
        });
        let admin_key = inner.keys.register(Principal {
            name: "admin".to_string(),
            role: Role::Server,
        });
        if let Some(journal) = inner.journal.clone() {
            // Checkpoint source: snapshot every hosted account under its
            // write lock. `high_seq` MUST be read under that same lock
            // (atomically with the record snapshot) or records staged in
            // between would be lost or duplicated on replay. Accounts the
            // journal recovered but nobody re-registered yet are carried
            // forward by the journal itself. Weak references keep the
            // journal's background threads from leaking the whole server.
            let weak = Arc::downgrade(&inner);
            let source_journal = Arc::downgrade(&journal);
            journal.register_checkpoint_source(Box::new(move || {
                let (Some(inner), Some(journal)) = (weak.upgrade(), source_journal.upgrade())
                else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for id in inner.state.contributor_ids() {
                    let entry = inner.state.with_contributor_mut(&id, |a| {
                        sensorsafe_store::CheckpointAccount {
                            name: id.as_str().to_string(),
                            high_seq: journal.account_seq(id.as_str()),
                            records: a.store.snapshot_records(),
                            rule_epoch: a.rule_epoch,
                            repl_head: a.store.repl_seal_head(),
                        }
                    });
                    out.extend(entry);
                }
                out
            }));
            // GC gate: a checkpointed segment may only be deleted once
            // the replica has acked everything the checkpoint says was
            // sealed for shipping (PR 6's `repl_acked_seq`). `None` for
            // an account without replication enabled — safe, because
            // enabling replication always starts from a full snapshot.
            let weak = Arc::downgrade(&inner);
            journal.register_gc_gate(Box::new(move |name: &str| {
                let inner = weak.upgrade()?;
                let id = ContributorId::new(name);
                inner
                    .state
                    .with_contributor(&id, |a| {
                        a.store.repl_enabled().then(|| a.store.repl_acked_seq())
                    })
                    .flatten()
            }));
        }
        let mut router = Router::new();
        {
            let inner = inner.clone();
            router.get("/health", move |_, _| inner.handle_health());
        }
        {
            let inner = inner.clone();
            router.get("/healthz", move |_, _| inner.handle_healthz());
        }
        {
            let inner = inner.clone();
            router.get("/metrics", move |_, _| inner.handle_metrics());
        }
        {
            let inner = inner.clone();
            router.get(
                "/traces",
                move |req: &Request, _: &sensorsafe_net::Params| {
                    sensorsafe_net::traces_response(&inner.traces, req)
                },
            );
        }
        router.get(
            "/debug/profile",
            move |req: &Request, _: &sensorsafe_net::Params| sensorsafe_net::profile_response(req),
        );
        router.get(
            "/debug/spans",
            move |req: &Request, _: &sensorsafe_net::Params| sensorsafe_net::spans_response(req),
        );
        macro_rules! post_json_route {
            ($path:literal, $method:ident) => {{
                let inner = inner.clone();
                router.post(
                    $path,
                    move |req: &Request, _: &sensorsafe_net::Params| match req.json() {
                        Ok(body) => inner.$method(&body),
                        Err(e) => bad_request(&format!("invalid JSON body: {e}")),
                    },
                );
            }};
        }
        post_json_route!("/api/register", handle_register);
        post_json_route!("/api/upload", handle_upload);
        post_json_route!("/api/query", handle_query);
        post_json_route!("/api/rules/set", handle_rules_set);
        post_json_route!("/api/rules/get", handle_rules_get);
        post_json_route!("/api/places/set", handle_places_set);
        post_json_route!("/api/audit", handle_audit);
        post_json_route!("/api/privacy/summary", handle_privacy_summary);
        post_json_route!("/repl/segment", handle_repl_segment);
        post_json_route!("/repl/register", handle_repl_register);
        post_json_route!("/repl/rules", handle_repl_rules);
        post_json_route!("/repl/fence", handle_repl_fence);
        post_json_route!("/repl/promote", handle_repl_promote);
        post_json_route!("/repl/status", handle_repl_status);
        post_json_route!("/repl/reset", handle_repl_reset);
        crate::web::mount(&mut router, inner.clone());
        (
            DataStoreService {
                inner,
                router: Arc::new(router),
            },
            admin_key,
        )
    }

    /// Attaches the broker link used for automatic rule sync.
    pub fn attach_broker(&self, link: BrokerLink) {
        *self.inner.broker.lock() = Some(link);
    }

    /// Attaches a replica link, turning this store into a replicated
    /// primary: every hosted account starts buffering sealed batches for
    /// the shipper (existing data is snapshotted into the first batches),
    /// and new registrations/rule changes are mirrored as they happen.
    /// Pair the replica **before** registering contributors if you need
    /// their keys mirrored — keys are only recoverable at mint time.
    pub fn attach_replica(&self, link: crate::repl::ReplicaLink) {
        *self.inner.replica.lock() = Some(link);
        // Force a fresh /repl/status handshake per contributor: the new
        // replica may hold anything from nothing to a full copy, and the
        // shipper must compare high-waters before trusting its acks.
        self.inner.repl_synced.lock().clear();
        for id in self.inner.state.contributor_ids() {
            self.inner
                .state
                .with_contributor_mut(&id, |a| a.store.enable_replication(ReplConfig::default()));
        }
    }

    /// The attached replica's address, if any.
    pub fn replica_addr(&self) -> Option<String> {
        self.inner.replica.lock().as_ref().map(|l| l.addr.clone())
    }

    /// Runs one synchronous shipping pass (deterministic tests; the
    /// production path is [`DataStoreService::spawn_repl_shipper`]).
    /// Returns the number of batches the replica acked.
    pub fn repl_ship_now(&self) -> usize {
        self.inner.repl_ship_now()
    }

    /// Spawns the `repl-shipper` background thread, which runs a shipping
    /// pass every `interval`. The returned handle stops and joins the
    /// thread on drop.
    pub fn spawn_repl_shipper(&self, interval: std::time::Duration) -> crate::repl::ReplShipper {
        crate::repl::ReplShipper::spawn(self.inner.clone(), interval)
    }

    /// Immediately pushes every hosted contributor's rules to the broker
    /// (used right after pairing so the mirror starts complete).
    pub fn sync_all_rules(&self) -> usize {
        let mut synced = 0;
        for id in self.inner.state.contributor_ids() {
            // Copy the (epoch, rules) pair out under the account lock;
            // the broker round-trip happens without holding it.
            let snapshot = self
                .inner
                .state
                .read_contributor(&id)
                .map(|a| (a.rule_epoch, a.rules.clone()));
            if let Some((epoch, rules)) = snapshot {
                if self.inner.push_rules_to_broker(&id, epoch, &rules) {
                    synced += 1;
                }
            }
        }
        synced
    }

    /// Direct access to server state (in-process composition and tests).
    pub fn state(&self) -> &DataStoreState {
        &self.inner.state
    }

    /// The server's dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        &self.inner.graph
    }

    /// Creates a web-UI login (operator provisioning).
    pub fn create_web_user(&self, username: &str, password: &str) -> bool {
        self.inner.passwords.create_user(username, password)
    }

    /// This instance's metrics registry (scraped via `GET /metrics`).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Recent request traces, oldest first.
    pub fn recent_traces(&self) -> Vec<sensorsafe_obsv::Trace> {
        self.inner.traces.recent_traces()
    }

    /// The enforcement-decision audit ledger (file-backed when the store
    /// has a data directory, in-memory otherwise).
    pub fn audit_ledger(&self) -> Arc<dyn AuditLedger> {
        self.inner.ledger.clone()
    }

    /// The sharing-awareness plane: live privacy-decision analytics over
    /// the `record_decision` stream. Tests compare its aggregates against
    /// a ledger replay; the O4 experiment toggles it via `set_enabled`.
    pub fn awareness(&self) -> Arc<sensorsafe_obsv::AwarenessPlane> {
        self.inner.awareness.clone()
    }

    /// A snapshot of the shared journal's segment/checkpoint bookkeeping,
    /// or `None` when this store runs in-memory or on per-account WALs.
    /// Operators get the same numbers as metrics; benches and tests use
    /// this to assert rotation and GC actually happened.
    pub fn journal_stats(&self) -> Option<sensorsafe_store::JournalStats> {
        self.inner.journal.as_ref().map(|journal| journal.stats())
    }
}

impl Service for DataStoreService {
    fn handle(&self, request: &Request) -> Response {
        // Label by route pattern, not concrete path, so cardinality stays
        // bounded by the route table.
        let endpoint = self
            .router
            .match_pattern(request.method, &request.path)
            .unwrap_or("unmatched")
            .to_string();
        // Join the caller's trace when an X-SensorSafe-Trace header is
        // present; otherwise this span roots a fresh trace.
        let _span = self.inner.traces.begin_ctx(
            format!("{} {endpoint}", request.method.as_str()),
            request.trace_context(),
        );
        let started = std::time::Instant::now();
        let response = self.router.handle(request);
        self.inner
            .registry
            .histogram(
                "sensorsafe_datastore_request_seconds",
                "Data store request latency by endpoint.",
                &[("endpoint", &endpoint)],
                None,
            )
            .observe(started.elapsed());
        self.inner
            .registry
            .counter(
                "sensorsafe_datastore_requests_total",
                "Data store requests by endpoint and status code.",
                &[
                    ("endpoint", &endpoint),
                    ("code", &response.status.code().to_string()),
                ],
            )
            .inc();
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_sim::Scenario;
    use sensorsafe_types::Timestamp;

    fn service() -> (DataStoreService, String) {
        let (svc, admin) = DataStoreService::new(DataStoreConfig::default());
        (svc, admin.to_hex())
    }

    fn register(svc: &DataStoreService, admin: &str, name: &str, role: &str) -> String {
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": admin, "name": name, "role": role}),
        ));
        assert_eq!(resp.status, Status::Created, "{:?}", resp.json_body());
        resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string()
    }

    fn upload_alice_day(svc: &DataStoreService, alice_key: &str) -> usize {
        let scenario = Scenario::alice_day(Timestamp::from_millis(1_311_500_000_000), 9, 1);
        let rendered = scenario.render();
        let segments: Vec<Value> = rendered
            .all_segments()
            .iter()
            .map(WaveSegment::to_json)
            .collect();
        let annotations: Vec<Value> = rendered
            .annotations
            .iter()
            .map(annotation_to_json)
            .collect();
        let count = segments.len();
        let resp = svc.handle(&Request::post_json(
            "/api/upload",
            &json!({
                "key": alice_key,
                "segments": (Value::Array(segments)),
                "annotations": (Value::Array(annotations)),
            }),
        ));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.json_body());
        assert_eq!(
            resp.json_body().unwrap()["stored_segments"].as_u64(),
            Some(count as u64)
        );
        count
    }

    #[test]
    fn replication_ships_applies_and_fences() {
        let (primary, admin) = service();
        let (replica, replica_admin) = DataStoreService::new(DataStoreConfig {
            name: "replica".to_string(),
            ..DataStoreConfig::default()
        });
        let replica_admin = replica_admin.to_hex();
        primary.attach_replica(crate::repl::ReplicaLink {
            addr: "replica:0".to_string(),
            transport: Arc::new(sensorsafe_net::LocalTransport::new(Arc::new(
                replica.clone(),
            ))),
            repl_key: replica_admin.clone(),
        });
        let alice = register(&primary, &admin, "alice", "contributor");
        upload_alice_day(&primary, &alice);
        assert!(primary.repl_ship_now() >= 1);
        // The replica applied the data AND adopted alice's mirrored key:
        // the same credential queries her data there.
        let resp = replica.handle(&Request::post_json(
            "/api/query",
            &json!({"key": (alice.clone()), "contributor": "alice"}),
        ));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.json_body());
        let body = resp.json_body().unwrap();
        assert!(!body["segments"].as_array().unwrap().is_empty());
        // Fully acked: a second pass ships nothing.
        assert_eq!(primary.repl_ship_now(), 0);
        // Fence the primary at epoch 2: contributor writes bounce with
        // the new epoch so the client can re-resolve at the broker.
        let resp = primary.handle(&Request::post_json(
            "/repl/fence",
            &json!({"key": (admin.clone()), "contributor": "alice", "epoch": 2}),
        ));
        assert_eq!(resp.status, Status::Ok);
        let resp = primary.handle(&Request::post_json(
            "/api/upload",
            &json!({"key": (alice.clone()), "segments": []}),
        ));
        assert_eq!(resp.status, Status::Conflict);
        let body = resp.json_body().unwrap();
        assert_eq!(body["error"].as_str(), Some("fenced"));
        assert_eq!(body["epoch"].as_u64(), Some(2));
        // Promote the replica at epoch 2: it now takes contributor writes.
        let resp = replica.handle(&Request::post_json(
            "/repl/promote",
            &json!({"key": (replica_admin.clone()), "contributor": "alice", "epoch": 2}),
        ));
        assert_eq!(resp.status, Status::Ok);
        let resp = replica.handle(&Request::post_json(
            "/api/upload",
            &json!({"key": (alice.clone()), "segments": []}),
        ));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.json_body());
        // A frame from the deposed primary (stale epoch 0) is rejected.
        let stale = sensorsafe_store::SealedBatch {
            seq: 999,
            records: Vec::new(),
        };
        let stale_hex = repl::to_hex(&repl::encode_batch("alice", 0, &stale));
        let resp = replica.handle(&Request::post_json(
            "/repl/segment",
            &json!({"key": (replica_admin.clone()), "batch": (stale_hex)}),
        ));
        assert_eq!(resp.status, Status::Conflict);
        assert_eq!(
            resp.json_body().unwrap()["error"].as_str(),
            Some("stale_epoch")
        );
        // Idempotency: the same (contributor, seq) applies exactly once.
        let dup = sensorsafe_store::SealedBatch {
            seq: 1000,
            records: Vec::new(),
        };
        let dup_hex = repl::to_hex(&repl::encode_batch("alice", 2, &dup));
        for expected_applied in [true, false] {
            let resp = replica.handle(&Request::post_json(
                "/repl/segment",
                &json!({"key": (replica_admin.clone()), "batch": (dup_hex.clone())}),
            ));
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(
                resp.json_body().unwrap()["applied"].as_bool(),
                Some(expected_applied)
            );
        }
    }

    #[test]
    fn health_endpoint() {
        let (svc, _) = service();
        let resp = svc.handle(&Request::get("/health"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.json_body().unwrap()["contributors"].as_i64(), Some(0));
    }

    #[test]
    fn registration_requires_admin_key() {
        let (svc, admin) = service();
        // Random key: rejected.
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": ("0".repeat(64)), "name": "x", "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Unauthorized);
        // Contributor key can't register others.
        let alice = register(&svc, &admin, "alice", "contributor");
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": alice, "name": "mallory", "role": "consumer"}),
        ));
        assert_eq!(resp.status, Status::Forbidden);
        // Duplicate name conflicts.
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.clone()), "name": "alice", "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Conflict);
    }

    #[test]
    fn upload_and_owner_query() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        upload_alice_day(&svc, &alice);
        // Owner sees raw data.
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": (alice.clone()), "contributor": "alice"}),
        ));
        assert_eq!(resp.status, Status::Ok);
        let segments = resp.json_body().unwrap();
        assert!(!segments["segments"].as_array().unwrap().is_empty());
    }

    #[test]
    fn consumer_query_is_enforced() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        let bob = register(&svc, &admin, "bob", "consumer");
        upload_alice_day(&svc, &alice);
        // No rules yet: Bob gets nothing (deny-by-default).
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": (bob.clone()), "contributor": "alice"}),
        ));
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.json_body().unwrap()["windows"]
            .as_array()
            .unwrap()
            .is_empty());
        // Alice allows everything: Bob sees data.
        let resp = svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (alice.clone()), "rules": [{"Action": "Allow"}]}),
        ));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.json_body().unwrap()["epoch"].as_i64(), Some(1));
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": bob, "contributor": "alice"}),
        ));
        assert!(!resp.json_body().unwrap()["windows"]
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cross_account_upload_forbidden() {
        let (svc, admin) = service();
        let _alice = register(&svc, &admin, "alice", "contributor");
        let bob = register(&svc, &admin, "bob", "consumer");
        let resp = svc.handle(&Request::post_json(
            "/api/upload",
            &json!({"key": bob, "segments": []}),
        ));
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn rules_roundtrip_and_validation() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        // Invalid rules rejected.
        let resp = svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (alice.clone()), "rules": [{"Action": "Shrug"}]}),
        ));
        assert_eq!(resp.status, Status::BadRequest);
        // Valid rules stored and readable.
        let rules = json!([
            {"Consumer": ["bob"], "Action": "Allow"},
            {"Context": ["Drive"], "Action": "Deny"},
        ]);
        let resp = svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (alice.clone()), "rules": (rules.clone())}),
        ));
        assert_eq!(resp.status, Status::Ok);
        let resp = svc.handle(&Request::post_json(
            "/api/rules/get",
            &json!({"key": alice}),
        ));
        let body = resp.json_body().unwrap();
        assert_eq!(body["epoch"].as_i64(), Some(1));
        assert_eq!(body["rules"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn places_set_validation() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        let resp = svc.handle(&Request::post_json(
            "/api/places/set",
            &json!({"key": (alice.clone()), "places": [
                {"label": "UCLA", "region": {"south": 34.06, "north": 34.08, "west": (-118.46), "east": (-118.43)}}
            ]}),
        ));
        assert_eq!(resp.status, Status::Ok);
        // Missing bounds rejected.
        let resp = svc.handle(&Request::post_json(
            "/api/places/set",
            &json!({"key": alice, "places": [{"label": "x", "region": {"south": 1.0}}]}),
        ));
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn group_membership_flows_into_enforcement() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        upload_alice_day(&svc, &alice);
        // Carol is in the "researchers" group.
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.clone()), "name": "carol", "role": "consumer",
                    "groups": ["researchers"]}),
        ));
        let carol = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        // Alice shares with the group only.
        svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (alice.clone()),
                    "rules": [{"Group": ["researchers"], "Action": "Allow"}]}),
        ));
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": carol, "contributor": "alice"}),
        ));
        assert!(!resp.json_body().unwrap()["windows"]
            .as_array()
            .unwrap()
            .is_empty());
        // A consumer outside the group gets nothing.
        let dave = register(&svc, &admin, "dave", "consumer");
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": dave, "contributor": "alice"}),
        ));
        assert!(resp.json_body().unwrap()["windows"]
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn malformed_bodies_rejected() {
        let (svc, _) = service();
        let mut req = Request::post_json("/api/query", &json!({}));
        req.body = b"not json".to_vec();
        assert_eq!(svc.handle(&req).status, Status::BadRequest);
        // Missing key field.
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"contributor": "a"}),
        ));
        assert_eq!(resp.status, Status::Unauthorized);
    }

    #[test]
    fn audit_endpoint_shows_owner_their_enforcement_history() {
        let (svc, admin) = service();
        let alice = register(&svc, &admin, "alice", "contributor");
        let bob = register(&svc, &admin, "bob", "consumer");
        upload_alice_day(&svc, &alice);
        // Two queries: one denied (no rules), one allowed.
        svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": (bob.clone()), "contributor": "alice"}),
        ));
        svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (alice.clone()), "rules": [{"Action": "Allow"}]}),
        ));
        svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": (bob.clone()), "contributor": "alice"}),
        ));
        // The owner reads their ledger: the enforcement pipeline decides
        // per query window, so the denied pass and the allowed pass each
        // left a run of records — denied first, allowed last, in order.
        let resp = svc.handle(&Request::post_json(
            "/api/audit",
            &json!({"key": (alice.clone()), "limit": 1000}),
        ));
        assert_eq!(resp.status, Status::Ok);
        let body = resp.json_body().unwrap();
        let decisions = body["decisions"].as_array().unwrap();
        assert!(decisions.len() >= 2, "{body:?}");
        let first = &decisions[0];
        let last = &decisions[decisions.len() - 1];
        assert_eq!(first["outcome"].as_str(), Some("denied"));
        assert_eq!(last["outcome"].as_str(), Some("allowed"));
        assert_eq!(last["consumer"].as_str(), Some("bob"));
        assert_eq!(last["contributor"].as_str(), Some("alice"));
        // The allowed decision records which rule matched (index 0).
        assert_eq!(last["matched_rules"].as_array().unwrap().len(), 1);
        // Every decision of one request shares that request's trace id.
        assert_eq!(
            first["trace_id"].as_str(),
            decisions[1]["trace_id"].as_str()
        );
        assert_ne!(first["trace_id"].as_str(), last["trace_id"].as_str());
        // Filters: a consumer name that never queried matches nothing.
        let resp = svc.handle(&Request::post_json(
            "/api/audit",
            &json!({"key": (alice.clone()), "consumer": "carol"}),
        ));
        assert_eq!(resp.json_body().unwrap()["matched"].as_u64(), Some(0));
        // Consumers cannot read the ledger.
        let resp = svc.handle(&Request::post_json("/api/audit", &json!({"key": bob})));
        assert_eq!(resp.status, Status::Forbidden);
    }

    #[test]
    fn traces_endpoint_serves_request_spans() {
        let (svc, _) = service();
        svc.handle(&Request::get("/health"));
        let resp = svc.handle(&Request::get("/traces"));
        assert_eq!(resp.status, Status::Ok);
        let body = resp.json_body().unwrap();
        let traces = body["traces"].as_array().unwrap();
        assert!(traces
            .iter()
            .any(|t| t["name"].as_str() == Some("GET /health")));
    }

    #[test]
    fn query_unknown_contributor_404s() {
        let (svc, admin) = service();
        let bob = register(&svc, &admin, "bob", "consumer");
        let resp = svc.handle(&Request::post_json(
            "/api/query",
            &json!({"key": bob, "contributor": "ghost"}),
        ));
        assert_eq!(resp.status, Status::NotFound);
    }
}

#[cfg(test)]
mod durability_tests {
    use super::*;
    use sensorsafe_json::json;

    #[test]
    fn durable_store_survives_restart() {
        let dir = std::env::temp_dir().join(format!("sensorsafe-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = DataStoreConfig {
            name: "durable".into(),
            data_dir: Some(dir.clone()),
            ..DataStoreConfig::default()
        };
        let uploaded;
        {
            let (svc, admin) = DataStoreService::new(config.clone());
            let resp = svc.handle(&Request::post_json(
                "/api/register",
                &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
            ));
            let key = resp.json_body().unwrap()["api_key"]
                .as_str()
                .unwrap()
                .to_string();
            let scenario = sensorsafe_sim::Scenario::alice_day(
                sensorsafe_types::Timestamp::from_millis(0),
                6,
                1,
            );
            let rendered = scenario.render();
            let segments: Vec<Value> = rendered
                .chest_segments
                .iter()
                .take(32)
                .map(WaveSegment::to_json)
                .collect();
            let resp = svc.handle(&Request::post_json(
                "/api/upload",
                &json!({"key": key, "segments": (Value::Array(segments))}),
            ));
            assert_eq!(resp.status, Status::Ok);
            uploaded = 32 * 64;
        }
        // "Restart": a fresh service over the same data directory.
        // Re-registration replays the WAL into the new account.
        let (svc, admin) = DataStoreService::new(config);
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Created);
        let id = ContributorId::new("alice");
        let stats = svc
            .state()
            .with_contributor(&id, |a| a.store.stats())
            .unwrap();
        assert_eq!(stats.samples, uploaded, "WAL replay recovered the data");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn register_alice(svc: &DataStoreService, admin: &sensorsafe_auth::ApiKey) -> String {
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Created, "{:?}", resp.json_body());
        resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string()
    }

    /// The REVIEW scenario: a durable primary restarts, its in-memory
    /// shipping sequence resets to 1, and the still-running replica has a
    /// higher persisted high-water — so without the status handshake every
    /// post-restart batch would be acked as an already-applied duplicate
    /// and silently dropped. The handshake must detect the divergence,
    /// wipe the replica, and re-ship a full snapshot.
    #[test]
    fn primary_restart_resyncs_replica_instead_of_dropping_writes() {
        let dir = std::env::temp_dir().join(format!("sensorsafe-resync-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = DataStoreConfig {
            name: "primary".into(),
            data_dir: Some(dir.clone()),
            ..DataStoreConfig::default()
        };
        let (replica, replica_admin) = DataStoreService::new(DataStoreConfig {
            name: "replica".to_string(),
            ..DataStoreConfig::default()
        });
        let replica_admin = replica_admin.to_hex();
        let link = || crate::repl::ReplicaLink {
            addr: "replica:0".to_string(),
            transport: Arc::new(sensorsafe_net::LocalTransport::new(Arc::new(
                replica.clone(),
            ))),
            repl_key: replica_admin.clone(),
        };
        let scenario =
            sensorsafe_sim::Scenario::alice_day(sensorsafe_types::Timestamp::from_millis(0), 6, 1);
        let rendered = scenario.render();
        let upload = |svc: &DataStoreService, key: &str, skip: usize| {
            let segments: Vec<Value> = rendered
                .chest_segments
                .iter()
                .skip(skip)
                .take(8)
                .map(WaveSegment::to_json)
                .collect();
            let resp = svc.handle(&Request::post_json(
                "/api/upload",
                &json!({"key": key, "segments": (Value::Array(segments))}),
            ));
            assert_eq!(resp.status, Status::Ok, "{:?}", resp.json_body());
        };
        // First incarnation: upload, ship, drain.
        {
            let (svc, admin) = DataStoreService::new(config.clone());
            let key = register_alice(&svc, &admin);
            svc.attach_replica(link());
            upload(&svc, &key, 0);
            while svc.repl_ship_now() > 0 {}
        }
        // "Restart": fresh service over the same directory. Its shipper
        // numbering restarts at seq 1 while the replica's applied
        // high-water persisted — the divergence under test.
        let (svc, admin) = DataStoreService::new(config);
        let key = register_alice(&svc, &admin);
        svc.attach_replica(link());
        upload(&svc, &key, 8);
        while svc.repl_ship_now() > 0 {}
        let id = ContributorId::new("alice");
        let primary_stats = svc
            .state()
            .with_contributor(&id, |a| a.store.stats())
            .unwrap();
        let replica_stats = replica
            .state()
            .with_contributor(&id, |a| a.store.stats())
            .unwrap();
        assert_eq!(primary_stats.samples, 16 * rendered.chest_segments[0].len());
        assert_eq!(
            replica_stats.samples, primary_stats.samples,
            "replica resynced to the full post-restart copy"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
