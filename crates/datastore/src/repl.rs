//! Primary-side replication: the replica link and the `repl-shipper`
//! background thread.
//!
//! A data store becomes a replicated **primary** when a
//! [`ReplicaLink`] is attached ([`crate::DataStoreService::attach_replica`]):
//! every hosted account's [`SegmentStore`](sensorsafe_store::SegmentStore)
//! turns on its shipping buffer, and the shipper thread drains sealed
//! batches to the replica over the ordinary HTTP surface (`POST
//! /repl/segment`). Registrations and rule changes are mirrored too
//! (`POST /repl/register`, `POST /repl/rules`) so a promoted replica can
//! authenticate the same clients and enforce the same privacy rules.
//!
//! The shipper follows the crate's lock discipline: each pass takes one
//! account write lock briefly — seal the open batch, clone the unacked
//! tail, read the assignment epoch — then releases it before any network
//! round trip. Acks re-take the lock for the duration of one
//! [`repl_ack`](sensorsafe_store::SegmentStore::repl_ack) call. A fenced
//! account (this store lost a failover CAS) is skipped entirely: a
//! deposed primary must not keep writing at the new one.
//!
//! Pairing a primary with a replica and shipping one account's data
//! (production deployments spawn
//! [`DataStoreService::spawn_repl_shipper`](crate::DataStoreService::spawn_repl_shipper)
//! instead of shipping by hand):
//!
//! ```
//! use sensorsafe_datastore::{DataStoreService, ReplicaLink};
//! use sensorsafe_json::json;
//! use sensorsafe_net::{LocalTransport, Request, Service, Transport};
//! use sensorsafe_types::{ChannelSpec, SegmentMeta, Timestamp, Timing, WaveSegment};
//! use std::sync::Arc;
//!
//! let (primary, admin) = DataStoreService::new(Default::default());
//! let (replica, replica_admin) = DataStoreService::new(Default::default());
//!
//! // The link carries a transport to the replica plus a Role::Server
//! // key minted *on the replica* that authorizes /repl/* calls there.
//! primary.attach_replica(ReplicaLink {
//!     addr: "replica-1".into(),
//!     transport: Arc::new(LocalTransport::new(Arc::new(replica.clone()))),
//!     repl_key: replica_admin.to_hex(),
//! });
//!
//! // Registrations are mirrored (same API key on both sides), uploads
//! // buffer sealed batches, and a shipping pass drains them across.
//! let resp = primary.handle(&Request::post_json(
//!     "/api/register",
//!     &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
//! ));
//! let alice_key = resp.json_body().unwrap()["api_key"].as_str().unwrap().to_string();
//! let segment = WaveSegment::from_rows(
//!     SegmentMeta {
//!         timing: Timing::Uniform { start: Timestamp::from_millis(0), interval_secs: 1.0 },
//!         location: None,
//!         format: vec![ChannelSpec::f32("ecg")],
//!     },
//!     &[vec![0.5], vec![0.7]],
//! ).unwrap();
//! let resp = primary.handle(&Request::post_json(
//!     "/api/upload",
//!     &json!({"key": (alice_key.clone()), "segments": [(segment.to_json())]}),
//! ));
//! assert!(resp.status.is_success());
//! let shipped = primary.repl_ship_now();
//! assert!(shipped > 0, "the sealed upload batch ships to the replica");
//!
//! // The replica now authenticates the same contributor key.
//! let resp = replica.handle(&Request::post_json(
//!     "/api/rules/get",
//!     &json!({"key": (alice_key)}),
//! ));
//! assert!(resp.status.is_success());
//! ```

use crate::service::Inner;
use sensorsafe_json::{json, Value};
use sensorsafe_net::{Request, Transport};
use sensorsafe_obsv::audit::consumer_label;
use sensorsafe_store::repl;
use sensorsafe_types::ContributorId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Batches shipped per contributor per shipper pass — bounds how long
/// one pass can monopolize the wire while a replica catches up.
const MAX_BATCHES_PER_PASS: usize = 32;

/// Connection details of this store's replica.
pub struct ReplicaLink {
    /// Address the replica is reachable at (registry/bookkeeping form).
    pub addr: String,
    /// Transport to the replica.
    pub transport: Arc<dyn Transport>,
    /// A `Role::Server` key **on the replica** authorizing `/repl/*`
    /// calls.
    pub repl_key: String,
}

impl Inner {
    /// One shipping pass over every hosted contributor: seal the open
    /// batch, push unacked batches in sequence order, ack what the
    /// replica durably applied. Returns batches shipped. Runs on the
    /// shipper thread, but callable directly for deterministic tests.
    pub(crate) fn repl_ship_now(&self) -> usize {
        let link = {
            let guard = self.replica.lock();
            match guard.as_ref() {
                Some(l) => (Arc::clone(&l.transport), l.repl_key.clone()),
                None => return 0,
            }
        };
        let (transport, repl_key) = link;
        let mut shipped = 0usize;
        let registry = sensorsafe_obsv::global();
        for id in self.state.contributor_ids() {
            // Handshake before trusting acks: the replica persists its
            // applied high-water, but this shipper's sequence numbering is
            // in-memory. After a primary restart (or replica swap) the two
            // can disagree — a replica ahead of us would silently ack
            // batches it never applied. Compare high-waters once per
            // attachment; on mismatch, wipe the replica (epoch-guarded)
            // and re-snapshot so shipping restarts from seq 1.
            if !self.repl_synced.lock().contains(&id) {
                if !self.repl_handshake(&id, transport.as_ref(), &repl_key) {
                    registry
                        .counter(
                            "sensorsafe_datastore_repl_ship_failures_total",
                            "Replication batch pushes that failed or were rejected.",
                            &[],
                        )
                        .inc();
                    continue;
                }
                self.repl_synced.lock().insert(id.clone());
            }
            let Some((batches, epoch)) = self
                .state
                .with_contributor_mut(&id, |account| {
                    if !account.store.repl_enabled() || account.store.fenced() {
                        return None;
                    }
                    account.store.repl_seal();
                    Some((
                        account.store.repl_peek(MAX_BATCHES_PER_PASS),
                        account.store.assignment_epoch(),
                    ))
                })
                .flatten()
            else {
                continue;
            };
            for batch in batches {
                let seq = batch.seq;
                let frame = repl::encode_batch(id.as_str(), epoch, &batch);
                let payload = json!({
                    "key": (repl_key.clone()),
                    "batch": (repl::to_hex(&frame)),
                });
                let outcome = transport.round_trip(&Request::post_json("/repl/segment", &payload));
                match outcome {
                    Ok(resp) if resp.status.is_success() => {
                        self.state
                            .with_contributor_mut(&id, |a| a.store.repl_ack(seq));
                        shipped += 1;
                        registry
                            .counter(
                                "sensorsafe_datastore_repl_shipped_batches_total",
                                "Replication batches acked by the replica.",
                                &[],
                            )
                            .inc();
                    }
                    _ => {
                        // Transport error or rejection (including a fence
                        // response): stop this account for the pass and
                        // retry on the next one. The replica may have
                        // restarted mid-run, so force a fresh handshake
                        // before trusting its next ack. (A fence also
                        // flips the durable fence flag via /repl/fence,
                        // which skips the account entirely from then on.)
                        self.repl_synced.lock().remove(&id);
                        registry
                            .counter(
                                "sensorsafe_datastore_repl_ship_failures_total",
                                "Replication batch pushes that failed or were rejected.",
                                &[],
                            )
                            .inc();
                        break;
                    }
                }
            }
            let pending = self
                .state
                .with_contributor(&id, |a| a.store.repl_pending())
                .unwrap_or(0);
            let label = consumer_label("sensorsafe_datastore_repl_pending_batches", id.as_str());
            registry
                .gauge(
                    "sensorsafe_datastore_repl_pending_batches",
                    "Replication lag: sealed batches not yet acked by the replica.",
                    &[("contributor", &label)],
                )
                .set(pending as i64);
        }
        // Fresh acks may have unblocked journal segment GC: checkpointed
        // segments are only deleted once every account's shipped batches
        // are acked (the journal's GC gate reads `repl_acked_seq`), so a
        // shipping pass is the natural moment to retry.
        if shipped > 0 {
            if let Some(journal) = &self.journal {
                journal.maybe_gc();
            }
        }
        shipped
    }

    /// Compares this primary's acked sequence against the replica's
    /// durable applied high-water for one contributor. On agreement the
    /// account is safe to ship to; on disagreement the replica's copy is
    /// wiped (`/repl/reset`, guarded by our assignment epoch so a stale
    /// deposed primary can never wipe a promoted replica) and the local
    /// buffer re-snapshots the full store so shipping restarts from
    /// seq 1. Returns whether shipping may proceed this pass.
    fn repl_handshake(
        &self,
        id: &ContributorId,
        transport: &dyn Transport,
        repl_key: &str,
    ) -> bool {
        let Some((acked, epoch, enabled)) = self.state.with_contributor(id, |account| {
            (
                account.store.repl_acked_seq(),
                account.store.assignment_epoch(),
                account.store.repl_enabled(),
            )
        }) else {
            return false;
        };
        if !enabled {
            // Nothing buffered for this account yet; nothing to reconcile.
            return true;
        }
        let status = json!({
            "key": (repl_key.to_string()),
            "contributor": (id.as_str()),
        });
        let applied = match transport.round_trip(&Request::post_json("/repl/status", &status)) {
            Ok(resp) if resp.status.is_success() => match resp
                .json_body()
                .ok()
                .as_ref()
                .and_then(|b| b.get("applied"))
                .and_then(Value::as_u64)
            {
                Some(applied) => applied,
                None => return false,
            },
            _ => return false,
        };
        if applied == acked {
            return true;
        }
        // Divergence (typically: primary restarted, so its in-memory
        // numbering reset while the replica's high-water persisted).
        // Wipe and restart from a fresh snapshot.
        let reset = json!({
            "key": (repl_key.to_string()),
            "contributor": (id.as_str()),
            "epoch": epoch,
        });
        match transport.round_trip(&Request::post_json("/repl/reset", &reset)) {
            Ok(resp) if resp.status.is_success() => {}
            _ => return false,
        }
        let resnapshotted = self
            .state
            .with_contributor_mut(id, |account| {
                if account.store.repl_enabled() {
                    account.store.repl_resnapshot();
                }
            })
            .is_some();
        if resnapshotted {
            sensorsafe_obsv::global()
                .counter(
                    "sensorsafe_datastore_repl_resyncs_total",
                    "Full replica resyncs triggered by a high-water mismatch.",
                    &[],
                )
                .inc();
        }
        resnapshotted
    }

    /// Mirrors a freshly minted registration to the replica (best
    /// effort): the replica creates the same account and adopts the same
    /// API key, so clients keep authenticating after a failover.
    pub(crate) fn mirror_registration_to_replica(
        &self,
        name: &str,
        role: &str,
        key_hex: &str,
        groups: &Value,
        studies: &Value,
    ) {
        let guard = self.replica.lock();
        let Some(link) = guard.as_ref() else {
            return;
        };
        let payload = json!({
            "key": (link.repl_key.clone()),
            "name": name,
            "role": role,
            "mirrored_key": key_hex,
            "groups": (groups.clone()),
            "studies": (studies.clone()),
        });
        let _ = link
            .transport
            .round_trip(&Request::post_json("/repl/register", &payload));
    }

    /// Mirrors a rule change to the replica (best effort), carrying the
    /// rule epoch so stale mirrors never regress the replica's copy.
    pub(crate) fn mirror_rules_to_replica(&self, contributor: &str, epoch: u64, rules: &Value) {
        let guard = self.replica.lock();
        let Some(link) = guard.as_ref() else {
            return;
        };
        let payload = json!({
            "key": (link.repl_key.clone()),
            "contributor": contributor,
            "epoch": epoch,
            "rules": (rules.clone()),
        });
        let _ = link
            .transport
            .round_trip(&Request::post_json("/repl/rules", &payload));
    }
}

/// Handle to the `repl-shipper` background thread. Dropping it (or
/// calling [`ReplShipper::stop`]) stops the thread and joins it — the
/// same clean-shutdown contract as the broker's fleet scraper.
pub struct ReplShipper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplShipper {
    pub(crate) fn spawn(inner: Arc<Inner>, interval: Duration) -> ReplShipper {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("repl-shipper".to_string())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    {
                        let _frame = sensorsafe_obsv::prof_frame!("repl-ship");
                        inner.repl_ship_now();
                    }
                    // Sleep in short slices so stop() returns promptly.
                    let mut remaining = interval;
                    while remaining > Duration::ZERO && !thread_stop.load(Ordering::Acquire) {
                        let slice = remaining.min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("spawn repl-shipper thread");
        ReplShipper {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the shipper to stop and joins the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplShipper {
    fn drop(&mut self) {
        self.stop();
    }
}
