//! The query/privacy processing module (Fig. 2): every consumer query
//! flows through here, and only rewritten [`SharedSegment`]s leave the
//! server.
//!
//! A raw query result segment may span several context windows (Alice's
//! drive ends, a meeting begins). Enforcement must not average over
//! them: the pipeline splits each segment along annotation boundaries,
//! evaluates the rule set per window, and rewrites each piece
//! independently.

use crate::state::ContributorAccount;
use sensorsafe_json::{json, Map, Value};
use sensorsafe_policy::{
    enforce, ConsumerCtx, DependencyGraph, SharedLocation, SharedSegment, TimeAbs,
};
use sensorsafe_store::Query;
use sensorsafe_types::{ContextAnnotation, TimeRange, WaveSegment};

/// The consumer-visible result of one query against one contributor.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedView {
    /// Enforced windows, in segment/time order. Windows where nothing is
    /// shared are absent.
    pub windows: Vec<SharedSegment>,
}

impl SharedView {
    /// Total raw samples shared.
    pub fn raw_samples(&self) -> usize {
        self.windows
            .iter()
            .filter_map(|w| w.segment.as_ref())
            .map(WaveSegment::len)
            .sum()
    }

    /// Total context labels shared.
    pub fn label_count(&self) -> usize {
        self.windows.iter().map(|w| w.labels.len()).sum()
    }

    /// True if the consumer received nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Splits `range` at every annotation boundary inside it, yielding
/// sub-ranges with constant context.
fn split_at_annotations(range: &TimeRange, annotations: &[&ContextAnnotation]) -> Vec<TimeRange> {
    let mut cuts: Vec<i64> = vec![range.start.millis(), range.end.millis()];
    for ann in annotations {
        for edge in [ann.window.start.millis(), ann.window.end.millis()] {
            if edge > range.start.millis() && edge < range.end.millis() {
                cuts.push(edge);
            }
        }
    }
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|pair| {
            TimeRange::new(
                sensorsafe_types::Timestamp::from_millis(pair[0]),
                sensorsafe_types::Timestamp::from_millis(pair[1]),
            )
        })
        .collect()
}

/// Runs `query` for `consumer` against one contributor's account,
/// applying the full enforcement pipeline.
pub fn shared_view(
    account: &ContributorAccount,
    consumer: &ConsumerCtx,
    query: &Query,
    graph: &DependencyGraph,
) -> SharedView {
    let mut windows = Vec::new();
    let segments = account.store.query(query);
    sensorsafe_obsv::trace::phase("store_query");
    // One cache hit per request (compiled at most once per epoch) instead
    // of cloning and re-walking the raw rule list per window.
    let compiled = account.compiled_rules();
    for segment in segments {
        let Some(seg_range) = segment.time_range() else {
            continue;
        };
        let overlapping = account.store.annotations_in(&seg_range);
        for window in split_at_annotations(&seg_range, &overlapping) {
            let Some(piece) = segment.slice_time(&window) else {
                continue;
            };
            let window_annotations: Vec<ContextAnnotation> = overlapping
                .iter()
                .filter(|a| a.window.overlaps(&window))
                .map(|a| (*a).clone())
                .collect();
            let contexts = window_annotations
                .iter()
                .flat_map(|a| a.states.iter().copied())
                .collect();
            let location = piece.meta().location;
            let ctx = sensorsafe_policy::WindowCtx {
                time: window.start,
                location,
                location_labels: location.map(|p| account.labels_at(&p)).unwrap_or_default(),
                contexts,
            };
            let channels: Vec<sensorsafe_types::ChannelId> = piece.channels().cloned().collect();
            let decision = compiled.evaluate(consumer, &ctx, &channels, graph);
            if let Some(shared) = enforce(&decision, &piece, &window_annotations) {
                windows.push(shared);
            }
        }
    }
    sensorsafe_obsv::trace::phase("policy_eval");
    SharedView { windows }
}

/// Serializes a shared view to the query-API wire form.
pub fn shared_view_to_json(view: &SharedView) -> Value {
    let windows: Vec<Value> = view
        .windows
        .iter()
        .map(|w| {
            let mut obj = Map::new();
            obj.insert(
                "segment".into(),
                match &w.segment {
                    Some(seg) => seg.to_json(),
                    None => Value::Null,
                },
            );
            obj.insert(
                "labels".into(),
                Value::Array(
                    w.labels
                        .iter()
                        .map(|l| {
                            json!({
                                "kind": (l.kind.as_str()),
                                "label": (l.label.clone()),
                                "window": {
                                    "start": (l.window.start.millis()),
                                    "end": (l.window.end.millis()),
                                },
                            })
                        })
                        .collect(),
                ),
            );
            obj.insert(
                "location".into(),
                match &w.location {
                    SharedLocation::None => Value::Null,
                    SharedLocation::Text(t) => Value::from(t.as_str()),
                },
            );
            obj.insert("time_level".into(), Value::from(w.time_level.as_str()));
            Value::Object(obj)
        })
        .collect();
    json!({ "windows": (Value::Array(windows)) })
}

/// Parses the wire form back into a [`SharedView`] (consumer side).
pub fn shared_view_from_json(value: &Value) -> Result<SharedView, String> {
    let windows_json = value
        .get("windows")
        .and_then(Value::as_array)
        .ok_or("missing 'windows'")?;
    let mut windows = Vec::with_capacity(windows_json.len());
    for w in windows_json {
        let segment = match &w["segment"] {
            Value::Null => None,
            seg => Some(WaveSegment::from_json(seg).map_err(|e| e.to_string())?),
        };
        let labels_json = w
            .get("labels")
            .and_then(Value::as_array)
            .ok_or("missing 'labels'")?;
        let mut labels = Vec::with_capacity(labels_json.len());
        for l in labels_json {
            let kind = l
                .get("kind")
                .and_then(Value::as_str)
                .and_then(sensorsafe_types::ContextKind::parse)
                .ok_or("bad label kind")?;
            let text = l
                .get("label")
                .and_then(Value::as_str)
                .ok_or("bad label text")?
                .to_string();
            let start = l
                .path("window.start")
                .and_then(Value::as_i64)
                .ok_or("bad label window")?;
            let end = l
                .path("window.end")
                .and_then(Value::as_i64)
                .ok_or("bad label window")?;
            labels.push(sensorsafe_policy::ContextLabel {
                kind,
                label: text,
                window: TimeRange::new(
                    sensorsafe_types::Timestamp::from_millis(start),
                    sensorsafe_types::Timestamp::from_millis(end),
                ),
            });
        }
        let location = match &w["location"] {
            Value::Null => SharedLocation::None,
            Value::String(s) => SharedLocation::Text(s.clone()),
            _ => return Err("bad location".into()),
        };
        let time_level = w
            .get("time_level")
            .and_then(Value::as_str)
            .and_then(TimeAbs::parse)
            .ok_or("bad time_level")?;
        windows.push(SharedSegment {
            segment,
            labels,
            location,
            time_level,
        });
    }
    Ok(SharedView { windows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_policy::{AbstractionSpec, Action, BinaryAbs, Conditions, PrivacyRule};
    use sensorsafe_sim::Scenario;
    use sensorsafe_store::MergePolicy;
    use sensorsafe_types::{ContextKind, ContributorId, GeoPoint, Region, Timestamp};

    /// An account loaded with Alice's rendered day and ground truth.
    fn alice_account() -> ContributorAccount {
        let scenario = Scenario::alice_day(Timestamp::from_millis(1_311_500_000_000), 5, 1);
        let rendered = scenario.render();
        let mut account =
            ContributorAccount::new(ContributorId::new("alice"), MergePolicy::default());
        account.places = vec![
            (
                "home".to_string(),
                Region::around(sensorsafe_sim::Place::home().point, 0.005),
            ),
            (
                "UCLA".to_string(),
                Region::around(sensorsafe_sim::Place::ucla().point, 0.005),
            ),
        ];
        for seg in rendered.all_segments() {
            account.store.insert_segment(seg).unwrap();
        }
        for ann in rendered.annotations {
            account.store.insert_annotation(ann).unwrap();
        }
        account
    }

    fn bob() -> ConsumerCtx {
        ConsumerCtx::user("bob")
    }

    fn graph() -> DependencyGraph {
        DependencyGraph::paper()
    }

    #[test]
    fn no_rules_shares_nothing() {
        let account = alice_account();
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        assert!(view.is_empty());
    }

    #[test]
    fn allow_all_shares_everything() {
        let mut account = alice_account();
        account.set_rules(vec![PrivacyRule::allow_all()]);
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        let total: usize = account
            .store
            .query(&Query::all())
            .iter()
            .map(WaveSegment::len)
            .sum();
        assert_eq!(view.raw_samples(), total);
    }

    #[test]
    fn deny_stress_while_driving_suppresses_commute_ecg() {
        // Alice's §6 rule: deny ECG/respiration while driving.
        let mut account = alice_account();
        account.set_rules(vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions {
                    contexts: vec![ContextKind::Drive],
                    sensors: vec!["ecg".into(), "respiration".into()],
                    ..Default::default()
                },
                action: Action::Deny,
            },
        ]);
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        // Two 60 s commutes of 50 Hz ECG+RSP are withheld.
        let full: usize = account
            .store
            .query(&Query::all())
            .iter()
            .map(WaveSegment::len)
            .sum();
        let withheld = full - view.raw_samples();
        assert_eq!(withheld, 2 * 60 * 50);
        // No shared window overlapping a drive annotation carries ECG.
        let drives: Vec<TimeRange> = account
            .store
            .annotations()
            .iter()
            .filter(|a| a.state_of(ContextKind::Drive) == Some(true))
            .map(|a| a.window)
            .collect();
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                let r = seg.time_range().unwrap();
                if drives.iter().any(|d| d.overlaps(&r)) {
                    assert!(
                        seg.channels().all(|c| c.as_str() != "ecg"),
                        "raw ECG leaked into a driving window"
                    );
                }
            }
        }
    }

    #[test]
    fn label_level_stress_replaces_raw() {
        let mut account = alice_account();
        account.set_rules(vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    stress: Some(BinaryAbs::Label),
                    ..Default::default()
                }),
            },
        ]);
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        assert!(view.label_count() > 0);
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                assert!(seg
                    .channels()
                    .all(|c| c.as_str() != "ecg" && c.as_str() != "respiration"));
            }
        }
        // Stress labels cover both commutes and the hard meeting.
        let stressed = view
            .windows
            .iter()
            .flat_map(|w| &w.labels)
            .filter(|l| l.kind == ContextKind::Stress && l.label == "Stressed")
            .count();
        assert!(stressed > 0);
    }

    #[test]
    fn location_condition_scopes_by_place_label() {
        // Share only data collected at UCLA.
        let mut account = alice_account();
        account.set_rules(vec![PrivacyRule {
            conditions: Conditions {
                location: Some(sensorsafe_policy::LocationCondition {
                    labels: vec!["UCLA".into()],
                    regions: vec![],
                }),
                ..Default::default()
            },
            action: Action::Allow,
        }]);
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        assert!(!view.is_empty());
        let ucla = sensorsafe_sim::Place::ucla().point;
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                let loc = seg.meta().location.unwrap();
                assert!(
                    loc.distance_meters(&ucla) < 2_000.0,
                    "non-UCLA data leaked from {loc:?}"
                );
            }
        }
        // UCLA is 6 of 10 minutes: strictly less than everything.
        let full: usize = account
            .store
            .query(&Query::all())
            .iter()
            .map(WaveSegment::len)
            .sum();
        assert!(view.raw_samples() < full);
        assert!(view.raw_samples() > 0);
    }

    #[test]
    fn segments_split_at_context_boundaries() {
        // A merged store segment spans episodes; enforcement must split
        // it rather than leak or over-deny.
        let mut account = alice_account();
        account.set_rules(vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions {
                    contexts: vec![ContextKind::Conversation],
                    ..Default::default()
                },
                action: Action::Deny,
            },
        ]);
        let view = shared_view(&account, &bob(), &Query::all(), &graph());
        let conversations: Vec<TimeRange> = account
            .store
            .annotations()
            .iter()
            .filter(|a| a.state_of(ContextKind::Conversation) == Some(true))
            .map(|a| a.window)
            .collect();
        assert_eq!(conversations.len(), 2);
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                let r = seg.time_range().unwrap();
                for conv in &conversations {
                    assert!(
                        !conv.overlaps(&r),
                        "data from a conversation window leaked: {r:?}"
                    );
                }
            }
        }
        // Everything else is still shared: withheld = 2 minutes of
        // chest + phone + gps samples.
        let full: usize = account
            .store
            .query(&Query::all())
            .iter()
            .map(WaveSegment::len)
            .sum();
        let expected_withheld = 2 * 60 * (50 + 10 + 1);
        assert_eq!(full - view.raw_samples(), expected_withheld);
    }

    #[test]
    fn wire_codec_roundtrip() {
        let mut account = alice_account();
        account.set_rules(vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    stress: Some(BinaryAbs::Label),
                    location: Some(sensorsafe_policy::LocationAbs::City),
                    time: Some(TimeAbs::Hour),
                    ..Default::default()
                }),
            },
        ]);
        let view = shared_view(&account, &bob(), &Query::all().with_limit(20), &graph());
        let wire = shared_view_to_json(&view);
        let back = shared_view_from_json(&wire).unwrap();
        assert_eq!(back, view);
    }

    #[test]
    fn query_filters_apply_before_enforcement() {
        let mut account = alice_account();
        account.set_rules(vec![PrivacyRule::allow_all()]);
        let q = Query::all().with_channels(["ecg".into()]);
        let view = shared_view(&account, &bob(), &q, &graph());
        for w in &view.windows {
            let seg = w.segment.as_ref().unwrap();
            let names: Vec<&str> = seg.channels().map(|c| c.as_str()).collect();
            assert_eq!(names, ["ecg"]);
        }
        // 600 s at 50 Hz.
        assert_eq!(view.raw_samples(), 600 * 50);
    }

    #[test]
    fn region_query() {
        let mut account = alice_account();
        account.set_rules(vec![PrivacyRule::allow_all()]);
        let home_region = Region::around(sensorsafe_sim::Place::home().point, 0.005);
        let view = shared_view(
            &account,
            &bob(),
            &Query::all().in_region(home_region),
            &graph(),
        );
        // Two 60 s home episodes.
        assert_eq!(view.raw_samples(), 2 * 60 * (50 + 10 + 1));
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                let loc = seg.meta().location.unwrap();
                assert!(home_region.contains(&loc));
            }
        }
    }

    #[test]
    fn split_helper_edges() {
        let range = TimeRange::new(Timestamp::from_millis(0), Timestamp::from_millis(100));
        // No annotations: one window.
        assert_eq!(split_at_annotations(&range, &[]).len(), 1);
        // Boundary exactly at range edges: still one window.
        let exact = ContextAnnotation::new(range, vec![]);
        assert_eq!(split_at_annotations(&range, &[&exact]).len(), 1);
        // A boundary in the middle: two windows that tile the range.
        let mid = ContextAnnotation::new(
            TimeRange::new(Timestamp::from_millis(-50), Timestamp::from_millis(40)),
            vec![],
        );
        let parts = split_at_annotations(&range, &[&mid]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].end, parts[1].start);
        assert_eq!(parts[0].start.millis(), 0);
        assert_eq!(parts[1].end.millis(), 100);
    }

    #[test]
    fn geo_point_helper() {
        // Sanity: the two sim places are far enough apart for the
        // location tests to be meaningful.
        let d = sensorsafe_sim::Place::home()
            .point
            .distance_meters(&sensorsafe_sim::Place::ucla().point);
        assert!(d > 3_000.0, "places too close: {d}");
        let _ = GeoPoint::ucla();
    }
}
