//! From-scratch JSON support for SensorSafe.
//!
//! The SensorSafe paper represents both privacy rules (Fig. 4) and wave
//! segments (Fig. 5) as JSON documents. This crate provides the JSON data
//! model ([`Value`]), a strict RFC 8259 parser ([`parse`]), compact and
//! pretty serializers, and an insertion-ordered object map ([`Map`]) so
//! that documents round-trip byte-stably.
//!
//! # Why not `serde_json`?
//!
//! The reproduction is built only from the small set of vetted offline
//! crates; `serde_json` is not among them, and JSON is load-bearing enough
//! in the paper to deserve a fully tested substrate of its own.
//!
//! # Quickstart
//!
//! ```
//! use sensorsafe_json::{json, parse, Value};
//!
//! let rule = json!({
//!     "Consumer": ["Bob"],
//!     "LocationLabel": ["UCLA"],
//!     "Action": "Allow",
//! });
//! let text = rule.to_string();
//! let back = parse(&text).unwrap();
//! assert_eq!(rule, back);
//! assert_eq!(back["Consumer"][0].as_str(), Some("Bob"));
//! ```

mod map;
mod parse;
mod ser;
mod value;

pub use map::Map;
pub use parse::{parse, ParseError, Parser};
pub use ser::{to_string, to_string_pretty};
pub use value::{Number, Value};

/// Build a [`Value`] with JSON-like literal syntax.
///
/// Supports nested objects, arrays, string/number/bool/null literals, and
/// arbitrary expressions that implement `Into<Value>`:
///
/// ```
/// use sensorsafe_json::json;
/// let who = "Alice";
/// let v = json!({ "user": who, "ids": [1, 2, 3], "active": true, "note": null });
/// assert_eq!(v["ids"][2].as_i64(), Some(3));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $( $elem:tt ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:tt : $val:tt ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod macro_tests {
    use crate::Value;

    #[test]
    fn literals() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(false), Value::Bool(false));
        assert_eq!(json!(42), Value::from(42));
        assert_eq!(json!("hi"), Value::from("hi"));
    }

    #[test]
    fn nested() {
        let v = json!({
            "a": [1, {"b": null}, "x"],
            "c": {"d": false},
        });
        assert_eq!(v["a"][1]["b"], Value::Null);
        assert_eq!(v["c"]["d"].as_bool(), Some(false));
    }

    #[test]
    fn expressions_in_macro() {
        let n = 5;
        let v = json!({ "n": n, "twice": (n * 2) });
        assert_eq!(v["twice"].as_i64(), Some(10));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(json!({}), Value::Object(crate::Map::new()));
    }
}
