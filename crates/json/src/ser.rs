//! Compact and pretty JSON serializers.
//!
//! Output is valid RFC 8259: strings are escaped, non-finite floats cannot
//! occur (rejected at [`crate::Value`] construction), and integers print
//! exactly. Floats use Rust's shortest-roundtrip formatting, with a
//! trailing `.0` added to integral floats so the float/integer distinction
//! survives a round trip of the *serialized text* (`5.0` stays a float).

use crate::{Number, Value};

/// Serializes compactly (no whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes with 2-space indentation, for web-UI display and logs.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            debug_assert!(f.is_finite(), "non-finite floats are unrepresentable");
            if f == f.trunc() && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{json, parse, Value};

    #[test]
    fn compact_output() {
        let v = json!({"a": [1, 2.5, "x"], "b": null});
        assert_eq!(to_string(&v), r#"{"a":[1,2.5,"x"],"b":null}"#);
    }

    #[test]
    fn pretty_output() {
        let v = json!({"a": [1], "b": {}});
        let pretty = to_string_pretty(&v);
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn escaping() {
        let v = Value::from("line1\nline2\t\"quoted\" \\ \u{1}");
        let s = to_string(&v);
        assert_eq!(s, "\"line1\\nline2\\t\\\"quoted\\\" \\\\ \\u0001\"");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn integral_float_keeps_float_form() {
        let v = Value::from(5.0);
        assert_eq!(to_string(&v), "5.0");
        // ...and round-trips numerically equal to the integer 5.
        assert_eq!(parse("5.0").unwrap(), Value::from(5));
    }

    #[test]
    fn integer_exactness() {
        let v = Value::from(i64::MAX);
        assert_eq!(to_string(&v), "9223372036854775807");
        assert_eq!(parse(&to_string(&v)).unwrap().as_i64(), Some(i64::MAX));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::from("héllo 世界 😀");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn empty_containers_stay_compact_even_pretty() {
        assert_eq!(to_string_pretty(&json!([])), "[]");
        assert_eq!(to_string_pretty(&json!({})), "{}");
    }

    #[test]
    fn display_matches_compact() {
        let v = json!({"k": [true, false]});
        assert_eq!(v.to_string(), to_string(&v));
    }
}
