//! The JSON data model.

use crate::Map;

/// A JSON number.
///
/// Integers within `i64` range are kept exact (wave-segment timestamps are
/// millisecond epoch integers and must not lose precision); everything else
/// is an `f64`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// An exact signed integer.
    Int(i64),
    /// A double-precision float. Never NaN (NaN is not representable in
    /// JSON and is rejected at construction).
    Float(f64),
}

impl Number {
    /// The value as `f64` (lossy for very large integers).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer or an integral float that
    /// fits.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            // Cross-representation comparison by numeric value, so that a
            // parse of "5" equals a parse of "5.0".
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (see [`Number`]).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered members.
    Object(Map),
}

impl Value {
    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral `Number`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The unsigned integer payload, if this is a non-negative integral
    /// `Number`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable elements, if this is an `Array`.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The member map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable member map, if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element lookup that tolerates non-arrays (returns `None`).
    pub fn at(&self, index: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(index))
    }

    /// Looks up a dotted path, e.g. `v.path("header.start_time")`.
    /// Numeric path components index into arrays.
    pub fn path(&self, dotted: &str) -> Option<&Value> {
        let mut cur = self;
        for part in dotted.split('.') {
            cur = match part.parse::<usize>() {
                Ok(i) => cur.at(i)?,
                Err(_) => cur.get(part)?,
            };
        }
        Some(cur)
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Collects the string elements of an array value; a lone string is
    /// treated as a one-element array (privacy rules in the paper write
    /// both `"Consumer": "Bob"` and `"Consumer": ["Bob"]`).
    pub fn as_string_list(&self) -> Option<Vec<String>> {
        match self {
            Value::String(s) => Some(vec![s.clone()]),
            Value::Array(items) => items
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect(),
            _ => None,
        }
    }
}

/// Panicking indexing for ergonomic test/access code: missing members and
/// out-of-range elements yield `Value::Null` rather than panicking, like
/// `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.at(index).unwrap_or(&NULL)
    }
}

impl std::fmt::Display for Value {
    /// Compact serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::Int(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        if let Ok(v) = i64::try_from(i) {
            Value::Number(Number::Int(v))
        } else {
            Value::Number(Number::Float(i as f64))
        }
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::from(i as u64)
    }
}
impl From<f64> for Value {
    /// NaN is not representable in JSON; mapped to `null` (documented
    /// lossy edge, asserted in tests).
    fn from(f: f64) -> Self {
        if f.is_nan() {
            Value::Null
        } else {
            Value::Number(Number::Float(f))
        }
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::from(f as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_equality_across_representations() {
        assert_eq!(Value::from(5), Value::from(5.0));
        assert_ne!(Value::from(5), Value::from(5.5));
        assert_eq!(Value::from(-3.25), Value::from(-3.25));
    }

    #[test]
    fn integer_precision_preserved() {
        let big = 1_311_535_598_327_i64; // a millisecond epoch timestamp
        assert_eq!(Value::from(big).as_i64(), Some(big));
    }

    #[test]
    fn as_i64_from_integral_float() {
        assert_eq!(Value::from(7.0).as_i64(), Some(7));
        assert_eq!(Value::from(7.5).as_i64(), None);
    }

    #[test]
    fn as_u64_rejects_negative() {
        assert_eq!(Value::from(-1).as_u64(), None);
        assert_eq!(Value::from(1).as_u64(), Some(1));
    }

    #[test]
    fn nan_becomes_null() {
        assert_eq!(Value::from(f64::NAN), Value::Null);
    }

    #[test]
    fn index_missing_yields_null() {
        let v = crate::json!({"a": [1]});
        assert!(v["missing"].is_null());
        assert!(v["a"][5].is_null());
        assert!(v["a"]["not_an_object"].is_null());
    }

    #[test]
    fn path_lookup() {
        let v = crate::json!({"header": {"start": 10, "channels": ["ecg", "rip"]}});
        assert_eq!(v.path("header.start").and_then(Value::as_i64), Some(10));
        assert_eq!(
            v.path("header.channels.1").and_then(Value::as_str),
            Some("rip")
        );
        assert!(v.path("header.missing.deep").is_none());
    }

    #[test]
    fn string_list_accepts_scalar_or_array() {
        assert_eq!(
            crate::json!("Bob").as_string_list(),
            Some(vec!["Bob".to_string()])
        );
        assert_eq!(
            crate::json!(["Bob", "Eve"]).as_string_list(),
            Some(vec!["Bob".to_string(), "Eve".to_string()])
        );
        assert_eq!(crate::json!([1]).as_string_list(), None);
        assert_eq!(crate::json!(42).as_string_list(), None);
    }

    #[test]
    fn option_conversion() {
        assert_eq!(Value::from(Some(3)), Value::from(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(crate::json!({}).type_name(), "object");
        assert_eq!(crate::json!([]).type_name(), "array");
    }
}
