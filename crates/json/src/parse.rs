//! A strict, recursive-descent RFC 8259 parser.
//!
//! Rejects trailing garbage, trailing commas, unquoted keys, single quotes
//! (with one documented exception below), control characters in strings,
//! and nesting deeper than [`Parser::MAX_DEPTH`]. Reports errors with
//! 1-based line and column.
//!
//! **Paper-compat note:** Fig. 4 of the SensorSafe paper writes privacy
//! rules with single-quoted strings (`'Consumer': ['Bob']`), which is not
//! valid JSON. [`Parser::lenient`] accepts single-quoted strings so the
//! paper's figures parse verbatim; the default [`parse`] entry point stays
//! strict.

use crate::{Map, Number, Value};

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (in bytes) of the offending byte.
    pub column: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document, strictly.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    Parser::new(input).parse_document()
}

/// Streaming state for a single document parse.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    allow_single_quotes: bool,
}

impl<'a> Parser<'a> {
    /// Maximum container nesting depth; prevents stack overflow on
    /// adversarial inputs (the query API accepts JSON from the network).
    pub const MAX_DEPTH: usize = 128;

    /// A strict parser.
    pub fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
            allow_single_quotes: false,
        }
    }

    /// A parser that additionally accepts single-quoted strings, as used
    /// in the paper's Fig. 4 rule listing.
    pub fn lenient(input: &'a str) -> Self {
        Parser {
            allow_single_quotes: true,
            ..Parser::new(input)
        }
    }

    /// Parses exactly one value followed by optional whitespace and EOF.
    pub fn parse_document(mut self) -> Result<Value, ParseError> {
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters after document"));
        }
        Ok(value)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            column: col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found {}",
                byte as char,
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_string(),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'\'') if self.allow_single_quotes => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error(format!(
                "expected a value, found {}",
                self.describe_current()
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected '{word}'")))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > Self::MAX_DEPTH {
            Err(self.error("maximum nesting depth exceeded"))
        } else {
            Ok(())
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error(format!(
                        "expected ',' or '}}' in object, found {}",
                        self.describe_current()
                    )));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error(format!(
                        "expected ',' or ']' in array, found {}",
                        self.describe_current()
                    )));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(b'"') => b'"',
            Some(b'\'') if self.allow_single_quotes => b'\'',
            _ => {
                return Err(self.error(format!(
                    "expected a string, found {}",
                    self.describe_current()
                )))
            }
        };
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b) if b == quote => break,
                Some(b'\\') => self.parse_escape(&mut out)?,
                Some(b) if b < 0x20 => {
                    self.pos -= 1;
                    return Err(self.error("raw control character in string"));
                }
                Some(b) if b < 0x80 => out.push(b as char),
                Some(first) => {
                    // Multi-byte UTF-8: the input is a &str so the bytes
                    // are valid; copy the remaining continuation bytes.
                    let len = utf8_len(first);
                    let start = self.pos - 1;
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is a &str, so multi-byte sequences are valid UTF-8"),
                    );
                }
            }
        }
        Ok(out)
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\'') if self.allow_single_quotes => out.push('\''),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.parse_hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low
                    // surrogate and combine.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.error("unpaired high surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.error("invalid unicode escape"))?
                };
                out.push(ch);
            }
            _ => return Err(self.error("invalid escape sequence")),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.error("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number: missing digits")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: missing fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: missing exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
            // Integer overflowing i64: fall through to float.
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error("number out of range"))?;
        if f.is_infinite() {
            return Err(self.error("number out of range"));
        }
        Ok(Value::Number(Number::Float(f)))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ok(s: &str) -> Value {
        parse(s).unwrap_or_else(|e| panic!("{s:?} should parse: {e}"))
    }

    fn err(s: &str) -> ParseError {
        match parse(s) {
            Ok(v) => panic!("{s:?} should fail, parsed {v:?}"),
            Err(e) => e,
        }
    }

    #[test]
    fn scalars() {
        assert_eq!(ok("null"), Value::Null);
        assert_eq!(ok("true"), Value::Bool(true));
        assert_eq!(ok("false"), Value::Bool(false));
        assert_eq!(ok("0"), Value::from(0));
        assert_eq!(ok("-1"), Value::from(-1));
        assert_eq!(ok("3.5"), Value::from(3.5));
        assert_eq!(ok("1e3"), Value::from(1000.0));
        assert_eq!(ok("2.5e-2"), Value::from(0.025));
        assert_eq!(ok("\"hi\""), Value::from("hi"));
    }

    #[test]
    fn containers_and_whitespace() {
        assert_eq!(ok(" [ 1 , 2 ] "), json!([1, 2]));
        assert_eq!(ok("{\n\t\"a\": [true]\r}"), json!({"a": [true]}));
        assert_eq!(ok("[]"), json!([]));
        assert_eq!(ok("{}"), json!({}));
        assert_eq!(ok("[[[]]]"), json!([[[]]]));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            ok(r#""\"\\\/\b\f\n\r\t""#),
            Value::from("\"\\/\u{8}\u{c}\n\r\t")
        );
        assert_eq!(ok(r#""A""#), Value::from("A"));
        assert_eq!(ok(r#""é""#), Value::from("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(ok(r#""😀""#), Value::from("😀"));
    }

    #[test]
    fn raw_utf8_passthrough() {
        assert_eq!(ok("\"héllo 世界\""), Value::from("héllo 世界"));
    }

    #[test]
    fn integer_precision() {
        assert_eq!(ok("9007199254740993").as_i64(), Some(9007199254740993));
        assert_eq!(ok("-9223372036854775808").as_i64(), Some(i64::MIN));
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        let v = ok("92233720368547758080");
        assert!(v.as_f64().unwrap() > 9.2e19);
    }

    #[test]
    fn rejects_malformed() {
        err("");
        err("tru");
        err("nulll");
        err("[1,]");
        err("{\"a\":1,}");
        err("{'a':1}"); // single quotes rejected in strict mode
        err("{a:1}");
        err("[1 2]");
        err("\"unterminated");
        err("01");
        err("1.");
        err(".5");
        err("1e");
        err("+1");
        err("[1]]");
        err("{} {}");
        err("\"\x01\"");
        err(r#""\q""#);
        err(r#""\u12"#);
        err(r#""\ud800""#); // unpaired high surrogate
        err(r#""\udc00""#); // unpaired low surrogate
        err("1e99999"); // infinite
    }

    #[test]
    fn error_positions() {
        let e = err("{\n  \"a\": @\n}");
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 8);
        let shown = e.to_string();
        assert!(shown.contains("line 2"), "got: {shown}");
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(Parser::MAX_DEPTH + 1) + &"]".repeat(Parser::MAX_DEPTH + 1);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("depth"));
        let ok_depth = "[".repeat(Parser::MAX_DEPTH) + &"]".repeat(Parser::MAX_DEPTH);
        assert!(parse(&ok_depth).is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        assert_eq!(ok(r#"{"a":1,"a":2}"#), json!({"a": 2}));
    }

    #[test]
    fn lenient_mode_parses_paper_fig4_style() {
        let text = "{ 'Consumer': ['Bob'], 'Action': 'Allow' }";
        let v = Parser::lenient(text).parse_document().unwrap();
        assert_eq!(v["Consumer"][0].as_str(), Some("Bob"));
        assert_eq!(v["Action"].as_str(), Some("Allow"));
        // Strict mode still refuses it.
        assert!(parse(text).is_err());
    }

    #[test]
    fn lenient_single_quote_escape() {
        let v = Parser::lenient(r"'it\'s'").parse_document().unwrap();
        assert_eq!(v.as_str(), Some("it's"));
    }
}
