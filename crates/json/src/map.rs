//! Insertion-ordered string-keyed map used for JSON objects.
//!
//! JSON object member order is not semantically significant per RFC 8259,
//! but preserving it keeps serialized privacy rules and wave segments
//! byte-stable across a parse/serialize round trip, which matters for the
//! broker's rule-mirror consistency checks (rules are compared by their
//! canonical serialized form).

use crate::Value;
use std::collections::HashMap;

/// An insertion-ordered map from `String` keys to [`Value`]s.
///
/// Lookup is O(1) via a side index; iteration follows insertion order.
/// Re-inserting an existing key overwrites the value in place and keeps
/// the key's original position.
#[derive(Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
    /// Key -> index into `entries`. Only built once the map is large enough
    /// that linear scans would dominate; small objects (the common case for
    /// privacy rules) stay index-free.
    index: Option<HashMap<String, usize>>,
}

/// Linear scans beat hashing for objects this small.
const INDEX_THRESHOLD: usize = 12;

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Map {
            entries: Vec::with_capacity(cap),
            index: None,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the object has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, key: &str) -> Option<usize> {
        if let Some(idx) = &self.index {
            idx.get(key).copied()
        } else {
            self.entries.iter().position(|(k, _)| k == key)
        }
    }

    fn build_index_if_needed(&mut self) {
        if self.index.is_none() && self.entries.len() >= INDEX_THRESHOLD {
            self.index = Some(
                self.entries
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| (k.clone(), i))
                    .collect(),
            );
        }
    }

    /// Inserts `value` under `key`, returning the previous value if the key
    /// was already present. The key keeps its original position on
    /// overwrite.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.position(&key) {
            Some(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            None => {
                if let Some(idx) = &mut self.index {
                    idx.insert(key.clone(), self.entries.len());
                }
                self.entries.push((key, value));
                self.build_index_if_needed();
                None
            }
        }
    }

    /// Returns the value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.position(key).map(|i| &self.entries[i].1)
    }

    /// Returns a mutable reference to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.position(key).map(|i| &mut self.entries[i].1)
    }

    /// True if `key` is a member.
    pub fn contains_key(&self, key: &str) -> bool {
        self.position(key).is_some()
    }

    /// Removes `key`, returning its value. Shifts later entries left, so
    /// relative order of the remaining members is preserved.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.position(key)?;
        let (_, v) = self.entries.remove(i);
        // Index positions after `i` are stale; rebuild lazily.
        if let Some(idx) = &mut self.index {
            idx.clear();
            for (j, (k, _)) in self.entries.iter().enumerate() {
                idx.insert(k.clone(), j);
            }
        }
        Some(v)
    }

    /// Iterates members in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates members mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    /// Order-insensitive equality: two objects are equal iff they contain
    /// the same key/value pairs, matching JSON semantics.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl std::fmt::Debug for Map {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), Value::from(1)).is_none());
        assert_eq!(m.insert("a".into(), Value::from(2)), Some(Value::from(1)));
        assert_eq!(m.get("a"), Some(&Value::from(2)));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn preserves_insertion_order() {
        let mut m = Map::new();
        for k in ["z", "a", "m"] {
            m.insert(k.into(), Value::Null);
        }
        let keys: Vec<_> = m.keys().map(String::as_str).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn overwrite_keeps_position() {
        let mut m = Map::new();
        m.insert("x".into(), Value::from(1));
        m.insert("y".into(), Value::from(2));
        m.insert("x".into(), Value::from(3));
        let keys: Vec<_> = m.keys().map(String::as_str).collect();
        assert_eq!(keys, ["x", "y"]);
    }

    #[test]
    fn remove_preserves_relative_order() {
        let mut m = Map::new();
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            m.insert((*k).into(), Value::from(i as i64));
        }
        assert_eq!(m.remove("b"), Some(Value::from(1)));
        assert!(m.remove("b").is_none());
        let keys: Vec<_> = m.keys().map(String::as_str).collect();
        assert_eq!(keys, ["a", "c", "d"]);
    }

    #[test]
    fn large_map_uses_index_correctly() {
        let mut m = Map::new();
        for i in 0..100 {
            m.insert(format!("k{i}"), Value::from(i));
        }
        for i in 0..100 {
            assert_eq!(m.get(&format!("k{i}")), Some(&Value::from(i)));
        }
        assert_eq!(m.remove("k50"), Some(Value::from(50)));
        assert!(m.get("k50").is_none());
        assert_eq!(m.get("k99"), Some(&Value::from(99)));
        // Inserting after a remove keeps the index consistent.
        m.insert("k50".into(), Value::from(-1));
        assert_eq!(m.get("k50"), Some(&Value::from(-1)));
    }

    #[test]
    fn equality_is_order_insensitive() {
        let mut a = Map::new();
        a.insert("x".into(), Value::from(1));
        a.insert("y".into(), Value::from(2));
        let mut b = Map::new();
        b.insert("y".into(), Value::from(2));
        b.insert("x".into(), Value::from(1));
        assert_eq!(a, b);
        b.insert("z".into(), Value::Null);
        assert_ne!(a, b);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let m: Map = vec![
            ("a".to_string(), Value::from(1)),
            ("b".to_string(), Value::from(2)),
        ]
        .into_iter()
        .collect();
        let pairs: Vec<_> = m.into_iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "a");
    }
}
