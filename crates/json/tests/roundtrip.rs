//! Property-based round-trip tests for the JSON substrate.

use proptest::prelude::*;
use sensorsafe_json::{parse, to_string, to_string_pretty, Map, Value};

/// Strategy for arbitrary JSON values with bounded depth and size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        // Finite floats only; NaN is unrepresentable in JSON.
        prop::num::f64::NORMAL.prop_map(Value::from),
        "\\PC{0,20}".prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::vec(("\\PC{0,12}", inner), 0..8)
                .prop_map(|pairs| { Value::Object(pairs.into_iter().collect::<Map>()) }),
        ]
    })
}

proptest! {
    /// Serialize → parse returns an equal value.
    #[test]
    fn compact_roundtrip(v in arb_value()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Pretty serialization parses back to the same value.
    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Serialization is deterministic: two serializations of the same value
    /// are byte-identical (needed by the broker's rule-mirror comparison).
    #[test]
    fn serialization_deterministic(v in arb_value()) {
        prop_assert_eq!(to_string(&v), to_string(&v));
    }

    /// Parse of serialized text re-serializes to the identical bytes
    /// (canonical-form stability).
    #[test]
    fn reserialization_stable(v in arb_value()) {
        let once = to_string(&v);
        let twice = to_string(&parse(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_garbage(s in "\\PC{0,256}") {
        let _ = parse(&s);
    }

    /// Any error reported on structured-ish garbage carries a plausible
    /// position (within the input plus one line).
    #[test]
    fn errors_have_positions(s in "[\\[\\]{}:,\"0-9a-z ]{0,64}") {
        if let Err(e) = parse(&s) {
            prop_assert!(e.line >= 1);
            prop_assert!(e.column >= 1);
        }
    }
}

#[test]
fn fig5_wave_segment_shape_parses() {
    // Structure of the paper's Fig. 5 wave segment (values representative).
    let text = r#"{
        "location": {"latitude": 34.0722, "longitude": -118.4441},
        "sampling_interval": 0.02,
        "start_time": 1311535598327,
        "format": ["ecg", "respiration"],
        "data": [[512, 301], [518, 300], [530, 298]]
    }"#;
    let v = parse(text).unwrap();
    assert_eq!(v["start_time"].as_i64(), Some(1311535598327));
    assert_eq!(
        v["format"].as_string_list().unwrap(),
        ["ecg", "respiration"]
    );
    assert_eq!(v["data"][2][0].as_i64(), Some(530));
}
