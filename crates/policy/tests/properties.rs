//! Property-based tests for the access-control engine's invariants.

use proptest::prelude::*;
use sensorsafe_policy::WindowCtx;
use sensorsafe_policy::{
    evaluate, AbstractionSpec, Action, ActivityAbs, BinaryAbs, Conditions, ConsumerCtx,
    ConsumerSelector, DependencyGraph, LocationAbs, LocationCondition, PrivacyRule, TimeAbs,
    TimeCondition,
};
use sensorsafe_types::{
    ChannelId, ContextKind, ContextState, GeoPoint, GroupId, Region, RepeatTime, StudyId,
    TimeOfDay, Timestamp, Weekday,
};

fn arb_channel() -> impl Strategy<Value = ChannelId> {
    prop_oneof![
        Just(ChannelId::new("ecg")),
        Just(ChannelId::new("respiration")),
        Just(ChannelId::new("accel_mag")),
        Just(ChannelId::new("audio_energy")),
        Just(ChannelId::new("skin_temp")),
    ]
}

fn arb_context() -> impl Strategy<Value = ContextKind> {
    prop::sample::select(ContextKind::ALL.to_vec())
}

fn arb_action() -> impl Strategy<Value = Action> {
    let level = prop_oneof![
        Just(BinaryAbs::Raw),
        Just(BinaryAbs::Label),
        Just(BinaryAbs::NotShared)
    ];
    prop_oneof![
        Just(Action::Allow),
        Just(Action::Deny),
        (
            prop::option::of(prop::sample::select(vec![
                LocationAbs::Coordinates,
                LocationAbs::Zipcode,
                LocationAbs::City,
                LocationAbs::NotShared,
            ])),
            prop::option::of(prop::sample::select(vec![
                TimeAbs::Milliseconds,
                TimeAbs::Hour,
                TimeAbs::Day,
                TimeAbs::NotShared,
            ])),
            prop::option::of(prop::sample::select(vec![
                ActivityAbs::Raw,
                ActivityAbs::TransportMode,
                ActivityAbs::NotShared,
            ])),
            prop::option::of(level.clone()),
            prop::option::of(level.clone()),
            prop::option::of(level),
        )
            .prop_filter_map("abstraction must set a level", |(l, t, a, s1, s2, s3)| {
                let spec = AbstractionSpec {
                    location: l,
                    time: t,
                    activity: a,
                    stress: s1,
                    smoking: s2,
                    conversation: s3,
                };
                (!spec.is_empty()).then_some(Action::Abstraction(spec))
            }),
    ]
}

fn arb_conditions() -> impl Strategy<Value = Conditions> {
    (
        prop::collection::vec(
            prop_oneof![
                "[a-z]{1,6}".prop_map(|u| ConsumerSelector::User(u.as_str().into())),
                "[a-z]{1,6}".prop_map(|g| ConsumerSelector::Group(GroupId::new(g))),
                "[a-z]{1,6}".prop_map(|s| ConsumerSelector::Study(StudyId::new(s))),
            ],
            0..3,
        ),
        prop::option::of(
            ("[a-z]{1,6}", any::<bool>()).prop_map(|(label, with_region)| LocationCondition {
                labels: vec![label],
                regions: if with_region {
                    vec![Region::around(GeoPoint::ucla(), 0.05)]
                } else {
                    vec![]
                },
            }),
        ),
        prop::option::of((0u8..23, 1u16..300).prop_map(|(h, len)| {
            let from = TimeOfDay::new(h, 0);
            let to_min = (from.minutes() + len).min(24 * 60 - 1);
            TimeCondition {
                ranges: vec![],
                repeats: vec![RepeatTime::new(
                    Weekday::WORKDAYS.to_vec(),
                    from,
                    TimeOfDay::new((to_min / 60) as u8, (to_min % 60) as u8),
                )],
            }
        })),
        prop::collection::vec(arb_channel(), 0..3),
        prop::collection::vec(arb_context(), 0..2),
    )
        .prop_map(
            |(consumers, location, time, sensors, contexts)| Conditions {
                consumers,
                location,
                time,
                sensors,
                contexts,
            },
        )
}

fn arb_rules() -> impl Strategy<Value = Vec<PrivacyRule>> {
    prop::collection::vec(
        (arb_conditions(), arb_action())
            .prop_map(|(conditions, action)| PrivacyRule { conditions, action }),
        0..8,
    )
}

fn arb_window() -> impl Strategy<Value = WindowCtx> {
    (
        0i64..2_000_000_000_000,
        prop::option::of(Just(GeoPoint::ucla())),
        prop::collection::vec("[a-z]{1,6}", 0..2),
        prop::collection::vec((arb_context(), any::<bool>()), 0..4),
    )
        .prop_map(|(ms, location, labels, contexts)| WindowCtx {
            time: Timestamp::from_millis(ms),
            location,
            location_labels: labels,
            contexts: contexts
                .into_iter()
                .map(|(kind, active)| ContextState { kind, active })
                .collect(),
        })
}

fn channels() -> Vec<ChannelId> {
    [
        "ecg",
        "respiration",
        "accel_mag",
        "audio_energy",
        "skin_temp",
    ]
    .iter()
    .map(|c| ChannelId::new(*c))
    .collect()
}

proptest! {
    /// Rule JSON round-trips semantically: the canonical serialization
    /// is a fixpoint (one parse/serialize cycle may regroup consumer
    /// selectors by type, which does not change any-of matching), and
    /// round-tripped rules evaluate identically.
    #[test]
    fn rule_json_roundtrip(rules in arb_rules(), window in arb_window()) {
        let once = PrivacyRule::rules_to_json(&rules).to_string();
        let parsed = PrivacyRule::parse_rules(&once).unwrap();
        let twice = PrivacyRule::rules_to_json(&parsed).to_string();
        prop_assert_eq!(&once, &twice, "canonical form must be a fixpoint");
        let graph = DependencyGraph::paper();
        let consumer = ConsumerCtx::user("bob");
        prop_assert_eq!(
            evaluate(&rules, &consumer, &window, &channels(), &graph),
            evaluate(&parsed, &consumer, &window, &channels(), &graph),
        );
    }

    /// Evaluation is order-independent: shuffling the rule list never
    /// changes the decision.
    #[test]
    fn evaluation_order_independent(rules in arb_rules(), window in arb_window()) {
        let graph = DependencyGraph::paper();
        let consumer = ConsumerCtx::user("bob");
        let mut forward = evaluate(&rules, &consumer, &window, &channels(), &graph);
        let mut reversed = rules.clone();
        reversed.reverse();
        let mut backward = evaluate(&reversed, &consumer, &window, &channels(), &graph);
        // Matched-rule *provenance* is positional, so it maps through the
        // reversal rather than staying equal: the same rules must have
        // matched, at mirrored indices.
        let n = rules.len() as u32;
        let mut mirrored: Vec<u32> = backward.matched.iter().map(|i| n - 1 - i).collect();
        mirrored.sort_unstable();
        prop_assert_eq!(&forward.matched, &mirrored);
        // Everything semantic is order-independent.
        forward.matched.clear();
        backward.matched.clear();
        prop_assert_eq!(forward, backward);
    }

    /// No allow rules ⇒ nothing is ever shared (deny-by-default), no
    /// matter what restriction rules exist.
    #[test]
    fn without_allow_nothing_shared(rules in arb_rules(), window in arb_window()) {
        let restrictions: Vec<PrivacyRule> = rules
            .into_iter()
            .filter(|r| r.action != Action::Allow)
            .collect();
        let d = evaluate(
            &restrictions,
            &ConsumerCtx::user("bob"),
            &window,
            &channels(),
            &DependencyGraph::paper(),
        );
        prop_assert!(d.allowed.is_empty());
        prop_assert!(d.shares_nothing());
    }

    /// Adding a restriction rule never increases what is shared
    /// (monotonicity of restrictions).
    #[test]
    fn restrictions_are_monotone(
        rules in arb_rules(),
        extra_cond in arb_conditions(),
        window in arb_window(),
    ) {
        let graph = DependencyGraph::paper();
        let consumer = ConsumerCtx::user("bob");
        let before = evaluate(&rules, &consumer, &window, &channels(), &graph);
        let mut with_deny = rules.clone();
        with_deny.push(PrivacyRule {
            conditions: extra_cond,
            action: Action::Deny,
        });
        let after = evaluate(&with_deny, &consumer, &window, &channels(), &graph);
        // Raw-shared channels can only shrink.
        let before_raw: Vec<_> = before.raw_channels().collect();
        for c in after.raw_channels() {
            prop_assert!(before_raw.contains(&c), "{c} appeared after adding a deny");
        }
    }

    /// The dependency-closure invariant holds for every decision: no raw
    /// channel that a non-raw context can be inferred from survives.
    #[test]
    fn closure_invariant(rules in arb_rules(), window in arb_window()) {
        let graph = DependencyGraph::paper();
        let d = evaluate(
            &rules,
            &ConsumerCtx::user("bob"),
            &window,
            &channels(),
            &graph,
        );
        let blocked = graph.blocked_channels(d.activity, d.stress, d.smoking, d.conversation);
        for c in d.raw_channels() {
            prop_assert!(!blocked.contains(c), "closure violated for {c}");
        }
    }

    /// Denied + allowed always partitions the requested channel set.
    #[test]
    fn decision_partitions_channels(rules in arb_rules(), window in arb_window()) {
        let d = evaluate(
            &rules,
            &ConsumerCtx::user("bob"),
            &window,
            &channels(),
            &DependencyGraph::paper(),
        );
        for c in channels() {
            let in_allowed = d.allowed.contains(&c);
            let in_denied = d.denied.contains(&c);
            prop_assert!(in_allowed != in_denied, "{c} must be in exactly one set");
        }
    }
}
