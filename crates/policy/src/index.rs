//! Broker-side rule mirror and contributor search (§5.2).
//!
//! "The broker locally stores all privacy rules of every user on remote
//! data stores to search through them. Whenever data contributors change
//! their privacy rules, remote data stores automatically communicate with
//! the broker to synchronize the privacy rules."
//!
//! [`RuleIndex`] is that mirror: per-contributor rule lists with a
//! monotonically increasing *epoch* (stale sync messages are rejected),
//! plus [`RuleIndex::search`] implementing the paper's example query —
//! "finding data contributors who share ECG and respiration sensor data
//! at the location labeled 'work' from 9am to 6pm on weekdays".
//!
//! Search evaluates each contributor's rule set against *representative
//! probe windows* drawn from the query (one per requested weekday, at the
//! midpoint of the daily window, with the required contexts active). A
//! contributor matches when every probe window yields a decision that
//! shares every required channel raw and meets every required context
//! level.

use crate::abstraction::{ActivityAbs, BinaryAbs};
use crate::deps::DependencyGraph;
use crate::eval::{evaluate, ConsumerCtx, WindowCtx};
use crate::rule::PrivacyRule;
use sensorsafe_types::{
    ChannelId, ContextKind, ContextState, ContributorId, RepeatTime, TimeRange, Timestamp, Weekday,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A contributor-search query.
#[derive(Debug, Clone, Default)]
pub struct SearchQuery {
    /// The searching consumer (rules are consumer-specific).
    pub consumer: ConsumerCtx,
    /// Channels that must be shared **raw**.
    pub raw_channels: Vec<ChannelId>,
    /// Contexts for which at least label-level information must be
    /// shared (e.g. a stress study needs Stress at `Label` or better).
    pub label_contexts: Vec<ContextKind>,
    /// Location labels the data must cover (probe windows carry them).
    pub location_labels: Vec<String>,
    /// Daily window the data must cover.
    pub repeat: Option<RepeatTime>,
    /// Continuous range the data must cover.
    pub range: Option<TimeRange>,
    /// Contexts assumed active in the probe windows (e.g. `Drive` for
    /// Bob's driving-stress study) — restriction rules conditioned on
    /// these will fire during search exactly as they would at query time.
    pub active_contexts: Vec<ContextKind>,
}

/// Deterministic reference week for probe instants: Monday 2011-07-04
/// 00:00 UTC (the paper's publication summer).
fn reference_week_start() -> Timestamp {
    let t = Timestamp::from_civil(2011, 7, 4);
    debug_assert_eq!(t.weekday(), Weekday::Mon);
    t
}

impl SearchQuery {
    /// The probe instants search evaluates at (documented above).
    pub fn probe_instants(&self) -> Vec<Timestamp> {
        let mut probes = Vec::new();
        match (&self.repeat, &self.range) {
            (Some(rep), _) => {
                let days = if rep.days.is_empty() {
                    Weekday::ALL.to_vec()
                } else {
                    rep.days.clone()
                };
                let mid_minutes = (rep.from.minutes() as i64 + rep.to.minutes() as i64) / 2;
                let week = reference_week_start();
                for day in days {
                    let day_idx = Weekday::ALL.iter().position(|d| *d == day).unwrap() as i64;
                    probes.push(week.plus_millis(day_idx * 86_400_000 + mid_minutes * 60_000));
                }
            }
            (None, Some(range)) => {
                // Probe the midpoint and both ends (just inside).
                let mid = Timestamp::from_millis((range.start.millis() + range.end.millis()) / 2);
                probes.push(range.start);
                probes.push(mid);
                probes.push(Timestamp::from_millis(range.end.millis() - 1));
            }
            (None, None) => probes.push(reference_week_start().plus_millis(12 * 3_600_000)),
        }
        // Range additionally constrains repeat-derived probes: shift the
        // reference week into the range when possible.
        if let (Some(_), Some(range)) = (&self.repeat, &self.range) {
            let week_ms = 7 * 86_400_000i64;
            let shift =
                ((range.start.millis() - reference_week_start().millis()).div_euclid(week_ms) + 1)
                    * week_ms;
            for p in &mut probes {
                let moved = p.plus_millis(shift);
                if range.contains(moved) {
                    *p = moved;
                }
            }
        }
        probes
    }

    fn probe_window(&self, instant: Timestamp) -> WindowCtx {
        WindowCtx {
            time: instant,
            location: None,
            location_labels: self.location_labels.clone(),
            contexts: self
                .active_contexts
                .iter()
                .map(|k| ContextState::on(*k))
                .collect(),
        }
    }

    fn context_level_ok(&self, decision: &crate::eval::Decision) -> bool {
        self.label_contexts.iter().all(|k| match k {
            ContextKind::Stress => decision.stress != BinaryAbs::NotShared,
            ContextKind::Smoking => decision.smoking != BinaryAbs::NotShared,
            ContextKind::Conversation => decision.conversation != BinaryAbs::NotShared,
            ContextKind::Moving => decision.activity != ActivityAbs::NotShared,
            mode if mode.is_transport_mode() => {
                decision.activity == ActivityAbs::Raw
                    || decision.activity == ActivityAbs::TransportMode
            }
            _ => true,
        })
    }

    /// Whether one contributor's rule set satisfies the query.
    pub fn matches(&self, rules: &[PrivacyRule], graph: &DependencyGraph) -> bool {
        // Channels whose decisions matter: the required raw channels plus
        // the sources of required contexts (their suppression is fine —
        // labels survive — but they must not be *denied*).
        let channels: Vec<ChannelId> = self.raw_channels.clone();
        self.probe_instants().iter().all(|instant| {
            let window = self.probe_window(*instant);
            let decision = evaluate(rules, &self.consumer, &window, &channels, graph);
            let raw_ok = self
                .raw_channels
                .iter()
                .all(|c| decision.raw_channels().any(|r| r == c));
            raw_ok && self.context_level_ok(&decision)
        })
    }
}

/// The broker's mirror of every contributor's privacy rules.
///
/// Rule lists are stored behind `Arc` (copy-on-write: `sync` replaces the
/// whole `Arc`, never mutates in place), so [`RuleIndex::snapshot`] can
/// hand searches a cheap immutable view — the broker holds its `RwLock`
/// only long enough to clone the `Arc`s, and the O(contributors × probes)
/// evaluation runs entirely outside the lock, concurrent with syncs.
#[derive(Debug, Default)]
pub struct RuleIndex {
    entries: BTreeMap<ContributorId, (u64, Arc<Vec<PrivacyRule>>)>,
    graph: Arc<DependencyGraph>,
}

impl RuleIndex {
    /// An empty index using the paper's dependency graph.
    pub fn new() -> RuleIndex {
        RuleIndex {
            entries: BTreeMap::new(),
            graph: Arc::new(DependencyGraph::paper()),
        }
    }

    /// Applies a rule-sync message from a data store. Returns `false`
    /// (and ignores the message) when `epoch` is not newer than the
    /// mirrored one — out-of-order syncs cannot roll rules back.
    pub fn sync(
        &mut self,
        contributor: ContributorId,
        epoch: u64,
        rules: Vec<PrivacyRule>,
    ) -> bool {
        match self.entries.get(&contributor) {
            Some((current, _)) if *current >= epoch => false,
            _ => {
                self.entries.insert(contributor, (epoch, Arc::new(rules)));
                true
            }
        }
    }

    /// Removes a contributor (account deletion).
    pub fn remove(&mut self, contributor: &ContributorId) -> bool {
        self.entries.remove(contributor).is_some()
    }

    /// The mirrored rules of one contributor.
    pub fn rules_of(&self, contributor: &ContributorId) -> Option<(u64, &[PrivacyRule])> {
        self.entries
            .get(contributor)
            .map(|(e, r)| (*e, r.as_slice()))
    }

    /// Mirrored `(contributor, epoch)` pairs, in name order.
    pub fn epochs(&self) -> impl Iterator<Item = (&ContributorId, u64)> {
        self.entries.iter().map(|(c, (e, _))| (c, *e))
    }

    /// Number of mirrored contributors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no contributor is mirrored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// An immutable view of the current mirror: O(contributors) `Arc`
    /// clones, no rule data copied. Searches over the snapshot see the
    /// rule lists as of this instant, regardless of concurrent syncs.
    pub fn snapshot(&self) -> RuleSnapshot {
        RuleSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(c, (_, rules))| (c.clone(), Arc::clone(rules)))
                .collect(),
            graph: Arc::clone(&self.graph),
        }
    }

    /// All contributors whose rule sets satisfy `query`, in name order.
    pub fn search(&self, query: &SearchQuery) -> Vec<ContributorId> {
        self.entries
            .iter()
            .filter(|(_, (_, rules))| query.matches(rules, &self.graph))
            .map(|(id, _)| id.clone())
            .collect()
    }
}

/// A point-in-time view of the rule mirror, detached from the index's
/// lock. Produced by [`RuleIndex::snapshot`].
#[derive(Debug, Clone)]
pub struct RuleSnapshot {
    entries: Vec<(ContributorId, Arc<Vec<PrivacyRule>>)>,
    graph: Arc<DependencyGraph>,
}

impl RuleSnapshot {
    /// Number of mirrored contributors in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot mirrors no contributors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All contributors whose rule sets satisfy `query`, in name order
    /// (entries inherit the index's `BTreeMap` ordering).
    pub fn search(&self, query: &SearchQuery) -> Vec<ContributorId> {
        self.entries
            .iter()
            .filter(|(_, rules)| query.matches(rules, &self.graph))
            .map(|(id, _)| id.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Action, Conditions, ConsumerSelector, LocationCondition};
    use sensorsafe_types::{ConsumerId, TimeOfDay};

    fn bob_query() -> SearchQuery {
        // The paper's §5.2 example: ECG + respiration at "work",
        // 9am-6pm weekdays.
        SearchQuery {
            consumer: ConsumerCtx::user("Bob"),
            raw_channels: vec![ChannelId::new("ecg"), ChannelId::new("respiration")],
            location_labels: vec!["work".into()],
            repeat: Some(RepeatTime::weekdays_nine_to_six()),
            ..Default::default()
        }
    }

    fn sharing_rules() -> Vec<PrivacyRule> {
        vec![PrivacyRule::allow_all()]
    }

    fn denying_rules() -> Vec<PrivacyRule> {
        // Shares everything except at "work".
        vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions {
                    location: Some(LocationCondition {
                        labels: vec!["work".into()],
                        regions: vec![],
                    }),
                    ..Default::default()
                },
                action: Action::Deny,
            },
        ]
    }

    #[test]
    fn probe_instants_cover_each_weekday() {
        let q = bob_query();
        let probes = q.probe_instants();
        assert_eq!(probes.len(), 5);
        for p in &probes {
            assert!(Weekday::WORKDAYS.contains(&p.weekday()));
            // Midpoint of 9:00–18:00 is 13:30.
            assert_eq!(p.time_of_day(), TimeOfDay::new(13, 30));
        }
    }

    #[test]
    fn search_separates_sharers_from_deniers() {
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("alice"), 1, denying_rules());
        index.sync(ContributorId::new("carol"), 1, sharing_rules());
        let hits = index.search(&bob_query());
        assert_eq!(hits, vec![ContributorId::new("carol")]);
    }

    #[test]
    fn search_respects_consumer_condition() {
        let only_for_eve = vec![PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User(ConsumerId::new("Eve"))],
                ..Default::default()
            },
            action: Action::Allow,
        }];
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("dave"), 1, only_for_eve);
        assert!(index.search(&bob_query()).is_empty());
        let mut eve_query = bob_query();
        eve_query.consumer = ConsumerCtx::user("Eve");
        assert_eq!(index.search(&eve_query).len(), 1);
    }

    #[test]
    fn search_with_active_context_restriction() {
        // Bob studies stress *while driving*; Alice denies stress data
        // while driving (§6). Alice must not match.
        let alice_rules = vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions {
                    contexts: vec![ContextKind::Drive],
                    sensors: vec![ChannelId::new("ecg"), ChannelId::new("respiration")],
                    ..Default::default()
                },
                action: Action::Deny,
            },
        ];
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("alice"), 1, alice_rules);
        index.sync(ContributorId::new("carol"), 1, sharing_rules());
        let query = SearchQuery {
            consumer: ConsumerCtx::user("Bob"),
            raw_channels: vec![ChannelId::new("ecg"), ChannelId::new("respiration")],
            active_contexts: vec![ContextKind::Drive],
            ..Default::default()
        };
        let hits = index.search(&query);
        assert_eq!(hits, vec![ContributorId::new("carol")]);
    }

    #[test]
    fn label_context_requirement() {
        use crate::rule::AbstractionSpec;
        // Contributor shares stress only as a label.
        let label_only = vec![
            PrivacyRule::allow_all(),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    stress: Some(BinaryAbs::Label),
                    ..Default::default()
                }),
            },
        ];
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("erin"), 1, label_only);
        // A query needing stress labels matches...
        let label_query = SearchQuery {
            consumer: ConsumerCtx::user("Bob"),
            label_contexts: vec![ContextKind::Stress],
            ..Default::default()
        };
        assert_eq!(index.search(&label_query).len(), 1);
        // ...but a query needing raw ECG does not (dependency closure
        // suppresses it).
        let raw_query = SearchQuery {
            consumer: ConsumerCtx::user("Bob"),
            raw_channels: vec![ChannelId::new("ecg")],
            ..Default::default()
        };
        assert!(index.search(&raw_query).is_empty());
    }

    #[test]
    fn sync_epochs_are_monotonic() {
        let mut index = RuleIndex::new();
        let alice = ContributorId::new("alice");
        assert!(index.sync(alice.clone(), 2, sharing_rules()));
        // Stale epoch rejected.
        assert!(!index.sync(alice.clone(), 1, denying_rules()));
        assert!(!index.sync(alice.clone(), 2, denying_rules()));
        let (epoch, rules) = index.rules_of(&alice).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(rules.len(), 1);
        // Newer epoch accepted.
        assert!(index.sync(alice.clone(), 3, denying_rules()));
        assert_eq!(index.rules_of(&alice).unwrap().0, 3);
    }

    #[test]
    fn remove_contributor() {
        let mut index = RuleIndex::new();
        let alice = ContributorId::new("alice");
        index.sync(alice.clone(), 1, sharing_rules());
        assert_eq!(index.len(), 1);
        assert!(index.remove(&alice));
        assert!(!index.remove(&alice));
        assert!(index.is_empty());
    }

    #[test]
    fn snapshot_is_detached_from_later_syncs() {
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("alice"), 1, sharing_rules());
        index.sync(ContributorId::new("carol"), 1, sharing_rules());
        let snapshot = index.snapshot();
        assert_eq!(snapshot.len(), 2);
        // Alice stops sharing after the snapshot was taken.
        index.sync(ContributorId::new("alice"), 2, denying_rules());
        index.remove(&ContributorId::new("carol"));
        // The snapshot still sees both as of its instant...
        let hits = snapshot.search(&bob_query());
        assert_eq!(
            hits,
            vec![ContributorId::new("alice"), ContributorId::new("carol")]
        );
        // ...while a fresh snapshot sees the new state.
        assert!(index.snapshot().search(&bob_query()).is_empty());
    }

    #[test]
    fn snapshot_and_index_search_agree() {
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("alice"), 1, denying_rules());
        index.sync(ContributorId::new("carol"), 1, sharing_rules());
        assert_eq!(
            index.search(&bob_query()),
            index.snapshot().search(&bob_query())
        );
        assert!(!index.snapshot().is_empty());
    }

    #[test]
    fn range_only_query_probes_endpoints() {
        let q = SearchQuery {
            consumer: ConsumerCtx::user("Bob"),
            range: Some(TimeRange::new(
                Timestamp::from_millis(1_000_000),
                Timestamp::from_millis(2_000_000),
            )),
            ..Default::default()
        };
        let probes = q.probe_instants();
        assert_eq!(probes.len(), 3);
        assert!(probes.iter().all(|p| q.range.unwrap().contains(*p)));
    }

    #[test]
    fn time_scoped_sharing_must_cover_probes() {
        use crate::rule::TimeCondition;
        // Contributor only shares on Mondays 9-6; Bob needs all weekdays.
        let monday_only = vec![PrivacyRule {
            conditions: Conditions {
                time: Some(TimeCondition {
                    ranges: vec![],
                    repeats: vec![RepeatTime::new(
                        vec![Weekday::Mon],
                        TimeOfDay::new(9, 0),
                        TimeOfDay::new(18, 0),
                    )],
                }),
                ..Default::default()
            },
            action: Action::Allow,
        }];
        let mut index = RuleIndex::new();
        index.sync(ContributorId::new("frank"), 1, monday_only);
        assert!(index.search(&bob_query()).is_empty());
        // A Monday-only query matches.
        let monday_query = SearchQuery {
            repeat: Some(RepeatTime::new(
                vec![Weekday::Mon],
                TimeOfDay::new(10, 0),
                TimeOfDay::new(11, 0),
            )),
            ..bob_query()
        };
        assert_eq!(index.search(&monday_query).len(), 1);
    }
}
