//! Enforcement: rewriting wave segments according to a [`Decision`].
//!
//! Given the resolved decision for a window, enforcement produces the
//! consumer-visible [`SharedSegment`]:
//!
//! * **Channels** — only raw-shareable channels survive
//!   ([`Decision::raw_channels`]); dependency-suppressed channels are
//!   replaced by context labels at the granted ladder level.
//! * **Time** — the segment's *absolute* start time is truncated to the
//!   granted bucket (hour/day/month/year); relative sample timing within
//!   the segment is preserved (waveforms stay useful, but the consumer
//!   only learns which bucket the data came from). `NotShared` rebases
//!   the segment to epoch 0, leaving only relative order.
//! * **Location** — rendered through the location ladder (coordinates →
//!   street → zip → city → state → country → withheld) and stripped from
//!   the segment metadata whenever the level is coarser than
//!   `Coordinates`.
//! * **Context labels** — for ladders resolved to a label level, the
//!   window's annotations are rendered as Table 1(b) label strings
//!   ("Stressed"/"Not Stressed", transport mode names, "Move"/"Not
//!   Move"), with label windows time-abstracted consistently.

use crate::abstraction::{ActivityAbs, BinaryAbs, LocationAbs, TimeAbs};
use crate::eval::Decision;
use sensorsafe_obsv::audit;
use sensorsafe_types::{
    ChannelId, ContextAnnotation, ContextKind, SegmentMeta, TimeRange, Timestamp, Timing,
    WaveSegment,
};

/// Location as shared with a consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharedLocation {
    /// Withheld (`NotShared`, or the segment had no location).
    None,
    /// Rendered at some ladder level, e.g. `"City-4711"`.
    Text(String),
}

/// A context label shared in place of (or alongside) raw data.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextLabel {
    /// Which context family the label describes.
    pub kind: ContextKind,
    /// Table 1(b) label text.
    pub label: String,
    /// The (time-abstracted) window the label covers.
    pub window: TimeRange,
}

/// The consumer-visible view of one enforced window.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSegment {
    /// Raw channels that survived, with abstracted timing/location
    /// metadata. `None` when no raw channel is shareable.
    pub segment: Option<WaveSegment>,
    /// Context labels at the granted levels.
    pub labels: Vec<ContextLabel>,
    /// Abstracted location of the window.
    pub location: SharedLocation,
    /// The time ladder level that was applied.
    pub time_level: TimeAbs,
}

impl SharedSegment {
    /// True if the view carries no information at all.
    pub fn is_empty(&self) -> bool {
        self.segment.is_none() && self.labels.is_empty()
    }
}

fn abstract_timing(timing: &Timing, level: TimeAbs) -> Timing {
    match level {
        TimeAbs::Milliseconds => timing.clone(),
        TimeAbs::NotShared => match timing {
            // Rebase to epoch 0: relative order survives, absolute time
            // does not.
            Timing::Uniform { interval_secs, .. } => Timing::Uniform {
                start: Timestamp::from_millis(0),
                interval_secs: *interval_secs,
            },
            Timing::PerSample(stamps) => {
                let base = stamps.first().map_or(0, |t| t.millis());
                Timing::PerSample(
                    stamps
                        .iter()
                        .map(|t| Timestamp::from_millis(t.millis() - base))
                        .collect(),
                )
            }
        },
        bucketed => match timing {
            Timing::Uniform {
                start,
                interval_secs,
            } => Timing::Uniform {
                start: bucketed.apply(*start),
                interval_secs: *interval_secs,
            },
            Timing::PerSample(stamps) => {
                // Shift the whole series so its first sample lands on the
                // bucket boundary — preserves intra-segment deltas.
                let shift = stamps
                    .first()
                    .map_or(0, |t| t.millis() - bucketed.apply(*t).millis());
                Timing::PerSample(
                    stamps
                        .iter()
                        .map(|t| Timestamp::from_millis(t.millis() - shift))
                        .collect(),
                )
            }
        },
    }
}

fn binary_label(kind: ContextKind, active: bool) -> String {
    let (on, off) = match kind {
        ContextKind::Stress => ("Stressed", "Not Stressed"),
        ContextKind::Smoking => ("Smoking", "Not Smoking"),
        ContextKind::Conversation => ("Conversation", "Not Conversation"),
        ContextKind::Moving => ("Move", "Not Move"),
        other => return other.as_str().to_string(),
    };
    (if active { on } else { off }).to_string()
}

fn abstract_window(window: TimeRange, level: TimeAbs) -> TimeRange {
    match level {
        TimeAbs::Milliseconds => window,
        TimeAbs::NotShared => TimeRange::new(
            Timestamp::from_millis(0),
            Timestamp::from_millis(window.duration_millis()),
        ),
        bucketed => {
            let start = bucketed.apply(window.start);
            let shift = window.start.millis() - start.millis();
            TimeRange::new(start, Timestamp::from_millis(window.end.millis() - shift))
        }
    }
}

/// Applies `decision` to one `segment` and the annotations overlapping
/// it. Returns `None` when nothing is shared.
pub fn enforce(
    decision: &Decision,
    segment: &WaveSegment,
    annotations: &[ContextAnnotation],
) -> Option<SharedSegment> {
    let suppressed = decision.suppressed.len() as u64;
    if decision.shares_nothing() {
        audit::record_decision(audit::Outcome::Denied, suppressed, &decision.matched);
        return None;
    }
    let raw: Vec<ChannelId> = decision.raw_channels().cloned().collect();
    let projected = if raw.is_empty() {
        None
    } else {
        segment.select_channels(&raw)
    };

    // Apply time + location abstraction to the surviving segment's
    // metadata.
    let shared_segment = projected.map(|seg| {
        let meta = seg.meta();
        let new_meta = SegmentMeta {
            timing: abstract_timing(&meta.timing, decision.time),
            location: if decision.location == LocationAbs::Coordinates {
                meta.location
            } else {
                None
            },
            format: meta.format.clone(),
        };
        WaveSegment::from_blob(new_meta, seg.blob().clone())
            .expect("metadata rewrite preserves blob invariants")
    });

    let location = match segment.meta().location {
        None => SharedLocation::None,
        Some(point) => match decision.location.apply(&point) {
            None => SharedLocation::None,
            Some(text) => SharedLocation::Text(text),
        },
    };

    // Emit context labels for ladders resolved to a label level.
    let mut labels = Vec::new();
    let seg_range = segment.time_range();
    for ann in annotations {
        let overlaps = seg_range.as_ref().is_some_and(|r| r.overlaps(&ann.window));
        if !overlaps {
            continue;
        }
        let window = abstract_window(ann.window, decision.time);
        for state in &ann.states {
            let emitted = match state.kind {
                ContextKind::Stress => decision.stress == BinaryAbs::Label,
                ContextKind::Smoking => decision.smoking == BinaryAbs::Label,
                ContextKind::Conversation => decision.conversation == BinaryAbs::Label,
                ContextKind::Moving => decision.activity == ActivityAbs::MoveNotMove,
                kind if kind.is_transport_mode() => {
                    // Transport modes are emitted only for the active
                    // mode at TransportMode level; at MoveNotMove level
                    // they collapse into the Moving label below.
                    decision.activity == ActivityAbs::TransportMode && state.active
                }
                _ => false,
            };
            if !emitted {
                continue;
            }
            let label = if state.kind.is_transport_mode() {
                state.kind.as_str().to_string()
            } else {
                binary_label(state.kind, state.active)
            };
            labels.push(ContextLabel {
                kind: state.kind,
                label,
                window,
            });
        }
        // MoveNotMove: derive the coarse label from the transport mode if
        // Moving itself wasn't annotated.
        if decision.activity == ActivityAbs::MoveNotMove
            && ann.state_of(ContextKind::Moving).is_none()
        {
            if let Some(mode) = ann.transport_mode() {
                let moving = mode != ContextKind::Still;
                labels.push(ContextLabel {
                    kind: ContextKind::Moving,
                    label: binary_label(ContextKind::Moving, moving),
                    window,
                });
            }
        }
    }

    let shared = SharedSegment {
        segment: shared_segment,
        labels,
        location,
        time_level: decision.time,
    };
    if shared.is_empty() {
        audit::record_decision(audit::Outcome::Denied, suppressed, &decision.matched);
        return None;
    }
    // "Abstracted" means the consumer saw less than the raw window: a
    // dependency-closure suppression, a label standing in for raw data, or
    // time coarser than milliseconds.
    let abstracted =
        suppressed > 0 || !shared.labels.is_empty() || decision.time != TimeAbs::Milliseconds;
    audit::record_decision(
        if abstracted {
            audit::Outcome::Abstracted
        } else {
            audit::Outcome::Allowed
        },
        suppressed,
        &decision.matched,
    );
    Some(shared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::DependencyGraph;
    use crate::eval::{evaluate, ConsumerCtx, WindowCtx};
    use crate::rule::{AbstractionSpec, Action, Conditions, PrivacyRule};
    use sensorsafe_types::{
        ChannelSpec, ContextState, GeoPoint, SegmentMeta, CHAN_ACCEL_MAG, CHAN_ECG,
        CHAN_RESPIRATION,
    };

    fn segment() -> WaveSegment {
        let meta = SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp::from_millis(1_311_535_598_327),
                interval_secs: 0.02,
            },
            location: Some(GeoPoint::ucla()),
            format: vec![
                ChannelSpec::f32(CHAN_ECG),
                ChannelSpec::f32(CHAN_RESPIRATION),
                ChannelSpec::f32(CHAN_ACCEL_MAG),
            ],
        };
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64, 300.0 - i as f64, 1.0])
            .collect();
        WaveSegment::from_rows(meta, &rows).unwrap()
    }

    fn annotation(stressed: bool) -> ContextAnnotation {
        ContextAnnotation::new(
            TimeRange::new(
                Timestamp::from_millis(1_311_535_598_000),
                Timestamp::from_millis(1_311_535_610_000),
            ),
            vec![
                ContextState {
                    kind: ContextKind::Stress,
                    active: stressed,
                },
                ContextState::on(ContextKind::Drive),
            ],
        )
    }

    fn decide(rules: &[PrivacyRule]) -> Decision {
        let window = WindowCtx {
            time: Timestamp::from_millis(1_311_535_598_327),
            location: Some(GeoPoint::ucla()),
            location_labels: vec!["UCLA".into()],
            contexts: vec![ContextState::on(ContextKind::Drive)],
        };
        let channels = vec![
            ChannelId::new(CHAN_ECG),
            ChannelId::new(CHAN_RESPIRATION),
            ChannelId::new(CHAN_ACCEL_MAG),
        ];
        evaluate(
            rules,
            &ConsumerCtx::user("Bob"),
            &window,
            &channels,
            &DependencyGraph::paper(),
        )
    }

    fn allow_all() -> PrivacyRule {
        PrivacyRule::allow_all()
    }

    fn abstraction(spec: AbstractionSpec) -> PrivacyRule {
        PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Abstraction(spec),
        }
    }

    #[test]
    fn allow_all_passes_everything_through() {
        let d = decide(&[allow_all()]);
        let shared = enforce(&d, &segment(), &[annotation(true)]).unwrap();
        let seg = shared.segment.unwrap();
        assert_eq!(seg.len(), 100);
        assert_eq!(seg.meta().format.len(), 3);
        assert_eq!(
            seg.meta().timing,
            segment().meta().timing,
            "raw timing preserved"
        );
        assert!(matches!(shared.location, SharedLocation::Text(ref t) if t.contains("34.07")));
        assert!(shared.labels.is_empty(), "raw sharing emits no labels");
    }

    #[test]
    fn deny_everything_yields_none() {
        let d = decide(&[]);
        assert!(enforce(&d, &segment(), &[annotation(true)]).is_none());
    }

    #[test]
    fn stress_label_replaces_raw_sources() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::Label),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[annotation(true)]).unwrap();
        let seg = shared.segment.unwrap();
        // ECG and respiration suppressed; accel survives.
        let names: Vec<&str> = seg.channels().map(|c| c.as_str()).collect();
        assert_eq!(names, [CHAN_ACCEL_MAG]);
        assert_eq!(shared.labels.len(), 1);
        assert_eq!(shared.labels[0].kind, ContextKind::Stress);
        assert_eq!(shared.labels[0].label, "Stressed");
    }

    #[test]
    fn not_stressed_label_text() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::Label),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[annotation(false)]).unwrap();
        assert_eq!(shared.labels[0].label, "Not Stressed");
    }

    #[test]
    fn transport_mode_labels() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                activity: Some(ActivityAbs::TransportMode),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[annotation(true)]).unwrap();
        // accel suppressed, replaced by the active mode label.
        let seg = shared.segment.unwrap();
        assert!(seg.channels().all(|c| c.as_str() != CHAN_ACCEL_MAG));
        let drive = shared
            .labels
            .iter()
            .find(|l| l.kind == ContextKind::Drive)
            .unwrap();
        assert_eq!(drive.label, "Drive");
    }

    #[test]
    fn move_not_move_derived_from_mode() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                activity: Some(ActivityAbs::MoveNotMove),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[annotation(true)]).unwrap();
        let moving = shared
            .labels
            .iter()
            .find(|l| l.kind == ContextKind::Moving)
            .unwrap();
        assert_eq!(moving.label, "Move"); // Drive is a moving mode
        assert!(shared.labels.iter().all(|l| l.kind != ContextKind::Drive));
    }

    #[test]
    fn time_abstraction_truncates_start_keeps_relative() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                time: Some(TimeAbs::Hour),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[]).unwrap();
        let seg = shared.segment.unwrap();
        let start = seg.start_time().unwrap();
        assert_eq!(start.time_of_day().minute, 0);
        assert_eq!(start.millis() % 3_600_000, 0);
        // Relative spacing preserved.
        assert_eq!(seg.time_at(1).delta_millis(seg.time_at(0)), 20);
    }

    #[test]
    fn time_not_shared_rebases_to_epoch() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                time: Some(TimeAbs::NotShared),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[]).unwrap();
        let seg = shared.segment.unwrap();
        assert_eq!(seg.start_time().unwrap().millis(), 0);
        assert_eq!(seg.time_at(5).millis(), 100);
    }

    #[test]
    fn location_abstraction_strips_coordinates() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                location: Some(LocationAbs::City),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[]).unwrap();
        assert!(matches!(shared.location, SharedLocation::Text(ref t) if t.starts_with("City-")));
        // Segment metadata no longer carries the precise point.
        assert!(shared.segment.unwrap().meta().location.is_none());
    }

    #[test]
    fn location_not_shared() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                location: Some(LocationAbs::NotShared),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[]).unwrap();
        assert_eq!(shared.location, SharedLocation::None);
    }

    #[test]
    fn label_windows_get_time_abstraction() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::Label),
                time: Some(TimeAbs::Day),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &segment(), &[annotation(true)]).unwrap();
        let label = &shared.labels[0];
        // Window start truncated to midnight; duration preserved.
        assert_eq!(label.window.start.millis() % 86_400_000, 0);
        assert_eq!(label.window.duration_millis(), 12_000);
    }

    #[test]
    fn non_overlapping_annotations_ignored() {
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::Label),
                ..Default::default()
            }),
        ]);
        let far_away = ContextAnnotation::new(
            TimeRange::new(Timestamp::from_millis(0), Timestamp::from_millis(1000)),
            vec![ContextState::on(ContextKind::Stress)],
        );
        let shared = enforce(&d, &segment(), &[far_away]).unwrap();
        assert!(shared.labels.is_empty());
    }

    #[test]
    fn label_only_view_when_all_raw_suppressed() {
        // Segment carries only ECG; stress at Label level suppresses it,
        // leaving a label-only view.
        let meta = SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp::from_millis(1_311_535_598_327),
                interval_secs: 0.02,
            },
            location: None,
            format: vec![ChannelSpec::f32(CHAN_ECG)],
        };
        let seg = WaveSegment::from_rows(meta, &[vec![1.0], vec![2.0]]).unwrap();
        let d = decide(&[
            allow_all(),
            abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::Label),
                smoking: Some(BinaryAbs::NotShared),
                conversation: Some(BinaryAbs::NotShared),
                activity: Some(ActivityAbs::NotShared),
                ..Default::default()
            }),
        ]);
        let shared = enforce(&d, &seg, &[annotation(true)]).unwrap();
        assert!(shared.segment.is_none());
        assert_eq!(shared.labels.len(), 1);
        assert_eq!(shared.labels[0].label, "Stressed");
    }
}
