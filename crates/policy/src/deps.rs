//! The sensor↔context dependency graph (§5.1).
//!
//! "Note that a sensor can be used to infer multiple context information
//! (e.g., a respiration sensor is used for stress, conversation, and
//! smoking). Therefore, if a contributor chooses not to share such a
//! sensor or a related context, the raw sensor data will not be shared
//! even though other relevant contexts are chosen to be shared in raw
//! data form. ... The privacy rule processing module contains this
//! sensor/context dependency information and performs access control
//! accordingly."
//!
//! [`DependencyGraph`] records which raw channels each context is
//! inferable from; [`DependencyGraph::blocked_channels`] computes the set
//! of channels whose raw form must be suppressed given the resolved
//! per-context sharing levels.

use crate::abstraction::{ActivityAbs, BinaryAbs};
use sensorsafe_types::{
    ChannelId, ContextKind, CHAN_ACCEL_MAG, CHAN_AUDIO_ENERGY, CHAN_ECG, CHAN_GPS_LAT,
    CHAN_GPS_LON, CHAN_RESPIRATION,
};
use std::collections::{BTreeMap, BTreeSet};

/// Maps each context to the raw sensor channels it can be inferred from.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyGraph {
    sources: BTreeMap<ContextKind, BTreeSet<ChannelId>>,
}

impl Default for DependencyGraph {
    fn default() -> Self {
        Self::paper()
    }
}

impl DependencyGraph {
    /// The paper's dependency structure:
    ///
    /// * stress ← {ecg, respiration} (\[31\])
    /// * conversation ← {audio_energy, respiration}
    /// * smoking ← {respiration}
    /// * transportation modes & moving ← {accel_mag, gps_lat, gps_lon} (\[33\])
    pub fn paper() -> DependencyGraph {
        let mut g = DependencyGraph {
            sources: BTreeMap::new(),
        };
        g.declare(ContextKind::Stress, &[CHAN_ECG, CHAN_RESPIRATION]);
        g.declare(
            ContextKind::Conversation,
            &[CHAN_AUDIO_ENERGY, CHAN_RESPIRATION],
        );
        g.declare(ContextKind::Smoking, &[CHAN_RESPIRATION]);
        let movement = [CHAN_ACCEL_MAG, CHAN_GPS_LAT, CHAN_GPS_LON];
        for kind in ContextKind::TRANSPORT_MODES {
            g.declare(kind, &movement);
        }
        g.declare(ContextKind::Moving, &movement);
        g
    }

    /// An empty graph (no context depends on any sensor).
    pub fn empty() -> DependencyGraph {
        DependencyGraph {
            sources: BTreeMap::new(),
        }
    }

    /// Declares (or extends) the source channels of a context.
    pub fn declare(&mut self, context: ContextKind, channels: &[&str]) {
        let entry = self.sources.entry(context).or_default();
        for c in channels {
            entry.insert(ChannelId::new(*c));
        }
    }

    /// The source channels of a context (empty if undeclared).
    pub fn sources_of(&self, context: ContextKind) -> impl Iterator<Item = &ChannelId> {
        self.sources.get(&context).into_iter().flatten()
    }

    /// Contexts inferable from the given channel.
    pub fn contexts_from(&self, channel: &ChannelId) -> Vec<ContextKind> {
        self.sources
            .iter()
            .filter(|(_, chans)| chans.contains(channel))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Computes the channels whose **raw** data must be suppressed:
    /// a channel is blocked iff any context inferable from it is not
    /// shared at raw level. `activity` covers the whole transportation
    /// family plus `Moving`; the three binary levels cover their
    /// respective contexts.
    pub fn blocked_channels(
        &self,
        activity: ActivityAbs,
        stress: BinaryAbs,
        smoking: BinaryAbs,
        conversation: BinaryAbs,
    ) -> BTreeSet<ChannelId> {
        let mut blocked = BTreeSet::new();
        let mut block_context = |kind: ContextKind| {
            for c in self.sources_of(kind) {
                blocked.insert(c.clone());
            }
        };
        if activity != ActivityAbs::Raw {
            for kind in ContextKind::TRANSPORT_MODES {
                block_context(kind);
            }
            block_context(ContextKind::Moving);
        }
        if stress != BinaryAbs::Raw {
            block_context(ContextKind::Stress);
        }
        if smoking != BinaryAbs::Raw {
            block_context(ContextKind::Smoking);
        }
        if conversation != BinaryAbs::Raw {
            block_context(ContextKind::Conversation);
        }
        blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan(name: &str) -> ChannelId {
        ChannelId::new(name)
    }

    #[test]
    fn paper_graph_structure() {
        let g = DependencyGraph::paper();
        let stress: Vec<&str> = g
            .sources_of(ContextKind::Stress)
            .map(|c| c.as_str())
            .collect();
        assert_eq!(stress, ["ecg", "respiration"]);
        let from_rip = g.contexts_from(&chan(CHAN_RESPIRATION));
        assert!(from_rip.contains(&ContextKind::Stress));
        assert!(from_rip.contains(&ContextKind::Smoking));
        assert!(from_rip.contains(&ContextKind::Conversation));
        assert!(!from_rip.contains(&ContextKind::Drive));
    }

    #[test]
    fn paper_example_smoking_blocks_respiration() {
        // "if the smoking context is not shared, respiration sensor data
        // will not be shared even though stress and conversation are
        // shared in raw data form."
        let g = DependencyGraph::paper();
        let blocked = g.blocked_channels(
            ActivityAbs::Raw,
            BinaryAbs::Raw,       // stress raw
            BinaryAbs::NotShared, // smoking withheld
            BinaryAbs::Raw,       // conversation raw
        );
        assert!(blocked.contains(&chan(CHAN_RESPIRATION)));
        // ECG is only a stress source; stress is raw, so ECG stays.
        assert!(!blocked.contains(&chan(CHAN_ECG)));
        assert!(!blocked.contains(&chan(CHAN_AUDIO_ENERGY)));
    }

    #[test]
    fn stress_label_blocks_both_sources() {
        let g = DependencyGraph::paper();
        let blocked = g.blocked_channels(
            ActivityAbs::Raw,
            BinaryAbs::Label,
            BinaryAbs::Raw,
            BinaryAbs::Raw,
        );
        assert!(blocked.contains(&chan(CHAN_ECG)));
        assert!(blocked.contains(&chan(CHAN_RESPIRATION)));
    }

    #[test]
    fn activity_abstraction_blocks_movement_channels() {
        let g = DependencyGraph::paper();
        let blocked = g.blocked_channels(
            ActivityAbs::TransportMode,
            BinaryAbs::Raw,
            BinaryAbs::Raw,
            BinaryAbs::Raw,
        );
        assert!(blocked.contains(&chan(CHAN_ACCEL_MAG)));
        assert!(blocked.contains(&chan(CHAN_GPS_LAT)));
        assert!(blocked.contains(&chan(CHAN_GPS_LON)));
        assert!(!blocked.contains(&chan(CHAN_ECG)));
    }

    #[test]
    fn everything_raw_blocks_nothing() {
        let g = DependencyGraph::paper();
        assert!(g
            .blocked_channels(
                ActivityAbs::Raw,
                BinaryAbs::Raw,
                BinaryAbs::Raw,
                BinaryAbs::Raw
            )
            .is_empty());
    }

    #[test]
    fn empty_graph_blocks_nothing_even_when_withheld() {
        let g = DependencyGraph::empty();
        assert!(g
            .blocked_channels(
                ActivityAbs::NotShared,
                BinaryAbs::NotShared,
                BinaryAbs::NotShared,
                BinaryAbs::NotShared
            )
            .is_empty());
    }

    #[test]
    fn custom_graph_extension() {
        let mut g = DependencyGraph::empty();
        g.declare(ContextKind::Stress, &["skin_temp"]);
        g.declare(ContextKind::Stress, &["ecg"]);
        let blocked = g.blocked_channels(
            ActivityAbs::Raw,
            BinaryAbs::NotShared,
            BinaryAbs::Raw,
            BinaryAbs::Raw,
        );
        assert_eq!(blocked.len(), 2);
        assert!(blocked.contains(&chan("skin_temp")));
        assert!(blocked.contains(&chan("ecg")));
    }
}
