//! Privacy-rule evaluation: condition matching and decision resolution.
//!
//! The paper leaves rule conflicts unspecified; SensorSafe fixes these
//! semantics (also documented in DESIGN.md §6):
//!
//! * **Deny-by-default** — a channel is shared only if some matching
//!   `Allow` rule covers it.
//! * **Most-restrictive-wins** — among matching rules, `Deny` beats
//!   `Allow` per channel, and abstraction levels from multiple rules
//!   combine by taking the most restrictive level on each ladder.
//!   Abstraction rules *modulate* what an Allow shares (Fig. 4's second
//!   rule relies on the first rule's Allow); they never grant access by
//!   themselves. Evaluation is therefore order-independent.
//! * **Conservative matching for restrictions** — if a window's location
//!   or context is *unknown* (no GPS fix / not annotated), `Deny` and
//!   `Abstraction` rules conditioned on location or context still match
//!   (the restriction may apply, so assume it does), while `Allow` rules
//!   require positive evidence. This keeps Alice's "deny accelerometer at
//!   home" effective even when her phone loses GPS.
//!
//! Evaluation operates on *windows*: spans of data over which location
//! and context are constant (the data store splits segments along
//! annotation boundaries before evaluating).

use crate::abstraction::{ActivityAbs, BinaryAbs, LocationAbs, TimeAbs};
use crate::deps::DependencyGraph;
use crate::rule::{Action, Conditions, ConsumerSelector, PrivacyRule};
use sensorsafe_types::{
    ChannelId, ConsumerId, ContextKind, ContextState, GeoPoint, GroupId, StudyId, Timestamp,
};
use std::collections::BTreeSet;

/// The identity of the consumer making a request, with group and study
/// memberships resolved (the broker knows these; Table 1's consumer
/// condition can select any of the three).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConsumerCtx {
    /// Unique user name.
    pub id: Option<ConsumerId>,
    /// Groups the consumer belongs to.
    pub groups: Vec<GroupId>,
    /// Studies the consumer is enrolled in.
    pub studies: Vec<StudyId>,
}

impl ConsumerCtx {
    /// A plain consumer with no memberships.
    pub fn user(id: impl Into<String>) -> ConsumerCtx {
        ConsumerCtx {
            id: Some(ConsumerId::new(id.into())),
            groups: Vec::new(),
            studies: Vec::new(),
        }
    }

    fn matches(&self, sel: &ConsumerSelector) -> bool {
        match sel {
            ConsumerSelector::User(u) => self.id.as_ref() == Some(u),
            ConsumerSelector::Group(g) => self.groups.contains(g),
            ConsumerSelector::Study(s) => self.studies.contains(s),
        }
    }
}

/// One evaluation window: a span with constant location and context.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowCtx {
    /// Representative instant (window start) for time conditions.
    pub time: Timestamp,
    /// GPS fix, if any.
    pub location: Option<GeoPoint>,
    /// Contributor-defined labels active at this place ("UCLA", "home").
    pub location_labels: Vec<String>,
    /// Annotated context states; kinds absent from the list are unknown.
    pub contexts: Vec<ContextState>,
}

impl WindowCtx {
    /// Whether `kind` is known-active / known-inactive / unknown.
    ///
    /// Transportation modes are mutually exclusive, so a window annotated
    /// with an active mode implicitly knows every *other* mode to be
    /// inactive — without this, a "deny while driving" rule would
    /// conservatively fire during annotated walking windows too.
    fn context_state(&self, kind: ContextKind) -> Option<bool> {
        if let Some(state) = self.contexts.iter().find(|s| s.kind == kind) {
            return Some(state.active);
        }
        if kind.is_transport_mode()
            && self
                .contexts
                .iter()
                .any(|s| s.active && s.kind.is_transport_mode())
        {
            return Some(false);
        }
        None
    }
}

/// How strictly a condition must be proven for a rule to match.
#[derive(Clone, Copy, PartialEq)]
enum Evidence {
    /// Allow rules: unknown facts do NOT match.
    Positive,
    /// Deny/Abstraction rules: unknown facts DO match (conservative).
    Conservative,
}

fn location_matches(cond: &Conditions, window: &WindowCtx, evidence: Evidence) -> bool {
    let Some(loc) = &cond.location else {
        return true;
    };
    let label_hit = loc
        .labels
        .iter()
        .any(|l| window.location_labels.iter().any(|w| w == l));
    if label_hit {
        return true;
    }
    match window.location {
        Some(point) => loc.regions.iter().any(|r| r.contains(&point)),
        // No fix: region membership is unknown.
        None => evidence == Evidence::Conservative && !loc.regions.is_empty(),
    }
}

fn time_matches(cond: &Conditions, window: &WindowCtx) -> bool {
    match &cond.time {
        None => true,
        Some(t) => t.contains(window.time),
    }
}

fn context_matches(cond: &Conditions, window: &WindowCtx, evidence: Evidence) -> bool {
    if cond.contexts.is_empty() {
        return true;
    }
    cond.contexts
        .iter()
        .any(|k| match window.context_state(*k) {
            Some(active) => active,
            None => evidence == Evidence::Conservative,
        })
}

fn consumer_matches(cond: &Conditions, consumer: &ConsumerCtx) -> bool {
    cond.consumers.is_empty() || cond.consumers.iter().any(|sel| consumer.matches(sel))
}

pub(crate) fn rule_matches(rule: &PrivacyRule, consumer: &ConsumerCtx, window: &WindowCtx) -> bool {
    let evidence = match rule.action {
        Action::Allow => Evidence::Positive,
        Action::Deny | Action::Abstraction(_) => Evidence::Conservative,
    };
    consumer_matches(&rule.conditions, consumer)
        && time_matches(&rule.conditions, window)
        && location_matches(&rule.conditions, window, evidence)
        && context_matches(&rule.conditions, window, evidence)
}

/// The resolved sharing decision for one window and one consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Channels shareable (possibly only in abstracted form — check
    /// [`Decision::suppressed`]).
    pub allowed: BTreeSet<ChannelId>,
    /// Channels explicitly or implicitly denied.
    pub denied: BTreeSet<ChannelId>,
    /// Location ladder level for this window.
    pub location: LocationAbs,
    /// Time ladder level for this window.
    pub time: TimeAbs,
    /// Activity ladder level.
    pub activity: ActivityAbs,
    /// Stress ladder level.
    pub stress: BinaryAbs,
    /// Smoking ladder level.
    pub smoking: BinaryAbs,
    /// Conversation ladder level.
    pub conversation: BinaryAbs,
    /// Allowed channels whose **raw** form the dependency closure
    /// suppressed; consumers get context labels instead.
    pub suppressed: BTreeSet<ChannelId>,
    /// Indices (into the evaluated rule slice) of the rules that matched
    /// this window, in evaluation order — the provenance the audit ledger
    /// records so a contributor can see *which* rule produced an outcome.
    pub matched: Vec<u32>,
}

impl Decision {
    /// True if nothing at all is shared for this window.
    pub fn shares_nothing(&self) -> bool {
        // A window shares something if any channel survives raw, or a
        // suppressed channel still yields context labels.
        let raw_any = self.allowed.difference(&self.suppressed).next().is_some();
        let labels_any = !self.suppressed.is_empty()
            && (self.activity == ActivityAbs::TransportMode
                || self.activity == ActivityAbs::MoveNotMove
                || self.stress == BinaryAbs::Label
                || self.smoking == BinaryAbs::Label
                || self.conversation == BinaryAbs::Label);
        !raw_any && !labels_any
    }

    /// Channels shared in raw form (allowed minus dependency-suppressed).
    pub fn raw_channels(&self) -> impl Iterator<Item = &ChannelId> {
        self.allowed.difference(&self.suppressed)
    }
}

/// The six abstraction ladders accumulated across matching rules
/// (most-restrictive-wins). Shared by [`evaluate`] and the compiled
/// evaluator in [`crate::compile`].
#[derive(Clone, Copy)]
pub(crate) struct Ladders {
    pub(crate) location: LocationAbs,
    pub(crate) time: TimeAbs,
    pub(crate) activity: ActivityAbs,
    pub(crate) stress: BinaryAbs,
    pub(crate) smoking: BinaryAbs,
    pub(crate) conversation: BinaryAbs,
}

impl Ladders {
    /// The most permissive starting point (raw everything).
    pub(crate) fn raw() -> Ladders {
        Ladders {
            location: LocationAbs::Coordinates,
            time: TimeAbs::Milliseconds,
            activity: ActivityAbs::Raw,
            stress: BinaryAbs::Raw,
            smoking: BinaryAbs::Raw,
            conversation: BinaryAbs::Raw,
        }
    }

    /// Ratchets each ladder to the more restrictive of the current level
    /// and `spec`'s (abstraction rules combine most-restrictive-wins).
    pub(crate) fn apply(&mut self, spec: &crate::rule::AbstractionSpec) {
        if let Some(l) = spec.location {
            self.location = self.location.max_restrictive(l);
        }
        if let Some(t) = spec.time {
            self.time = self.time.max_restrictive(t);
        }
        if let Some(a) = spec.activity {
            self.activity = self.activity.max_restrictive(a);
        }
        if let Some(s) = spec.stress {
            self.stress = self.stress.max_restrictive(s);
        }
        if let Some(s) = spec.smoking {
            self.smoking = self.smoking.max_restrictive(s);
        }
        if let Some(s) = spec.conversation {
            self.conversation = self.conversation.max_restrictive(s);
        }
    }
}

/// Finishes a decision from the accumulated allow/deny sets and ladders:
/// deny beats allow, deny-by-default, then the dependency closure.
pub(crate) fn resolve_decision(
    mut allowed: BTreeSet<ChannelId>,
    force_denied: BTreeSet<ChannelId>,
    ladders: Ladders,
    channels: &[ChannelId],
    graph: &DependencyGraph,
    matched: Vec<u32>,
) -> Decision {
    // Deny beats allow, and anything never allowed defaults to denied.
    for c in &force_denied {
        allowed.remove(c);
    }
    let denied: BTreeSet<ChannelId> = channels
        .iter()
        .filter(|c| !allowed.contains(*c))
        .cloned()
        .collect();

    // Dependency closure: suppress raw channels whose inferable contexts
    // are not fully raw.
    let blocked = graph.blocked_channels(
        ladders.activity,
        ladders.stress,
        ladders.smoking,
        ladders.conversation,
    );
    let suppressed: BTreeSet<ChannelId> = allowed.intersection(&blocked).cloned().collect();

    Decision {
        allowed,
        denied,
        location: ladders.location,
        time: ladders.time,
        activity: ladders.activity,
        stress: ladders.stress,
        smoking: ladders.smoking,
        conversation: ladders.conversation,
        suppressed,
        matched,
    }
}

/// Evaluates `rules` for `consumer` over one `window`, deciding the fate
/// of each channel in `channels` (the channels present in the data being
/// requested). `graph` supplies the sensor/context dependencies for the
/// closure step.
///
/// The enforcement hot path uses the allocation-free compiled form
/// instead ([`crate::CompiledRules`]); this function stays the reference
/// semantics (and the convenient entry point for one-shot evaluation,
/// e.g. broker search probes).
pub fn evaluate(
    rules: &[PrivacyRule],
    consumer: &ConsumerCtx,
    window: &WindowCtx,
    channels: &[ChannelId],
    graph: &DependencyGraph,
) -> Decision {
    let mut allowed: BTreeSet<ChannelId> = BTreeSet::new();
    let mut force_denied: BTreeSet<ChannelId> = BTreeSet::new();
    let mut ladders = Ladders::raw();
    let mut matched: Vec<u32> = Vec::new();

    let rule_channels = |cond: &Conditions| -> Vec<ChannelId> {
        if cond.sensors.is_empty() {
            channels.to_vec()
        } else {
            cond.sensors
                .iter()
                .filter(|s| channels.contains(s))
                .cloned()
                .collect()
        }
    };

    for (index, rule) in rules.iter().enumerate() {
        if !rule_matches(rule, consumer, window) {
            continue;
        }
        matched.push(index as u32);
        match &rule.action {
            Action::Allow => {
                for c in rule_channels(&rule.conditions) {
                    allowed.insert(c);
                }
            }
            Action::Deny => {
                for c in rule_channels(&rule.conditions) {
                    force_denied.insert(c);
                }
            }
            Action::Abstraction(spec) => {
                // Abstraction only *modulates* sharing — access itself
                // still needs an Allow rule (Fig. 4's rule 2 relies on
                // rule 1's Allow). Ladder levels ratchet up, most
                // restrictive winning across rules.
                ladders.apply(spec);
            }
        }
    }

    resolve_decision(allowed, force_denied, ladders, channels, graph, matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{AbstractionSpec, LocationCondition, TimeCondition};
    use sensorsafe_types::{Region, CHAN_ACCEL_MAG, CHAN_ECG, CHAN_RESPIRATION};

    fn chans(names: &[&str]) -> Vec<ChannelId> {
        names.iter().map(|n| ChannelId::new(*n)).collect()
    }

    fn graph() -> DependencyGraph {
        DependencyGraph::paper()
    }

    fn bob() -> ConsumerCtx {
        ConsumerCtx::user("Bob")
    }

    fn window_at_ucla() -> WindowCtx {
        WindowCtx {
            time: Timestamp::from_millis(1_311_535_598_327),
            location: Some(GeoPoint::ucla()),
            location_labels: vec!["UCLA".into()],
            contexts: vec![],
        }
    }

    fn allow_rule(consumer: &str) -> PrivacyRule {
        PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User(ConsumerId::new(consumer))],
                ..Default::default()
            },
            action: Action::Allow,
        }
    }

    #[test]
    fn deny_by_default() {
        let d = evaluate(&[], &bob(), &window_at_ucla(), &chans(&["ecg"]), &graph());
        assert!(d.allowed.is_empty());
        assert_eq!(d.denied, chans(&["ecg"]).into_iter().collect());
        assert!(d.shares_nothing());
    }

    #[test]
    fn allow_all_shares_raw() {
        let d = evaluate(
            &[allow_rule("Bob")],
            &bob(),
            &window_at_ucla(),
            &chans(&["ecg", "respiration"]),
            &graph(),
        );
        assert_eq!(d.allowed.len(), 2);
        assert!(d.denied.is_empty());
        assert!(d.suppressed.is_empty());
        assert!(!d.shares_nothing());
    }

    #[test]
    fn allow_does_not_leak_to_other_consumers() {
        let eve = ConsumerCtx::user("Eve");
        let d = evaluate(
            &[allow_rule("Bob")],
            &eve,
            &window_at_ucla(),
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d.allowed.is_empty());
    }

    #[test]
    fn group_and_study_selectors() {
        let mut consumer = ConsumerCtx::user("carol");
        consumer.groups.push(GroupId::new("researchers"));
        consumer.studies.push(StudyId::new("stress-study"));
        let group_rule = PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::Group(GroupId::new("researchers"))],
                ..Default::default()
            },
            action: Action::Allow,
        };
        let d = evaluate(
            &[group_rule],
            &consumer,
            &window_at_ucla(),
            &chans(&["ecg"]),
            &graph(),
        );
        assert_eq!(d.allowed.len(), 1);
        let study_rule = PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::Study(StudyId::new("other-study"))],
                ..Default::default()
            },
            action: Action::Allow,
        };
        let d2 = evaluate(
            &[study_rule],
            &consumer,
            &window_at_ucla(),
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d2.allowed.is_empty());
    }

    #[test]
    fn deny_beats_allow_regardless_of_order() {
        let deny_ecg = PrivacyRule {
            conditions: Conditions {
                sensors: chans(&["ecg"]),
                ..Default::default()
            },
            action: Action::Deny,
        };
        for rules in [
            vec![allow_rule("Bob"), deny_ecg.clone()],
            vec![deny_ecg.clone(), allow_rule("Bob")],
        ] {
            let d = evaluate(
                &rules,
                &bob(),
                &window_at_ucla(),
                &chans(&["ecg", "respiration"]),
                &graph(),
            );
            assert!(!d.allowed.contains(&ChannelId::new("ecg")));
            assert!(d.allowed.contains(&ChannelId::new("respiration")));
            assert!(d.denied.contains(&ChannelId::new("ecg")));
        }
    }

    #[test]
    fn sensor_condition_scopes_rule() {
        let allow_ecg_only = PrivacyRule {
            conditions: Conditions {
                sensors: chans(&["ecg"]),
                ..Default::default()
            },
            action: Action::Allow,
        };
        let d = evaluate(
            &[allow_ecg_only],
            &bob(),
            &window_at_ucla(),
            &chans(&["ecg", "accel_mag"]),
            &graph(),
        );
        assert!(d.allowed.contains(&ChannelId::new("ecg")));
        assert!(d.denied.contains(&ChannelId::new("accel_mag")));
    }

    #[test]
    fn location_label_condition() {
        let allow_at_ucla = PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec!["UCLA".into()],
                    regions: vec![],
                }),
                ..Default::default()
            },
            action: Action::Allow,
        };
        let d_here = evaluate(
            std::slice::from_ref(&allow_at_ucla),
            &bob(),
            &window_at_ucla(),
            &chans(&["ecg"]),
            &graph(),
        );
        assert_eq!(d_here.allowed.len(), 1);
        let mut elsewhere = window_at_ucla();
        elsewhere.location_labels = vec!["home".into()];
        let d_away = evaluate(
            &[allow_at_ucla],
            &bob(),
            &elsewhere,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d_away.allowed.is_empty());
    }

    #[test]
    fn region_condition_uses_gps() {
        let region = Region::around(GeoPoint::ucla(), 0.01);
        let deny_in_region = PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec![],
                    regions: vec![region],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        };
        let rules = [allow_rule("Bob"), deny_in_region];
        let inside = window_at_ucla();
        let d_in = evaluate(&rules, &bob(), &inside, &chans(&["ecg"]), &graph());
        assert!(d_in.allowed.is_empty());
        let mut outside = window_at_ucla();
        outside.location = Some(GeoPoint::new(40.0, -100.0));
        outside.location_labels.clear();
        let d_out = evaluate(&rules, &bob(), &outside, &chans(&["ecg"]), &graph());
        assert_eq!(d_out.allowed.len(), 1);
    }

    #[test]
    fn unknown_location_is_conservative_for_deny_only() {
        let region = Region::around(GeoPoint::ucla(), 0.01);
        let deny_in_region = PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec![],
                    regions: vec![region],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        };
        let allow_in_region = PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec![],
                    regions: vec![region],
                }),
                ..Default::default()
            },
            action: Action::Allow,
        };
        let mut no_fix = window_at_ucla();
        no_fix.location = None;
        no_fix.location_labels.clear();
        // The deny rule conservatively applies without a fix.
        let d = evaluate(
            &[allow_rule("Bob"), deny_in_region],
            &bob(),
            &no_fix,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d.allowed.is_empty());
        // The allow rule needs positive evidence, so nothing is shared.
        let d2 = evaluate(
            &[allow_in_region],
            &bob(),
            &no_fix,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d2.allowed.is_empty());
    }

    #[test]
    fn time_conditions() {
        let jan_2011 = TimeRange::new(
            Timestamp::from_civil(2011, 1, 1),
            Timestamp::from_civil(2011, 2, 1),
        );
        let allow_in_jan = PrivacyRule {
            conditions: Conditions {
                time: Some(TimeCondition {
                    ranges: vec![jan_2011],
                    repeats: vec![],
                }),
                ..Default::default()
            },
            action: Action::Allow,
        };
        let mut in_jan = window_at_ucla();
        in_jan.time = Timestamp::from_civil(2011, 1, 15);
        let d = evaluate(
            std::slice::from_ref(&allow_in_jan),
            &bob(),
            &in_jan,
            &chans(&["ecg"]),
            &graph(),
        );
        assert_eq!(d.allowed.len(), 1);
        let mut in_july = window_at_ucla();
        in_july.time = Timestamp::from_civil(2011, 7, 15);
        let d2 = evaluate(
            &[allow_in_jan],
            &bob(),
            &in_july,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d2.allowed.is_empty());
    }

    use sensorsafe_types::TimeRange;

    #[test]
    fn context_condition_active() {
        // "don't share any data while I am driving"
        let deny_driving = PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Drive],
                ..Default::default()
            },
            action: Action::Deny,
        };
        let rules = [allow_rule("Bob"), deny_driving];
        let mut driving = window_at_ucla();
        driving.contexts = vec![ContextState::on(ContextKind::Drive)];
        let d = evaluate(&rules, &bob(), &driving, &chans(&["ecg"]), &graph());
        assert!(d.allowed.is_empty());
        let mut walking = window_at_ucla();
        walking.contexts = vec![
            ContextState::off(ContextKind::Drive),
            ContextState::on(ContextKind::Walk),
        ];
        let d2 = evaluate(&rules, &bob(), &walking, &chans(&["ecg"]), &graph());
        assert_eq!(d2.allowed.len(), 1);
    }

    #[test]
    fn active_mode_implies_other_modes_inactive() {
        // "deny while driving" must not fire during a window annotated
        // only with Walk (transport modes are mutually exclusive).
        let deny_driving = PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Drive],
                ..Default::default()
            },
            action: Action::Deny,
        };
        let mut walking = window_at_ucla();
        walking.contexts = vec![ContextState::on(ContextKind::Walk)];
        let d = evaluate(
            &[allow_rule("Bob"), deny_driving.clone()],
            &bob(),
            &walking,
            &chans(&["ecg"]),
            &graph(),
        );
        assert_eq!(d.allowed.len(), 1);
        // But a non-mode context (Stress) stays unknown and conservative.
        let deny_stressed = PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Stress],
                ..Default::default()
            },
            action: Action::Deny,
        };
        let d2 = evaluate(
            &[allow_rule("Bob"), deny_stressed],
            &bob(),
            &walking,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d2.allowed.is_empty());
    }

    #[test]
    fn unknown_context_is_conservative_for_deny() {
        let deny_driving = PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Drive],
                ..Default::default()
            },
            action: Action::Deny,
        };
        let mut unannotated = window_at_ucla();
        unannotated.contexts.clear();
        let d = evaluate(
            &[allow_rule("Bob"), deny_driving],
            &bob(),
            &unannotated,
            &chans(&["ecg"]),
            &graph(),
        );
        assert!(d.allowed.is_empty());
    }

    #[test]
    fn abstraction_levels_combine_most_restrictive() {
        let abs1 = PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Abstraction(AbstractionSpec {
                location: Some(LocationAbs::Zipcode),
                time: Some(TimeAbs::Day),
                ..Default::default()
            }),
        };
        let abs2 = PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Abstraction(AbstractionSpec {
                location: Some(LocationAbs::State),
                time: Some(TimeAbs::Hour),
                ..Default::default()
            }),
        };
        let d = evaluate(
            &[allow_rule("Bob"), abs1, abs2],
            &bob(),
            &window_at_ucla(),
            &chans(&["skin_temp"]),
            &graph(),
        );
        assert_eq!(d.location, LocationAbs::State);
        assert_eq!(d.time, TimeAbs::Day);
        assert!(d.allowed.contains(&ChannelId::new("skin_temp")));
        // Abstraction alone grants nothing (access needs an Allow).
        let abs_only = evaluate(
            &[PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    location: Some(LocationAbs::City),
                    ..Default::default()
                }),
            }],
            &bob(),
            &window_at_ucla(),
            &chans(&["skin_temp"]),
            &graph(),
        );
        assert!(abs_only.allowed.is_empty());
    }

    #[test]
    fn dependency_closure_suppresses_raw_respiration() {
        // Share everything, but smoking only as a label: raw respiration
        // must be suppressed even though stress is raw.
        let rules = [
            allow_rule("Bob"),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    smoking: Some(BinaryAbs::Label),
                    ..Default::default()
                }),
            },
        ];
        let d = evaluate(
            &rules,
            &bob(),
            &window_at_ucla(),
            &chans(&[CHAN_ECG, CHAN_RESPIRATION, CHAN_ACCEL_MAG]),
            &graph(),
        );
        assert!(d.suppressed.contains(&ChannelId::new(CHAN_RESPIRATION)));
        assert!(!d.suppressed.contains(&ChannelId::new(CHAN_ECG)));
        let raw: Vec<&str> = d.raw_channels().map(|c| c.as_str()).collect();
        assert_eq!(raw, ["accel_mag", "ecg"]);
        assert!(!d.shares_nothing());
    }

    #[test]
    fn fully_withheld_contexts_share_nothing_from_sources() {
        let rules = [
            allow_rule("Bob"),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    stress: Some(BinaryAbs::NotShared),
                    smoking: Some(BinaryAbs::NotShared),
                    conversation: Some(BinaryAbs::NotShared),
                    activity: Some(ActivityAbs::NotShared),
                    ..Default::default()
                }),
            },
        ];
        let d = evaluate(
            &rules,
            &bob(),
            &window_at_ucla(),
            &chans(&[CHAN_ECG, CHAN_RESPIRATION, CHAN_ACCEL_MAG]),
            &graph(),
        );
        // Every channel is a source of some withheld context.
        assert_eq!(d.suppressed.len(), 3);
        assert!(d.shares_nothing());
    }

    #[test]
    fn label_sharing_is_not_nothing() {
        let rules = [
            allow_rule("Bob"),
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    stress: Some(BinaryAbs::Label),
                    ..Default::default()
                }),
            },
        ];
        let d = evaluate(
            &rules,
            &bob(),
            &window_at_ucla(),
            &chans(&[CHAN_ECG]),
            &graph(),
        );
        // ECG raw is suppressed, but the stress label is shared.
        assert!(d.suppressed.contains(&ChannelId::new(CHAN_ECG)));
        assert!(!d.shares_nothing());
    }

    #[test]
    fn evaluation_is_order_independent() {
        let rules_a = [
            allow_rule("Bob"),
            PrivacyRule {
                conditions: Conditions {
                    sensors: chans(&["ecg"]),
                    ..Default::default()
                },
                action: Action::Deny,
            },
            PrivacyRule {
                conditions: Conditions::default(),
                action: Action::Abstraction(AbstractionSpec {
                    time: Some(TimeAbs::Hour),
                    ..Default::default()
                }),
            },
        ];
        let mut rules_b = rules_a.clone();
        rules_b.reverse();
        let all = chans(&["ecg", "respiration", "skin_temp"]);
        let d_a = evaluate(&rules_a, &bob(), &window_at_ucla(), &all, &graph());
        let d_b = evaluate(&rules_b, &bob(), &window_at_ucla(), &all, &graph());
        assert_eq!(d_a, d_b);
    }
}
