//! The privacy-rule model and its JSON codec (Fig. 4).
//!
//! A rule couples [`Conditions`] — all of which must hold for the rule to
//! apply — with an [`Action`]. Conditions left unspecified match
//! everything, so `{"Action": "Deny"}` is a blanket deny and the Fig. 4
//! rule `{"Consumer": ["Bob"], "LocationLabel": ["UCLA"], "Action":
//! "Allow"}` shares all data collected at UCLA with Bob.

use crate::abstraction::{ActivityAbs, BinaryAbs, LocationAbs, TimeAbs};
use sensorsafe_json::{Map, Parser, Value};
use sensorsafe_types::{
    ChannelId, ConsumerId, ContextKind, GroupId, Region, RepeatTime, StudyId, TimeOfDay, TimeRange,
    Timestamp, Weekday,
};

/// Who a rule's consumer condition selects (Table 1: "User Name, Group
/// Name, Study Name").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConsumerSelector {
    /// A single consumer by unique user name.
    User(ConsumerId),
    /// Every member of a named group.
    Group(GroupId),
    /// Every consumer enrolled in a named study.
    Study(StudyId),
}

/// Location condition: matches if the window's location carries one of
/// the labels **or** falls inside one of the regions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocationCondition {
    /// Pre-defined labels ("UCLA", "home", "work").
    pub labels: Vec<String>,
    /// Map-drawn bounding boxes.
    pub regions: Vec<Region>,
}

impl LocationCondition {
    /// True if no label and no region is given (matches nothing — an
    /// empty condition should be `None` at the [`Conditions`] level).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty() && self.regions.is_empty()
    }
}

/// Time condition: matches if the instant is inside any range **or** any
/// repeated window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeCondition {
    /// Continuous ranges ("from Feb. 2011 to Mar. 2011").
    pub ranges: Vec<TimeRange>,
    /// Repeated windows ("3-6pm on every Wednesday").
    pub repeats: Vec<RepeatTime>,
}

impl TimeCondition {
    /// True if no range and no repeat is given.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty() && self.repeats.is_empty()
    }

    /// Whether the instant satisfies the condition.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.ranges.iter().any(|r| r.contains(t)) || self.repeats.iter().any(|r| r.contains(t))
    }
}

/// All conditions of one privacy rule. Unspecified (empty/`None`) parts
/// match everything.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conditions {
    /// Affected consumers; empty = all consumers.
    pub consumers: Vec<ConsumerSelector>,
    /// Where the data was collected; `None` = anywhere.
    pub location: Option<LocationCondition>,
    /// When the data was collected; `None` = any time.
    pub time: Option<TimeCondition>,
    /// Which sensor channels the action applies to; empty = all channels.
    pub sensors: Vec<ChannelId>,
    /// Behavioral contexts during which the rule applies ("while I am
    /// driving"); empty = regardless of context.
    pub contexts: Vec<ContextKind>,
}

/// Per-ladder levels set by an abstraction action (Table 1b). `None`
/// leaves a ladder untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbstractionSpec {
    /// Location ladder level.
    pub location: Option<LocationAbs>,
    /// Time ladder level.
    pub time: Option<TimeAbs>,
    /// Activity ladder level.
    pub activity: Option<ActivityAbs>,
    /// Stress ladder level.
    pub stress: Option<BinaryAbs>,
    /// Smoking ladder level.
    pub smoking: Option<BinaryAbs>,
    /// Conversation ladder level.
    pub conversation: Option<BinaryAbs>,
}

impl AbstractionSpec {
    /// True if the spec sets no level at all (such an action is invalid).
    pub fn is_empty(&self) -> bool {
        self.location.is_none()
            && self.time.is_none()
            && self.activity.is_none()
            && self.stress.is_none()
            && self.smoking.is_none()
            && self.conversation.is_none()
    }
}

/// What a rule does when its conditions match.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Share raw data.
    Allow,
    /// Share nothing.
    Deny,
    /// Share, but at coarser abstraction levels.
    Abstraction(AbstractionSpec),
}

/// One privacy rule.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyRule {
    /// When the rule applies.
    pub conditions: Conditions,
    /// What it does.
    pub action: Action,
}

/// Errors decoding rules from JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleError(pub String);

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid privacy rule: {}", self.0)
    }
}

impl std::error::Error for RuleError {}

fn err(msg: impl Into<String>) -> RuleError {
    RuleError(msg.into())
}

impl PrivacyRule {
    /// A blanket allow-everything rule (used by §6's Alice: "allows the
    /// researchers to access all the data" is this with a consumer
    /// condition).
    pub fn allow_all() -> PrivacyRule {
        PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Allow,
        }
    }

    /// Serializes one rule to its Fig. 4 JSON object.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        let c = &self.conditions;
        let mut users = Vec::new();
        let mut groups = Vec::new();
        let mut studies = Vec::new();
        for sel in &c.consumers {
            match sel {
                ConsumerSelector::User(u) => users.push(Value::from(u.as_str())),
                ConsumerSelector::Group(g) => groups.push(Value::from(g.as_str())),
                ConsumerSelector::Study(s) => studies.push(Value::from(s.as_str())),
            }
        }
        if !users.is_empty() {
            obj.insert("Consumer".into(), Value::Array(users));
        }
        if !groups.is_empty() {
            obj.insert("Group".into(), Value::Array(groups));
        }
        if !studies.is_empty() {
            obj.insert("Study".into(), Value::Array(studies));
        }
        if let Some(loc) = &c.location {
            if !loc.labels.is_empty() {
                obj.insert(
                    "LocationLabel".into(),
                    Value::Array(loc.labels.iter().map(Value::from).collect()),
                );
            }
            if !loc.regions.is_empty() {
                obj.insert(
                    "Region".into(),
                    Value::Array(
                        loc.regions
                            .iter()
                            .map(|r| {
                                let mut m = Map::new();
                                m.insert("south".into(), Value::from(r.south));
                                m.insert("north".into(), Value::from(r.north));
                                m.insert("west".into(), Value::from(r.west));
                                m.insert("east".into(), Value::from(r.east));
                                Value::Object(m)
                            })
                            .collect(),
                    ),
                );
            }
        }
        if let Some(time) = &c.time {
            if !time.ranges.is_empty() {
                obj.insert(
                    "TimeRange".into(),
                    Value::Array(
                        time.ranges
                            .iter()
                            .map(|r| {
                                let mut m = Map::new();
                                m.insert("start".into(), Value::from(r.start.millis()));
                                m.insert("end".into(), Value::from(r.end.millis()));
                                Value::Object(m)
                            })
                            .collect(),
                    ),
                );
            }
            for rep in &time.repeats {
                // Fig. 4 shows a single RepeatTime object per rule; we
                // serialize the first and inline extras as an array when
                // needed.
                let mut m = Map::new();
                if !rep.days.is_empty() {
                    m.insert(
                        "Day".into(),
                        Value::Array(rep.days.iter().map(|d| Value::from(d.as_str())).collect()),
                    );
                }
                m.insert(
                    "HourMin".into(),
                    Value::Array(vec![
                        Value::from(rep.from.to_wire()),
                        Value::from(rep.to.to_wire()),
                    ]),
                );
                match obj.get_mut("RepeatTime") {
                    None => {
                        obj.insert("RepeatTime".into(), Value::Object(m));
                    }
                    Some(existing) => {
                        // Promote to an array on the second repeat.
                        let prev = std::mem::take(existing);
                        let mut arr = match prev {
                            Value::Array(a) => a,
                            single => vec![single],
                        };
                        arr.push(Value::Object(m));
                        *existing = Value::Array(arr);
                    }
                }
            }
        }
        if !c.sensors.is_empty() {
            obj.insert(
                "Sensor".into(),
                Value::Array(c.sensors.iter().map(|s| Value::from(s.as_str())).collect()),
            );
        }
        if !c.contexts.is_empty() {
            obj.insert(
                "Context".into(),
                Value::Array(c.contexts.iter().map(|k| Value::from(k.as_str())).collect()),
            );
        }
        obj.insert(
            "Action".into(),
            match &self.action {
                Action::Allow => Value::from("Allow"),
                Action::Deny => Value::from("Deny"),
                Action::Abstraction(spec) => {
                    let mut abs = Map::new();
                    if let Some(l) = spec.location {
                        abs.insert("Location".into(), Value::from(l.as_str()));
                    }
                    if let Some(t) = spec.time {
                        abs.insert("Time".into(), Value::from(t.as_str()));
                    }
                    if let Some(a) = spec.activity {
                        abs.insert("Activity".into(), Value::from(a.as_str()));
                    }
                    if let Some(s) = spec.stress {
                        abs.insert("Stress".into(), Value::from(s.as_str()));
                    }
                    if let Some(s) = spec.smoking {
                        abs.insert("Smoking".into(), Value::from(s.as_str()));
                    }
                    if let Some(s) = spec.conversation {
                        abs.insert("Conversation".into(), Value::from(s.as_str()));
                    }
                    let mut outer = Map::new();
                    outer.insert("Abstraction".into(), Value::Object(abs));
                    Value::Object(outer)
                }
            },
        );
        Value::Object(obj)
    }

    /// Decodes one rule from its JSON object form.
    pub fn from_json(value: &Value) -> Result<PrivacyRule, RuleError> {
        let obj = value
            .as_object()
            .ok_or_else(|| err("rule must be a JSON object"))?;
        // Reject unknown keys early: a typo'd condition silently matching
        // everything would be a privacy bug.
        const KNOWN: [&str; 10] = [
            "Consumer",
            "Group",
            "Study",
            "LocationLabel",
            "Region",
            "TimeRange",
            "RepeatTime",
            "Sensor",
            "Context",
            "Action",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(err(format!("unknown rule key '{key}'")));
            }
        }
        let mut consumers = Vec::new();
        if let Some(v) = obj.get("Consumer") {
            for name in v
                .as_string_list()
                .ok_or_else(|| err("Consumer must be a string or string array"))?
            {
                consumers.push(ConsumerSelector::User(ConsumerId::new(name)));
            }
        }
        if let Some(v) = obj.get("Group") {
            for name in v
                .as_string_list()
                .ok_or_else(|| err("Group must be a string or string array"))?
            {
                consumers.push(ConsumerSelector::Group(GroupId::new(name)));
            }
        }
        if let Some(v) = obj.get("Study") {
            for name in v
                .as_string_list()
                .ok_or_else(|| err("Study must be a string or string array"))?
            {
                consumers.push(ConsumerSelector::Study(StudyId::new(name)));
            }
        }
        let mut location = LocationCondition::default();
        if let Some(v) = obj.get("LocationLabel") {
            location.labels = v
                .as_string_list()
                .ok_or_else(|| err("LocationLabel must be a string or string array"))?;
        }
        if let Some(v) = obj.get("Region") {
            let items = v.as_array().ok_or_else(|| err("Region must be an array"))?;
            for item in items {
                let get = |k: &str| {
                    item.get(k)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| err(format!("Region missing '{k}'")))
                };
                let (south, north) = (get("south")?, get("north")?);
                if south > north {
                    return Err(err("Region south edge above north edge"));
                }
                location
                    .regions
                    .push(Region::new(south, north, get("west")?, get("east")?));
            }
        }
        let mut time = TimeCondition::default();
        if let Some(v) = obj.get("TimeRange") {
            let items = v
                .as_array()
                .ok_or_else(|| err("TimeRange must be an array"))?;
            for item in items {
                let start = item
                    .get("start")
                    .and_then(Value::as_i64)
                    .ok_or_else(|| err("TimeRange missing 'start'"))?;
                let end = item
                    .get("end")
                    .and_then(Value::as_i64)
                    .ok_or_else(|| err("TimeRange missing 'end'"))?;
                if end < start {
                    return Err(err("TimeRange end before start"));
                }
                time.ranges.push(TimeRange::new(
                    Timestamp::from_millis(start),
                    Timestamp::from_millis(end),
                ));
            }
        }
        if let Some(v) = obj.get("RepeatTime") {
            let entries: Vec<&Value> = match v {
                Value::Array(a) => a.iter().collect(),
                other => vec![other],
            };
            for entry in entries {
                time.repeats.push(parse_repeat(entry)?);
            }
        }
        let mut sensors = Vec::new();
        if let Some(v) = obj.get("Sensor") {
            for name in v
                .as_string_list()
                .ok_or_else(|| err("Sensor must be a string or string array"))?
            {
                sensors.push(
                    ChannelId::try_new(name).ok_or_else(|| err("invalid sensor channel name"))?,
                );
            }
        }
        let mut contexts = Vec::new();
        if let Some(v) = obj.get("Context") {
            for name in v
                .as_string_list()
                .ok_or_else(|| err("Context must be a string or string array"))?
            {
                contexts.push(
                    ContextKind::parse(&name)
                        .ok_or_else(|| err(format!("unknown context '{name}'")))?,
                );
            }
        }
        let action_json = obj
            .get("Action")
            .ok_or_else(|| err("rule missing 'Action'"))?;
        let action = parse_action(action_json)?;
        Ok(PrivacyRule {
            conditions: Conditions {
                consumers,
                location: (!location.is_empty()).then_some(location),
                time: (!time.is_empty()).then_some(time),
                sensors,
                contexts,
            },
            action,
        })
    }

    /// Parses a whole rule document: a JSON array of rules (Fig. 4) or a
    /// single rule object. Accepts the paper's single-quoted style.
    pub fn parse_rules(text: &str) -> Result<Vec<PrivacyRule>, RuleError> {
        let value = Parser::lenient(text)
            .parse_document()
            .map_err(|e| err(format!("JSON: {e}")))?;
        match &value {
            Value::Array(items) => items.iter().map(PrivacyRule::from_json).collect(),
            Value::Object(_) => Ok(vec![PrivacyRule::from_json(&value)?]),
            _ => Err(err("rule document must be an object or array")),
        }
    }

    /// Serializes a rule list to a JSON array.
    pub fn rules_to_json(rules: &[PrivacyRule]) -> Value {
        Value::Array(rules.iter().map(PrivacyRule::to_json).collect())
    }
}

fn parse_repeat(entry: &Value) -> Result<RepeatTime, RuleError> {
    let days = match entry.get("Day") {
        None => Vec::new(),
        Some(v) => v
            .as_string_list()
            .ok_or_else(|| err("RepeatTime.Day must be a string array"))?
            .iter()
            .map(|d| Weekday::parse(d).ok_or_else(|| err(format!("unknown weekday '{d}'"))))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let hours = entry
        .get("HourMin")
        .and_then(Value::as_array)
        .ok_or_else(|| err("RepeatTime missing 'HourMin'"))?;
    if hours.len() != 2 {
        return Err(err("RepeatTime.HourMin must have exactly two entries"));
    }
    let parse_tod = |v: &Value| {
        v.as_str()
            .and_then(TimeOfDay::parse)
            .ok_or_else(|| err("invalid HourMin time"))
    };
    Ok(RepeatTime::new(
        days,
        parse_tod(&hours[0])?,
        parse_tod(&hours[1])?,
    ))
}

fn parse_action(v: &Value) -> Result<Action, RuleError> {
    match v {
        Value::String(s) if s == "Allow" => Ok(Action::Allow),
        Value::String(s) if s == "Deny" => Ok(Action::Deny),
        Value::String(s) => Err(err(format!("unknown action '{s}'"))),
        Value::Object(obj) => {
            let abs = obj
                .get("Abstraction")
                .and_then(Value::as_object)
                .ok_or_else(|| err("object action must be {'Abstraction': {...}}"))?;
            let mut spec = AbstractionSpec::default();
            for (key, level) in abs.iter() {
                let name = level
                    .as_str()
                    .ok_or_else(|| err("abstraction level must be a string"))?;
                // Table 1(b) writes "NotShared" / context-specific label
                // names; normalize the aliases the paper uses.
                match key.as_str() {
                    "Location" => {
                        spec.location = Some(
                            LocationAbs::parse(name)
                                .ok_or_else(|| err(format!("bad Location level '{name}'")))?,
                        )
                    }
                    "Time" => {
                        spec.time = Some(
                            TimeAbs::parse(name)
                                .ok_or_else(|| err(format!("bad Time level '{name}'")))?,
                        )
                    }
                    "Activity" => {
                        spec.activity = Some(
                            ActivityAbs::parse(name)
                                .ok_or_else(|| err(format!("bad Activity level '{name}'")))?,
                        )
                    }
                    "Stress" => {
                        spec.stress = Some(parse_binary_level(name, "Stress")?);
                    }
                    "Smoking" | "Smoke" => {
                        spec.smoking = Some(parse_binary_level(name, "Smoking")?);
                    }
                    "Conversation" => {
                        spec.conversation = Some(parse_binary_level(name, "Conversation")?);
                    }
                    other => return Err(err(format!("unknown abstraction target '{other}'"))),
                }
            }
            if spec.is_empty() {
                return Err(err("abstraction action sets no level"));
            }
            Ok(Action::Abstraction(spec))
        }
        _ => Err(err("action must be a string or object")),
    }
}

fn parse_binary_level(name: &str, target: &str) -> Result<BinaryAbs, RuleError> {
    BinaryAbs::parse(name).ok_or_else(|| err(format!("bad {target} level '{name}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact rule document from the paper's Fig. 4.
    pub const FIG4: &str = r#"[{ 'Consumer': ['Bob'],
 'LocationLabel': ['UCLA'],
 'Action': 'Allow'
},
{ 'Consumer': ['Bob'],
 'LocationLabel': ['UCLA'],
 'RepeatTime': { 'Day': ['Mon', 'Tue', 'Wed', 'Thu', 'Fri'],
 'HourMin': ['9:00am', '6:00pm']},
 'Context': ['Conversation'],
 'Action': { 'Abstraction': { 'Stress': 'NotShared' } }
}]"#;

    #[test]
    fn fig4_parses_verbatim() {
        let rules = PrivacyRule::parse_rules(FIG4).unwrap();
        assert_eq!(rules.len(), 2);
        let first = &rules[0];
        assert_eq!(
            first.conditions.consumers,
            vec![ConsumerSelector::User(ConsumerId::new("Bob"))]
        );
        assert_eq!(
            first.conditions.location.as_ref().unwrap().labels,
            vec!["UCLA"]
        );
        assert_eq!(first.action, Action::Allow);
        let second = &rules[1];
        let repeat = &second.conditions.time.as_ref().unwrap().repeats[0];
        assert_eq!(repeat.days, Weekday::WORKDAYS.to_vec());
        assert_eq!(repeat.from, TimeOfDay::new(9, 0));
        assert_eq!(repeat.to, TimeOfDay::new(18, 0));
        assert_eq!(second.conditions.contexts, vec![ContextKind::Conversation]);
        assert_eq!(
            second.action,
            Action::Abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::NotShared),
                ..Default::default()
            })
        );
    }

    #[test]
    fn roundtrip_fig4() {
        let rules = PrivacyRule::parse_rules(FIG4).unwrap();
        let json = PrivacyRule::rules_to_json(&rules);
        let back = PrivacyRule::parse_rules(&json.to_string()).unwrap();
        assert_eq!(back, rules);
    }

    #[test]
    fn roundtrip_every_condition_kind() {
        let rule = PrivacyRule {
            conditions: Conditions {
                consumers: vec![
                    ConsumerSelector::User(ConsumerId::new("bob")),
                    ConsumerSelector::Group(GroupId::new("researchers")),
                    ConsumerSelector::Study(StudyId::new("stress-study")),
                ],
                location: Some(LocationCondition {
                    labels: vec!["home".into()],
                    regions: vec![Region::new(34.0, 34.1, -118.5, -118.4)],
                }),
                time: Some(TimeCondition {
                    ranges: vec![TimeRange::new(Timestamp(1000), Timestamp(2000))],
                    repeats: vec![
                        RepeatTime::weekdays_nine_to_six(),
                        RepeatTime::new(
                            vec![Weekday::Sat],
                            TimeOfDay::new(1, 0),
                            TimeOfDay::new(2, 0),
                        ),
                    ],
                }),
                sensors: vec![ChannelId::new("ecg"), ChannelId::new("respiration")],
                contexts: vec![ContextKind::Drive, ContextKind::Stress],
            },
            action: Action::Abstraction(AbstractionSpec {
                location: Some(LocationAbs::City),
                time: Some(TimeAbs::Day),
                activity: Some(ActivityAbs::MoveNotMove),
                stress: Some(BinaryAbs::Label),
                smoking: Some(BinaryAbs::NotShared),
                conversation: Some(BinaryAbs::Raw),
            }),
        };
        let json = rule.to_json();
        let back = PrivacyRule::from_json(&json).unwrap();
        assert_eq!(back, rule);
    }

    #[test]
    fn single_object_document() {
        let rules = PrivacyRule::parse_rules(r#"{"Action": "Deny"}"#).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].action, Action::Deny);
        assert!(rules[0].conditions.consumers.is_empty());
    }

    #[test]
    fn scalar_consumer_accepted() {
        let rules = PrivacyRule::parse_rules(r#"{"Consumer": "Bob", "Action": "Allow"}"#).unwrap();
        assert_eq!(
            rules[0].conditions.consumers,
            vec![ConsumerSelector::User(ConsumerId::new("Bob"))]
        );
    }

    #[test]
    fn rejects_unknown_keys() {
        let e =
            PrivacyRule::parse_rules(r#"{"Consmuer": ["Bob"], "Action": "Allow"}"#).unwrap_err();
        assert!(e.0.contains("Consmuer"), "{e}");
    }

    #[test]
    fn rejects_missing_action() {
        assert!(PrivacyRule::parse_rules(r#"{"Consumer": ["Bob"]}"#).is_err());
    }

    #[test]
    fn rejects_bad_action() {
        assert!(PrivacyRule::parse_rules(r#"{"Action": "Maybe"}"#).is_err());
        assert!(PrivacyRule::parse_rules(r#"{"Action": {"Abstraction": {}}}"#).is_err());
        assert!(PrivacyRule::parse_rules(r#"{"Action": 42}"#).is_err());
        assert!(
            PrivacyRule::parse_rules(r#"{"Action": {"Abstraction": {"Stress": "Loud"}}}"#).is_err()
        );
        assert!(
            PrivacyRule::parse_rules(r#"{"Action": {"Abstraction": {"Blood": "Raw"}}}"#).is_err()
        );
    }

    #[test]
    fn rejects_bad_conditions() {
        assert!(PrivacyRule::parse_rules(r#"{"Context": ["Flying"], "Action": "Deny"}"#).is_err());
        assert!(PrivacyRule::parse_rules(
            r#"{"RepeatTime": {"HourMin": ["9:00am"]}, "Action": "Deny"}"#
        )
        .is_err());
        assert!(PrivacyRule::parse_rules(
            r#"{"RepeatTime": {"Day": ["Monday"], "HourMin": ["9:00am","5:00pm"]}, "Action": "Deny"}"#
        )
        .is_err());
        assert!(PrivacyRule::parse_rules(
            r#"{"TimeRange": [{"start": 100, "end": 50}], "Action": "Deny"}"#
        )
        .is_err());
        assert!(PrivacyRule::parse_rules(
            r#"{"Region": [{"south": 2.0, "north": 1.0, "west": 0.0, "east": 1.0}], "Action": "Deny"}"#
        )
        .is_err());
        assert!(PrivacyRule::parse_rules(r#"{"Consumer": [5], "Action": "Deny"}"#).is_err());
    }

    #[test]
    fn smoke_alias_for_smoking_target() {
        let rules =
            PrivacyRule::parse_rules(r#"{"Action": {"Abstraction": {"Smoke": "NotShared"}}}"#)
                .unwrap();
        assert_eq!(
            rules[0].action,
            Action::Abstraction(AbstractionSpec {
                smoking: Some(BinaryAbs::NotShared),
                ..Default::default()
            })
        );
    }

    #[test]
    fn multiple_repeats_roundtrip_as_array() {
        let rule = PrivacyRule {
            conditions: Conditions {
                time: Some(TimeCondition {
                    ranges: vec![],
                    repeats: vec![
                        RepeatTime::new(
                            vec![Weekday::Mon],
                            TimeOfDay::new(9, 0),
                            TimeOfDay::new(10, 0),
                        ),
                        RepeatTime::new(
                            vec![Weekday::Tue],
                            TimeOfDay::new(14, 0),
                            TimeOfDay::new(15, 0),
                        ),
                    ],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        };
        let back = PrivacyRule::from_json(&rule.to_json()).unwrap();
        assert_eq!(back, rule);
    }

    #[test]
    fn allow_all_is_minimal() {
        let rule = PrivacyRule::allow_all();
        let json = rule.to_json();
        assert_eq!(json.to_string(), r#"{"Action":"Allow"}"#);
    }
}
