//! Context-aware fine-grained access control — the core contribution of
//! the SensorSafe paper (§5.1, Table 1, Fig. 4).
//!
//! Data contributors express privacy preferences as a list of
//! [`PrivacyRule`]s. Each rule has **conditions** (who is asking, where
//! the data was collected, when, which sensor channels, and what
//! behavioral context the contributor was in) and an **action** (allow,
//! deny, or share at a coarser *abstraction level*, Table 1b). The
//! evaluation engine resolves all matching rules into a per-window
//! [`Decision`] with *most-restrictive-wins* semantics and a deny-by-
//! default baseline, then the enforcement layer rewrites wave segments
//! accordingly — including the paper's sensor/context **dependency
//! closure**: raw sensor data is suppressed whenever *any* context
//! inferable from that sensor is not shared raw (e.g. withholding Smoking
//! suppresses raw respiration even if Stress is shared raw).
//!
//! # Module map
//!
//! * [`abstraction`] — Table 1(b) abstraction ladders and the synthetic
//!   geocoder that realizes the location ladder offline.
//! * [`rule`] — rule model plus the Fig. 4 JSON codec.
//! * [`deps`] — the sensor↔context dependency graph and its closure.
//! * [`eval`] — condition matching and decision resolution.
//! * [`enforce`](mod@enforce) — applying decisions to wave segments and annotations.
//! * [`index`] — searchable rule summaries for the broker's contributor
//!   search (§5.2).

pub mod abstraction;
pub mod compile;
pub mod deps;
pub mod enforce;
pub mod eval;
pub mod index;
pub mod rule;

pub use abstraction::{synthetic_geocode, ActivityAbs, Address, BinaryAbs, LocationAbs, TimeAbs};
pub use compile::CompiledRules;
pub use deps::DependencyGraph;
pub use enforce::{enforce, ContextLabel, SharedLocation, SharedSegment};
pub use eval::{evaluate, ConsumerCtx, Decision, WindowCtx};
pub use index::{RuleIndex, RuleSnapshot, SearchQuery};
pub use rule::{
    AbstractionSpec, Action, Conditions, ConsumerSelector, LocationCondition, PrivacyRule,
    RuleError, TimeCondition,
};
