//! Abstraction ladders (Table 1b) and the synthetic geocoder.
//!
//! Each ladder orders sharing levels from most revealing to fully
//! withheld. The numeric `rank` of a level orders restrictiveness; the
//! evaluation engine combines multiple matching abstraction rules by
//! taking the **maximum** rank (most restrictive wins).
//!
//! | Ladder | Levels (most → least revealing) |
//! |---|---|
//! | Location | Coordinates, Street Address, Zipcode, City, State, Country, Not Share |
//! | Time | Milliseconds, Hour, Day, Month, Year, Not Share |
//! | Activity | Accelerometer Data, Still/Walk/Run/Bike/Drive, Move/Not Move, Not Share |
//! | Stress | ECG/Respiration Data, Stressed/Not Stressed, Not Share |
//! | Smoking | Respiration Data, Smoking/Not Smoking, Not Share |
//! | Conversation | Microphone/Respiration Data, Conversation/Not, Not Share |

use sensorsafe_types::{GeoPoint, Timestamp};

/// Location sharing levels (Table 1b row "Location").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum LocationAbs {
    /// Full coordinates.
    #[default]
    Coordinates,
    /// Street address (synthetic-geocoded).
    StreetAddress,
    /// Zip code.
    Zipcode,
    /// City name.
    City,
    /// State name.
    State,
    /// Country name.
    Country,
    /// Location withheld entirely.
    NotShared,
}

/// Time sharing levels (Table 1b row "Time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum TimeAbs {
    /// Full millisecond timestamps.
    #[default]
    Milliseconds,
    /// Truncated to the hour.
    Hour,
    /// Truncated to the day.
    Day,
    /// Truncated to the month.
    Month,
    /// Truncated to the year.
    Year,
    /// Timestamps withheld (relative sample order only).
    NotShared,
}

/// Activity sharing levels (Table 1b row "Activity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ActivityAbs {
    /// Raw accelerometer data.
    #[default]
    Raw,
    /// Transportation mode labels: Still/Walk/Run/Bike/Drive.
    TransportMode,
    /// Binary moving / not-moving.
    MoveNotMove,
    /// No activity information.
    NotShared,
}

/// Sharing levels for the binary contexts (Stress, Smoking, Conversation;
/// Table 1b rows 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum BinaryAbs {
    /// Raw source-sensor data (e.g. ECG/respiration for stress).
    #[default]
    Raw,
    /// The binary label only (e.g. Stressed / Not Stressed).
    Label,
    /// Nothing.
    NotShared,
}

macro_rules! ladder_impl {
    ($ty:ident, $($variant:ident => $wire:literal),+ $(,)?) => {
        impl $ty {
            /// Restrictiveness rank; higher is more restrictive.
            pub fn rank(self) -> u8 {
                self as u8
            }

            /// Most restrictive of two levels.
            pub fn max_restrictive(self, other: Self) -> Self {
                if other.rank() > self.rank() { other } else { self }
            }

            /// Wire name used in rule JSON.
            pub fn as_str(self) -> &'static str {
                match self {
                    $( $ty::$variant => $wire, )+
                }
            }

            /// Parses a wire name.
            pub fn parse(s: &str) -> Option<Self> {
                match s {
                    $( $wire => Some($ty::$variant), )+
                    _ => None,
                }
            }
        }
    };
}

ladder_impl!(LocationAbs,
    Coordinates => "Coordinates",
    StreetAddress => "StreetAddress",
    Zipcode => "Zipcode",
    City => "City",
    State => "State",
    Country => "Country",
    NotShared => "NotShared",
);

ladder_impl!(TimeAbs,
    Milliseconds => "Milliseconds",
    Hour => "Hour",
    Day => "Day",
    Month => "Month",
    Year => "Year",
    NotShared => "NotShared",
);

ladder_impl!(ActivityAbs,
    Raw => "Raw",
    TransportMode => "TransportMode",
    MoveNotMove => "MoveNotMove",
    NotShared => "NotShared",
);

ladder_impl!(BinaryAbs,
    Raw => "Raw",
    Label => "Label",
    NotShared => "NotShared",
);

impl TimeAbs {
    /// Applies the ladder to a timestamp. `NotShared` callers must drop
    /// the timestamp instead; this returns it unchanged as a safe default
    /// for code paths that forget (tested).
    pub fn apply(self, t: Timestamp) -> Timestamp {
        const MS_PER_HOUR: i64 = 3_600_000;
        const MS_PER_DAY: i64 = 86_400_000;
        match self {
            TimeAbs::Milliseconds | TimeAbs::NotShared => t,
            TimeAbs::Hour => t.truncate_to(MS_PER_HOUR),
            TimeAbs::Day => t.truncate_to(MS_PER_DAY),
            TimeAbs::Month => t.start_of_month(),
            TimeAbs::Year => t.start_of_year(),
        }
    }
}

/// A synthetic street address, the offline stand-in for a reverse
/// geocoder (see DESIGN.md substitutions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// e.g. `"420 Grid Ave"`.
    pub street: String,
    /// Five-digit synthetic zip.
    pub zipcode: String,
    /// Synthetic city name, stable within ~0.1°.
    pub city: String,
    /// Synthetic state name, stable within ~1°.
    pub state: String,
    /// Country bucket, stable within ~10°.
    pub country: String,
}

/// Deterministic reverse geocoding on a lat/lon grid.
///
/// The paper abstracts coordinates to street address / zipcode / city /
/// state / country via a real geocoder; offline we derive stable textual
/// labels from grid cells of increasing size, preserving the property
/// that matters for privacy evaluation: **each ladder step is a strictly
/// coarser partition of space** (many streets per zip, many zips per
/// city, …).
pub fn synthetic_geocode(p: &GeoPoint) -> Address {
    // Grid cells: street 0.001° (~100 m), zip 0.01°, city 0.1°, state 1°,
    // country 10°.
    let cell = |deg: f64, size: f64| -> i64 { (deg / size).floor() as i64 };
    let street_cell = (cell(p.latitude, 0.001), cell(p.longitude, 0.001));
    let zip_cell = (cell(p.latitude, 0.01), cell(p.longitude, 0.01));
    let city_cell = (cell(p.latitude, 0.1), cell(p.longitude, 0.1));
    let state_cell = (cell(p.latitude, 1.0), cell(p.longitude, 1.0));
    let country_cell = (cell(p.latitude, 10.0), cell(p.longitude, 10.0));
    let mix =
        |a: i64, b: i64, m: i64| -> i64 { ((a * 73_856_093) ^ (b * 19_349_663)).rem_euclid(m) };
    Address {
        street: format!(
            "{} Grid Ave",
            mix(street_cell.0, street_cell.1, 9_900) + 100
        ),
        zipcode: format!("{:05}", mix(zip_cell.0, zip_cell.1, 100_000)),
        city: format!("City-{}", mix(city_cell.0, city_cell.1, 10_000)),
        state: format!("State-{}", mix(state_cell.0, state_cell.1, 100)),
        country: format!("Country-{}", mix(country_cell.0, country_cell.1, 50)),
    }
}

impl LocationAbs {
    /// Renders a point at this ladder level; `None` for `NotShared`.
    pub fn apply(self, p: &GeoPoint) -> Option<String> {
        let addr = synthetic_geocode(p);
        match self {
            LocationAbs::Coordinates => Some(format!("{:.6},{:.6}", p.latitude, p.longitude)),
            LocationAbs::StreetAddress => Some(addr.street),
            LocationAbs::Zipcode => Some(addr.zipcode),
            LocationAbs::City => Some(addr.city),
            LocationAbs::State => Some(addr.state),
            LocationAbs::Country => Some(addr.country),
            LocationAbs::NotShared => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered() {
        assert!(LocationAbs::NotShared.rank() > LocationAbs::City.rank());
        assert!(LocationAbs::City.rank() > LocationAbs::Coordinates.rank());
        assert!(TimeAbs::Year.rank() > TimeAbs::Hour.rank());
        assert!(ActivityAbs::NotShared.rank() > ActivityAbs::Raw.rank());
        assert!(BinaryAbs::Label.rank() > BinaryAbs::Raw.rank());
    }

    #[test]
    fn max_restrictive_combines() {
        assert_eq!(
            LocationAbs::City.max_restrictive(LocationAbs::Zipcode),
            LocationAbs::City
        );
        assert_eq!(
            BinaryAbs::Raw.max_restrictive(BinaryAbs::NotShared),
            BinaryAbs::NotShared
        );
        assert_eq!(TimeAbs::Day.max_restrictive(TimeAbs::Day), TimeAbs::Day);
    }

    #[test]
    fn wire_roundtrip_all_ladders() {
        for l in [
            LocationAbs::Coordinates,
            LocationAbs::StreetAddress,
            LocationAbs::Zipcode,
            LocationAbs::City,
            LocationAbs::State,
            LocationAbs::Country,
            LocationAbs::NotShared,
        ] {
            assert_eq!(LocationAbs::parse(l.as_str()), Some(l));
        }
        for t in [
            TimeAbs::Milliseconds,
            TimeAbs::Hour,
            TimeAbs::Day,
            TimeAbs::Month,
            TimeAbs::Year,
            TimeAbs::NotShared,
        ] {
            assert_eq!(TimeAbs::parse(t.as_str()), Some(t));
        }
        for a in [
            ActivityAbs::Raw,
            ActivityAbs::TransportMode,
            ActivityAbs::MoveNotMove,
            ActivityAbs::NotShared,
        ] {
            assert_eq!(ActivityAbs::parse(a.as_str()), Some(a));
        }
        for b in [BinaryAbs::Raw, BinaryAbs::Label, BinaryAbs::NotShared] {
            assert_eq!(BinaryAbs::parse(b.as_str()), Some(b));
        }
        assert_eq!(LocationAbs::parse("Galaxy"), None);
    }

    #[test]
    fn time_abstraction_truncates() {
        let t = Timestamp::from_millis(1_311_535_598_327); // 2011-07-24 19:26:38.327
        assert_eq!(TimeAbs::Milliseconds.apply(t), t);
        assert_eq!(TimeAbs::Hour.apply(t).civil_date(), (2011, 7, 24));
        assert_eq!(TimeAbs::Hour.apply(t).time_of_day().hour, 19);
        assert_eq!(TimeAbs::Hour.apply(t).time_of_day().minute, 0);
        assert_eq!(TimeAbs::Day.apply(t).civil_date(), (2011, 7, 24));
        assert_eq!(TimeAbs::Month.apply(t).civil_date(), (2011, 7, 1));
        assert_eq!(TimeAbs::Year.apply(t).civil_date(), (2011, 1, 1));
    }

    #[test]
    fn geocode_is_deterministic_and_hierarchical() {
        let ucla = GeoPoint::ucla();
        let a1 = synthetic_geocode(&ucla);
        let a2 = synthetic_geocode(&ucla);
        assert_eq!(a1, a2);
        // A point ~50 m away: same zip (usually same street cell is not
        // guaranteed, so test the coarser levels).
        let nearby = GeoPoint::new(ucla.latitude + 0.0004, ucla.longitude);
        let b = synthetic_geocode(&nearby);
        assert_eq!(a1.zipcode, b.zipcode);
        assert_eq!(a1.city, b.city);
        assert_eq!(a1.state, b.state);
        // A point in another city cell: different city, same state.
        let other_city = GeoPoint::new(ucla.latitude + 0.35, ucla.longitude);
        let c = synthetic_geocode(&other_city);
        assert_ne!(a1.city, c.city);
        assert_eq!(a1.state, c.state);
        // Another continent: different country.
        let far = GeoPoint::new(48.85, 2.35);
        let d = synthetic_geocode(&far);
        assert_ne!(a1.country, d.country);
    }

    #[test]
    fn location_ladder_apply() {
        let p = GeoPoint::ucla();
        assert!(LocationAbs::Coordinates
            .apply(&p)
            .unwrap()
            .starts_with("34.0722"));
        assert!(LocationAbs::Zipcode.apply(&p).unwrap().len() == 5);
        assert!(LocationAbs::City.apply(&p).unwrap().starts_with("City-"));
        assert!(LocationAbs::NotShared.apply(&p).is_none());
    }

    #[test]
    fn coarser_levels_merge_points() {
        // Two points in the same 1° cell but different 0.1° cells: City
        // differs, State equal.
        let p1 = GeoPoint::new(34.05, -118.45);
        let p2 = GeoPoint::new(34.75, -118.45);
        assert_ne!(LocationAbs::City.apply(&p1), LocationAbs::City.apply(&p2));
        assert_eq!(LocationAbs::State.apply(&p1), LocationAbs::State.apply(&p2));
    }
}
