//! Compiled privacy-rule lists for the enforcement hot path.
//!
//! [`evaluate`](crate::evaluate) is the reference semantics, but calling
//! it per request means cloning the contributor's rule list out of the
//! account lock and allocating a fresh `Vec<ChannelId>` per matching rule
//! per window. [`CompiledRules`] moves that work to rule-update time: the
//! data store compiles a rule list once per `rule_epoch` bump, caches the
//! `Arc<CompiledRules>` on the account, and enforcement evaluates against
//! the shared compiled form without cloning rules or allocating per-rule
//! channel vectors.
//!
//! The compiled evaluator must be decision-for-decision identical to
//! [`evaluate`](crate::evaluate); the tests below assert equivalence
//! across the semantic corners (deny-by-default, most-restrictive-wins,
//! conservative matching, sensor scoping, dependency closure).

use crate::deps::DependencyGraph;
use crate::eval::{resolve_decision, rule_matches, ConsumerCtx, Decision, Ladders, WindowCtx};
use crate::rule::{Action, PrivacyRule};
use sensorsafe_types::ChannelId;
use std::collections::BTreeSet;

/// One rule with its sensor condition pre-resolved into a set.
#[derive(Debug, Clone)]
struct CompiledRule {
    rule: PrivacyRule,
    /// `None` means the rule covers every requested channel (empty sensor
    /// condition); otherwise the sorted set of channels it scopes to.
    sensors: Option<BTreeSet<ChannelId>>,
}

/// A contributor's rule list in evaluation-ready form.
///
/// Build one with [`CompiledRules::compile`] whenever the rule list
/// changes (the data store keys its per-account cache by `rule_epoch`),
/// then share it behind an `Arc` across concurrent requests.
#[derive(Debug, Clone, Default)]
pub struct CompiledRules {
    rules: Vec<CompiledRule>,
}

impl CompiledRules {
    /// Compiles `rules` (cloning them once, instead of once per request).
    pub fn compile(rules: &[PrivacyRule]) -> CompiledRules {
        let rules = rules
            .iter()
            .map(|rule| CompiledRule {
                sensors: if rule.conditions.sensors.is_empty() {
                    None
                } else {
                    Some(rule.conditions.sensors.iter().cloned().collect())
                },
                rule: rule.clone(),
            })
            .collect();
        CompiledRules { rules }
    }

    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are compiled (deny-by-default shares nothing).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decision-for-decision equivalent of [`crate::evaluate`] over the
    /// compiled form. No per-rule allocation: channel membership is
    /// checked against the precomputed sensor sets.
    pub fn evaluate(
        &self,
        consumer: &ConsumerCtx,
        window: &WindowCtx,
        channels: &[ChannelId],
        graph: &DependencyGraph,
    ) -> Decision {
        let mut allowed: BTreeSet<ChannelId> = BTreeSet::new();
        let mut force_denied: BTreeSet<ChannelId> = BTreeSet::new();
        let mut ladders = Ladders::raw();
        let mut matched: Vec<u32> = Vec::new();

        for (index, compiled) in self.rules.iter().enumerate() {
            if !rule_matches(&compiled.rule, consumer, window) {
                continue;
            }
            matched.push(index as u32);
            match &compiled.rule.action {
                Action::Allow => {
                    insert_covered(&mut allowed, channels, &compiled.sensors);
                }
                Action::Deny => {
                    insert_covered(&mut force_denied, channels, &compiled.sensors);
                }
                Action::Abstraction(spec) => ladders.apply(spec),
            }
        }

        resolve_decision(allowed, force_denied, ladders, channels, graph, matched)
    }
}

/// Inserts the requested channels covered by `sensors` into `target`
/// (`None` covers all of them), without building an intermediate `Vec`.
fn insert_covered(
    target: &mut BTreeSet<ChannelId>,
    channels: &[ChannelId],
    sensors: &Option<BTreeSet<ChannelId>>,
) {
    for c in channels {
        let covered = match sensors {
            None => true,
            Some(set) => set.contains(c),
        };
        if covered && !target.contains(c) {
            target.insert(c.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{BinaryAbs, LocationAbs, TimeAbs};
    use crate::evaluate;
    use crate::rule::{AbstractionSpec, Conditions, ConsumerSelector, LocationCondition};
    use sensorsafe_types::{
        ConsumerId, ContextKind, ContextState, GeoPoint, Region, Timestamp, CHAN_ACCEL_MAG,
        CHAN_ECG, CHAN_RESPIRATION,
    };

    fn chans(names: &[&str]) -> Vec<ChannelId> {
        names.iter().map(|n| ChannelId::new(*n)).collect()
    }

    fn allow_for(consumer: &str) -> PrivacyRule {
        PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User(ConsumerId::new(consumer))],
                ..Default::default()
            },
            action: Action::Allow,
        }
    }

    /// The equivalence corpus: rule sets exercising every action kind,
    /// sensor scoping, conservative matching, and ladder merging.
    fn corpus() -> Vec<Vec<PrivacyRule>> {
        let region = Region::around(GeoPoint::ucla(), 0.01);
        vec![
            vec![],
            vec![PrivacyRule::allow_all()],
            vec![allow_for("Bob")],
            vec![
                allow_for("Bob"),
                PrivacyRule {
                    conditions: Conditions {
                        sensors: chans(&[CHAN_ECG]),
                        ..Default::default()
                    },
                    action: Action::Deny,
                },
            ],
            vec![PrivacyRule {
                conditions: Conditions {
                    sensors: chans(&[CHAN_ECG, "skin_temp"]),
                    ..Default::default()
                },
                action: Action::Allow,
            }],
            vec![
                allow_for("Bob"),
                PrivacyRule {
                    conditions: Conditions {
                        location: Some(LocationCondition {
                            labels: vec!["home".into()],
                            regions: vec![region],
                        }),
                        ..Default::default()
                    },
                    action: Action::Deny,
                },
            ],
            vec![
                allow_for("Bob"),
                PrivacyRule {
                    conditions: Conditions {
                        contexts: vec![ContextKind::Drive],
                        ..Default::default()
                    },
                    action: Action::Deny,
                },
            ],
            vec![
                PrivacyRule::allow_all(),
                PrivacyRule {
                    conditions: Conditions::default(),
                    action: Action::Abstraction(AbstractionSpec {
                        location: Some(LocationAbs::Zipcode),
                        time: Some(TimeAbs::Day),
                        smoking: Some(BinaryAbs::Label),
                        ..Default::default()
                    }),
                },
                PrivacyRule {
                    conditions: Conditions::default(),
                    action: Action::Abstraction(AbstractionSpec {
                        location: Some(LocationAbs::State),
                        time: Some(TimeAbs::Hour),
                        stress: Some(BinaryAbs::NotShared),
                        ..Default::default()
                    }),
                },
            ],
        ]
    }

    fn windows() -> Vec<WindowCtx> {
        let at_ucla = WindowCtx {
            time: Timestamp::from_millis(1_311_535_598_327),
            location: Some(GeoPoint::ucla()),
            location_labels: vec!["UCLA".into()],
            contexts: vec![],
        };
        let mut no_fix = at_ucla.clone();
        no_fix.location = None;
        no_fix.location_labels.clear();
        let mut driving = at_ucla.clone();
        driving.contexts = vec![ContextState::on(ContextKind::Drive)];
        let mut walking = at_ucla.clone();
        walking.contexts = vec![ContextState::on(ContextKind::Walk)];
        vec![at_ucla, no_fix, driving, walking]
    }

    #[test]
    fn compiled_matches_reference_evaluator() {
        let graph = DependencyGraph::paper();
        let channels = chans(&[CHAN_ECG, CHAN_RESPIRATION, CHAN_ACCEL_MAG, "skin_temp"]);
        let consumers = [ConsumerCtx::user("Bob"), ConsumerCtx::user("Eve")];
        for rules in corpus() {
            let compiled = CompiledRules::compile(&rules);
            assert_eq!(compiled.len(), rules.len());
            for window in windows() {
                for consumer in &consumers {
                    let reference = evaluate(&rules, consumer, &window, &channels, &graph);
                    let fast = compiled.evaluate(consumer, &window, &channels, &graph);
                    assert_eq!(fast, reference, "divergence for rules {rules:?}");
                }
            }
        }
    }

    #[test]
    fn empty_compiled_rules_deny_by_default() {
        let compiled = CompiledRules::compile(&[]);
        assert!(compiled.is_empty());
        let d = compiled.evaluate(
            &ConsumerCtx::user("Bob"),
            &windows()[0],
            &chans(&[CHAN_ECG]),
            &DependencyGraph::paper(),
        );
        assert!(d.allowed.is_empty());
        assert!(d.shares_nothing());
    }

    #[test]
    fn sensor_scoping_only_covers_requested_channels() {
        let rules = vec![PrivacyRule {
            conditions: Conditions {
                sensors: chans(&[CHAN_ECG, "gsr"]),
                ..Default::default()
            },
            action: Action::Allow,
        }];
        let compiled = CompiledRules::compile(&rules);
        let d = compiled.evaluate(
            &ConsumerCtx::user("Bob"),
            &windows()[0],
            &chans(&[CHAN_ECG, CHAN_RESPIRATION]),
            &DependencyGraph::paper(),
        );
        // "gsr" is scoped by the rule but was not requested.
        assert_eq!(d.allowed, chans(&[CHAN_ECG]).into_iter().collect());
        assert!(d.denied.contains(&ChannelId::new(CHAN_RESPIRATION)));
    }
}
