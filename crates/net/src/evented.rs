//! The evented server: epoll event loops with `SO_REUSEPORT` sharded
//! accept.
//!
//! Architecture (one box per [`EventedConfig::loops`]):
//!
//! ```text
//!   kernel ──SO_REUSEPORT──▶ listener ┐
//!                                     │ per-loop epoll
//!   eventfd waker ────────────────────┤   ├─ conn state machines
//!                                     │   ├─ incremental HTTP codec
//!   timer wheel (idle timeouts) ──────┘   └─ write buffers
//!                    │ complete requests         ▲ responses
//!                    ▼                           │
//!              bounded handler pool  ── service.handle() ──┘
//! ```
//!
//! Each loop owns its own `SO_REUSEPORT` listener, so the kernel load-
//! balances incoming connections across loops with no shared accept
//! lock. A connection lives on one loop for its whole life: the loop
//! reads readiness-driven byte fragments into the connection's
//! [`RequestDecoder`], dispatches each
//! complete request to a bounded handler pool (where the blocking
//! service code — WAL commits, policy evaluation — runs unchanged), and
//! writes the response back with non-blocking writes, re-arming
//! `EPOLLOUT` on short writes. Handler threads return responses through
//! a per-loop completion queue plus an `eventfd` wakeup.
//!
//! Resource discipline, because millions of trickle-rate contributors
//! are the point (ROADMAP north star):
//!
//! * memory per idle connection is one decoder (empty between requests)
//!   plus the fixed `Conn` bookkeeping — no thread, no stack;
//! * idle connections are closed after [`EventedConfig::idle_timeout`]
//!   by a per-loop timer wheel;
//! * accepts beyond [`EventedConfig::max_connections_per_loop`] and
//!   requests beyond the handler queue are **shed** with
//!   `503` + `Connection: close` rather than queued unboundedly,
//!   counted by `sensorsafe_net_overload_shed_total`.

use crate::codec::{Decoded, RequestDecoder};
use crate::http::{write_response, Request, Response, Status};
use crate::poll::{Event, Poller, Waker, READABLE, WRITABLE};
use crate::server::record_request;
use crate::Service;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the evented server. The defaults suit a store serving
/// thousands of keep-alive device connections on a small host.
#[derive(Debug, Clone)]
pub struct EventedConfig {
    /// Event loops, each with its own `SO_REUSEPORT` listener and epoll
    /// instance. `0` means one per available core.
    pub loops: usize,
    /// Threads in the bounded handler pool that runs `service.handle`
    /// (the blocking datastore/broker code). `0` means `4 × loops`.
    pub handler_threads: usize,
    /// Connection cap per loop; accepts beyond it are answered `503` +
    /// `Connection: close` and counted as shed.
    pub max_connections_per_loop: usize,
    /// Complete requests waiting for a handler thread, across all loops;
    /// overflow is shed like the connection cap.
    pub handler_queue_depth: usize,
    /// Idle keep-alive connections are closed after this long without a
    /// request (mirrors the thread-pool server's 30 s read timeout).
    pub idle_timeout: Duration,
}

impl Default for EventedConfig {
    fn default() -> EventedConfig {
        EventedConfig {
            loops: 0,
            handler_threads: 0,
            max_connections_per_loop: 16 * 1024,
            handler_queue_depth: 1024,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

impl EventedConfig {
    fn resolved_loops(&self) -> usize {
        if self.loops > 0 {
            return self.loops;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    fn resolved_handlers(&self) -> usize {
        if self.handler_threads > 0 {
            return self.handler_threads;
        }
        4 * self.resolved_loops()
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;

/// Read chunk size; also the flood guard granularity.
const READ_CHUNK: usize = 16 * 1024;
/// Stop reading from a connection once this much is buffered ahead of
/// the state machine (pipelining flood guard); TCP backpressure takes
/// over until the buffered requests drain.
const MAX_BUFFERED_AHEAD: usize = 256 * 1024;

/// A response produced by a handler thread, addressed back to the
/// connection that asked (generation-checked: the slot may have been
/// reused by a new connection by the time the response lands).
struct Completion {
    slot: usize,
    generation: u64,
    response: Response,
    close: bool,
}

/// The loop-side state handler threads can reach.
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// A unit of work for the handler pool.
struct Job {
    request: Request,
    slot: usize,
    generation: u64,
    shared: Arc<LoopShared>,
}

/// Why a connection was closed; becomes the `reason` label on
/// `sensorsafe_net_connections_closed_total`.
#[derive(Clone, Copy, PartialEq)]
enum CloseReason {
    PeerClose,
    IdleTimeout,
    Error,
    ProtocolError,
    ServerClose,
    Shutdown,
}

impl CloseReason {
    fn label(self) -> &'static str {
        match self {
            CloseReason::PeerClose => "peer_close",
            CloseReason::IdleTimeout => "idle_timeout",
            CloseReason::Error => "error",
            CloseReason::ProtocolError => "protocol_error",
            CloseReason::ServerClose => "server_close",
            CloseReason::Shutdown => "shutdown",
        }
    }
}

fn count_shed(reason: &'static str) {
    sensorsafe_obsv::global()
        .counter(
            "sensorsafe_net_overload_shed_total",
            "Connections/requests answered 503 + close because a capacity \
             bound (connection cap, handler queue) was reached.",
            &[("reason", reason)],
        )
        .inc();
}

fn handler_queue_gauge() -> Arc<sensorsafe_obsv::Gauge> {
    sensorsafe_obsv::global().gauge(
        "sensorsafe_net_handler_queue_depth",
        "Requests dispatched to the evented servers' handler pool and not \
         yet picked up by a handler thread.",
        &[],
    )
}

fn open_conns_gauge() -> Arc<sensorsafe_obsv::Gauge> {
    sensorsafe_obsv::global().gauge(
        "sensorsafe_net_open_connections",
        "Currently open server-side connections across all servers in \
         this process.",
        &[],
    )
}

fn count_closed(reason: CloseReason, opened: Instant) {
    let registry = sensorsafe_obsv::global();
    registry
        .counter(
            "sensorsafe_net_connections_closed_total",
            "Server-side connection closes, by reason.",
            &[("reason", reason.label())],
        )
        .inc();
    registry
        .histogram(
            "sensorsafe_net_connection_duration_seconds",
            "Lifetime of server-side connections, accept to close.",
            &[],
            None,
        )
        .observe(opened.elapsed());
    open_conns_gauge().add(-1);
}

/// One connection's state on its loop.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    generation: u64,
    decoder: RequestDecoder,
    /// Encoded response bytes not yet written.
    out: Vec<u8>,
    out_pos: usize,
    /// A request is in the handler pool; reads are paused.
    busy: bool,
    close_after_write: bool,
    /// Reason to record when `close_after_write` completes.
    close_reason: CloseReason,
    /// Interest bits currently armed in epoll.
    interest: u32,
    last_activity: Instant,
    opened: Instant,
}

/// A hashed timer wheel over connection slots. Entries are lazy: a slot
/// firing only *checks* the connection's `last_activity` and re-inserts
/// if it saw traffic since — so activity never touches the wheel on the
/// hot path.
struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    tick: Duration,
    cursor: usize,
    last_advance: Instant,
}

impl TimerWheel {
    fn new(idle_timeout: Duration) -> TimerWheel {
        let tick = (idle_timeout / 8).clamp(Duration::from_millis(25), Duration::from_secs(1));
        let needed = (idle_timeout.as_nanos() / tick.as_nanos().max(1)) as usize + 2;
        TimerWheel {
            slots: vec![Vec::new(); needed],
            tick,
            cursor: 0,
            last_advance: Instant::now(),
        }
    }

    fn insert_at(&mut self, deadline: Instant, now: Instant, entry: (usize, u64)) {
        let ticks_ahead = if deadline <= now {
            1
        } else {
            ((deadline - now).as_nanos() / self.tick.as_nanos().max(1)) as usize + 1
        };
        let idx = (self.cursor + ticks_ahead.min(self.slots.len() - 1)) % self.slots.len();
        self.slots[idx].push(entry);
    }

    /// Time until the next slot fires (the poll timeout when
    /// connections are live).
    fn next_tick_in(&self, now: Instant) -> Duration {
        let next = self.last_advance + self.tick;
        if next <= now {
            Duration::from_millis(1)
        } else {
            next - now
        }
    }

    /// Pops every entry whose slot has come due.
    fn due(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let mut fired = Vec::new();
        while self.last_advance + self.tick <= now {
            self.last_advance += self.tick;
            self.cursor = (self.cursor + 1) % self.slots.len();
            fired.append(&mut self.slots[self.cursor]);
        }
        fired
    }
}

/// Binds a non-blocking listener with `SO_REUSEPORT` (+`SO_REUSEADDR`)
/// set before `bind`, which `std` cannot express — hence the raw
/// syscalls from the vendored shim.
fn bind_reuseport(addr: SocketAddr) -> std::io::Result<TcpListener> {
    fn check(ret: libc::c_int, fd: Option<RawFd>) -> std::io::Result<libc::c_int> {
        if ret < 0 {
            let e = std::io::Error::last_os_error();
            if let Some(fd) = fd {
                unsafe { libc::close(fd) };
            }
            Err(e)
        } else {
            Ok(ret)
        }
    }
    unsafe {
        let domain = if addr.is_ipv4() {
            libc::AF_INET
        } else {
            libc::AF_INET6
        };
        let fd = check(
            libc::socket(
                domain,
                libc::SOCK_STREAM | libc::SOCK_CLOEXEC | libc::SOCK_NONBLOCK,
                0,
            ),
            None,
        )?;
        let on: libc::c_int = 1;
        for opt in [libc::SO_REUSEADDR, libc::SO_REUSEPORT] {
            check(
                libc::setsockopt(
                    fd,
                    libc::SOL_SOCKET,
                    opt,
                    (&on as *const libc::c_int).cast(),
                    4,
                ),
                Some(fd),
            )?;
        }
        match addr {
            SocketAddr::V4(v4) => {
                let sa = libc::sockaddr_in {
                    sin_family: libc::AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                    sin_zero: [0; 8],
                };
                check(
                    libc::bind(
                        fd,
                        (&sa as *const libc::sockaddr_in).cast(),
                        std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
                    ),
                    Some(fd),
                )?;
            }
            SocketAddr::V6(v6) => {
                let sa = libc::sockaddr_in6 {
                    sin6_family: libc::AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: 0,
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                check(
                    libc::bind(
                        fd,
                        (&sa as *const libc::sockaddr_in6).cast(),
                        std::mem::size_of::<libc::sockaddr_in6>() as libc::socklen_t,
                    ),
                    Some(fd),
                )?;
            }
        }
        check(libc::listen(fd, 1024), Some(fd))?;
        Ok(TcpListener::from_raw_fd(fd))
    }
}

/// A running evented server. See the module docs for the architecture.
pub struct EventedServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    loops: Vec<JoinHandle<()>>,
    loop_shared: Vec<Arc<LoopShared>>,
    handlers: Vec<JoinHandle<()>>,
    job_tx: Option<Sender<Job>>,
}

impl EventedServer {
    /// Binds `service` on `addr` (port 0 for ephemeral) with `config`.
    pub fn bind(
        addr: &str,
        config: EventedConfig,
        service: Arc<dyn Service>,
    ) -> std::io::Result<EventedServer> {
        use std::net::ToSocketAddrs;
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
        let n_loops = config.resolved_loops();
        let n_handlers = config.resolved_handlers();

        // The first listener may bind port 0; the rest join the learned
        // concrete port so the kernel shards accepts across all of them.
        let first = bind_reuseport(sockaddr)?;
        let local = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..n_loops {
            listeners.push(bind_reuseport(local)?);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = bounded::<Job>(config.handler_queue_depth.max(1));

        let mut loop_shared = Vec::with_capacity(n_loops);
        let mut loops = Vec::with_capacity(n_loops);
        for (i, listener) in listeners.into_iter().enumerate() {
            let shared = Arc::new(LoopShared {
                completions: Mutex::new(Vec::new()),
                waker: Waker::new()?,
            });
            loop_shared.push(shared.clone());
            let stop = stop.clone();
            let tx = job_tx.clone();
            let config = config.clone();
            loops.push(
                std::thread::Builder::new()
                    .name(format!("net-loop-{i}"))
                    .spawn(move || {
                        EventLoop::new(listener, shared, stop, tx, config).run();
                    })?,
            );
        }

        let mut handlers = Vec::with_capacity(n_handlers);
        for i in 0..n_handlers {
            let rx: Receiver<Job> = job_rx.clone();
            let service = service.clone();
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("net-handler-{i}"))
                    .spawn(move || handler_main(rx, service))?,
            );
        }

        Ok(EventedServer {
            addr: local,
            stop,
            loops,
            loop_shared,
            handlers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the loops (closing every connection), drains the handler
    /// pool, and joins all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for shared in &self.loop_shared {
            shared.waker.wake();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        // Loops are gone; closing the channel lets handlers finish any
        // in-flight requests (their completions go nowhere) and exit.
        self.job_tx.take();
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EventedServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handler_main(rx: Receiver<Job>, service: Arc<dyn Service>) {
    while let Ok(job) = rx.recv() {
        handler_queue_gauge().add(-1);
        // Attribute handler time (including the service's own nested
        // spans) to this pool in the profiling plane; between jobs the
        // thread samples as `net-handler;(idle)`.
        let _frame = sensorsafe_obsv::prof_frame!("request-handler");
        let started = Instant::now();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            service.handle(&job.request)
        }))
        .unwrap_or_else(|_| Response::error(Status::InternalError, "handler panicked"));
        record_request(started.elapsed(), response.status);
        let close = job
            .request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        job.shared.completions.lock().push(Completion {
            slot: job.slot,
            generation: job.generation,
            response,
            close,
        });
        job.shared.waker.wake();
    }
}

struct EventLoop {
    listener: TcpListener,
    shared: Arc<LoopShared>,
    stop: Arc<AtomicBool>,
    job_tx: Sender<Job>,
    config: EventedConfig,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    generations: Vec<u64>,
    free: Vec<usize>,
    live: usize,
    wheel: TimerWheel,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        shared: Arc<LoopShared>,
        stop: Arc<AtomicBool>,
        job_tx: Sender<Job>,
        config: EventedConfig,
    ) -> EventLoop {
        let wheel = TimerWheel::new(config.idle_timeout);
        EventLoop {
            listener,
            shared,
            stop,
            job_tx,
            config,
            poller: Poller::new().expect("epoll_create1"),
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
            wheel,
        }
    }

    fn run(mut self) {
        use std::os::unix::io::AsRawFd;
        self.poller
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, READABLE)
            .expect("register listener");
        self.poller
            .add(self.shared.waker.fd(), TOKEN_WAKER, READABLE)
            .expect("register waker");
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            let now = Instant::now();
            let timeout = if self.live > 0 {
                // Wake for the next timer-wheel tick.
                Some(self.wheel.next_tick_in(now).min(Duration::from_millis(500)))
            } else {
                None // fully idle: zero CPU until an accept or the waker
            };
            events.clear();
            let wait_result = {
                // Attributes the loop's blocked time in sampled profiles
                // (`net-loop;epoll-wait`) instead of leaving it unlabeled.
                let _frame = sensorsafe_obsv::prof_frame!("epoll-wait");
                self.poller.wait(&mut events, timeout)
            };
            if wait_result.is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    token => self.conn_event(token, ev),
                }
            }
            self.drain_completions();
            self.sweep_timers();
        }
        // Shutdown: close every live connection and the listener.
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot, CloseReason::Shutdown);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    sensorsafe_obsv::global()
                        .counter(
                            "sensorsafe_net_connections_total",
                            "TCP connections accepted across all servers in this process.",
                            &[],
                        )
                        .inc();
                    if self.live >= self.config.max_connections_per_loop {
                        shed_connection(stream, "conn_cap");
                        continue;
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept failures (EMFILE, aborted handshake):
                // leave remaining backlog for the next readiness event.
                Err(_) => break,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        use std::os::unix::io::AsRawFd;
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        let generation = self.generations[slot];
        let now = Instant::now();
        let conn = Conn {
            stream,
            fd,
            generation,
            decoder: RequestDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            busy: false,
            close_after_write: false,
            close_reason: CloseReason::ServerClose,
            interest: READABLE,
            last_activity: now,
            opened: now,
        };
        if self
            .poller
            .add(fd, TOKEN_BASE + slot as u64, READABLE)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(conn);
        self.live += 1;
        open_conns_gauge().add(1);
        self.wheel
            .insert_at(now + self.config.idle_timeout, now, (slot, generation));
    }

    fn conn_event(&mut self, token: u64, ev: Event) {
        let slot = (token - TOKEN_BASE) as usize;
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // already closed this iteration
        };
        if ev.error {
            self.close(slot, CloseReason::Error);
            return;
        }
        if ev.writable && !conn.out.is_empty() {
            self.flush(slot);
        }
        // `flush` may have closed or transitioned the connection.
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if ev.readable && conn.interest & READABLE != 0 {
            self.read_ready(slot);
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    let reason = if conn.decoder.at_boundary() && !conn.busy && conn.out.is_empty()
                    {
                        CloseReason::PeerClose
                    } else {
                        CloseReason::Error // mid-message truncation
                    };
                    self.close(slot, reason);
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.decoder.feed(&buf[..n]);
                    self.advance(slot);
                    // Flood guard: if the peer is pipelining faster than
                    // we answer, stop reading until the queue drains.
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        return;
                    };
                    if conn.busy || conn.decoder.buffered() > MAX_BUFFERED_AHEAD {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot, CloseReason::Error);
                    return;
                }
            }
        }
    }

    /// Drives the connection's state machine: decode the next request if
    /// the connection is free, dispatch it, or queue a protocol error.
    fn advance(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.busy || !conn.out.is_empty() {
            return; // a response is in flight; pipelined bytes wait
        }
        match conn.decoder.poll() {
            Decoded::NeedMore => {
                self.set_interest(slot, READABLE);
            }
            Decoded::Item(request) => {
                conn.busy = true;
                let generation = conn.generation;
                // Reads pause while the handler works (bounded memory);
                // the completion path re-arms them.
                self.set_interest(slot, 0);
                let job = Job {
                    request,
                    slot,
                    generation,
                    shared: self.shared.clone(),
                };
                // Count the job before sending it: a handler thread can
                // pick it up (and decrement) the instant try_send
                // returns, and increment-after-send would let a
                // concurrent scrape read the gauge below zero.
                handler_queue_gauge().add(1);
                match self.job_tx.try_send(job) {
                    Ok(()) => {}
                    Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                        handler_queue_gauge().add(-1);
                        count_shed("handler_queue");
                        drop(job);
                        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                            return;
                        };
                        conn.busy = false;
                        let mut resp =
                            Response::error(Status::ServiceUnavailable, "server overloaded");
                        resp.headers.insert("connection".into(), "close".into());
                        self.queue_response(slot, resp, true);
                    }
                }
            }
            Decoded::Failed(err) => {
                conn.close_reason = CloseReason::ProtocolError;
                let mut resp = Response::error(err.status, &err.message);
                resp.headers.insert("connection".into(), "close".into());
                self.queue_response(slot, resp, true);
            }
        }
    }

    /// Serializes a response into the connection's write buffer and
    /// starts flushing it.
    fn queue_response(&mut self, slot: usize, response: Response, close: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.close_after_write |= close;
        let mut wire = Vec::with_capacity(256 + response.body.len());
        if write_response(&mut wire, &response).is_err() {
            self.close(slot, CloseReason::Error);
            return;
        }
        conn.out = wire;
        conn.out_pos = 0;
        conn.last_activity = Instant::now();
        self.flush(slot);
    }

    /// Writes as much of the out-buffer as the socket accepts; arms
    /// `EPOLLOUT` on a short write, re-arms reads when fully drained.
    fn flush(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.out_pos >= conn.out.len() {
                break;
            }
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close(slot, CloseReason::Error);
                    return;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.set_interest(slot, WRITABLE);
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot, CloseReason::Error);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write {
            let reason = conn.close_reason;
            self.close(slot, reason);
            return;
        }
        self.set_interest(slot, READABLE);
        // Pipelined requests may already be buffered.
        self.advance(slot);
    }

    fn drain_completions(&mut self) {
        let completions = std::mem::take(&mut *self.shared.completions.lock());
        for completion in completions {
            let Some(conn) = self.conns.get_mut(completion.slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.generation != completion.generation || !conn.busy {
                continue; // a stale response for a recycled slot
            }
            conn.busy = false;
            self.queue_response(completion.slot, completion.response, completion.close);
        }
    }

    fn sweep_timers(&mut self) {
        let now = Instant::now();
        for (slot, generation) in self.wheel.due(now) {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.generation != generation {
                continue;
            }
            let idle_for = now.saturating_duration_since(conn.last_activity);
            if !conn.busy && conn.out.is_empty() && idle_for >= self.config.idle_timeout {
                self.close(slot, CloseReason::IdleTimeout);
            } else {
                // Saw traffic (or is working): re-arm for the remainder.
                let deadline = conn.last_activity + self.config.idle_timeout;
                self.wheel
                    .insert_at(deadline.max(now), now, (slot, generation));
            }
        }
    }

    fn set_interest(&mut self, slot: usize, interest: u32) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.interest == interest {
            return;
        }
        conn.interest = interest;
        let fd = conn.fd;
        if self
            .poller
            .modify(fd, TOKEN_BASE + slot as u64, interest)
            .is_err()
        {
            self.close(slot, CloseReason::Error);
        }
    }

    fn close(&mut self, slot: usize, reason: CloseReason) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        // Dropping the stream closes the fd, which deregisters it from
        // epoll (this loop holds the only handle).
        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        drop(conn.stream);
        self.generations[slot] += 1;
        self.free.push(slot);
        self.live -= 1;
        count_closed(reason, conn.opened);
    }
}

/// Best-effort `503` + `Connection: close` for an accept beyond the
/// connection cap: one non-blocking write, then drop. Never blocks the
/// loop.
fn shed_connection(mut stream: TcpStream, reason: &'static str) {
    count_shed(reason);
    let _ = stream.set_nonblocking(true);
    let mut resp = Response::error(Status::ServiceUnavailable, "server overloaded");
    resp.headers.insert("connection".into(), "close".into());
    let mut wire = Vec::new();
    if write_response(&mut wire, &resp).is_ok() {
        let _ = stream.write(&wire);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_response, write_request, Method};
    use crate::transport::HttpClient;
    use crate::Router;
    use sensorsafe_json::json;
    use std::io::BufReader;

    fn echo_service() -> Arc<dyn Service> {
        let mut router = Router::new();
        router.get("/ping", |_, _| Response::json(&json!("pong")));
        router.post("/echo", |req: &Request, _: &crate::Params| {
            let mut resp = Response::status(Status::Ok);
            resp.body = req.body.clone();
            resp
        });
        Arc::new(router)
    }

    fn small_config() -> EventedConfig {
        EventedConfig {
            loops: 2,
            handler_threads: 2,
            ..EventedConfig::default()
        }
    }

    #[test]
    fn serves_requests_over_tcp() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let client = HttpClient::new(server.addr().to_string());
        let resp = client.send(&Request::get("/ping")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.json_body().unwrap(), json!("pong"));
    }

    #[test]
    fn keep_alive_many_requests_one_connection() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in 0..20 {
            let body = json!({ "i": i });
            write_request(&mut stream, &Request::post_json("/echo", &body)).unwrap();
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(resp.json_body().unwrap(), body);
        }
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Three requests in one burst, no reads in between.
        let mut wire = Vec::new();
        for i in 0..3 {
            write_request(&mut wire, &Request::post_json("/echo", &json!({ "i": i }))).unwrap();
        }
        stream.write_all(&wire).unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..3 {
            let resp = read_response(&mut reader).unwrap();
            assert_eq!(resp.json_body().unwrap(), json!({ "i": i }), "response {i}");
        }
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"BOGUS REQUEST LINE\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "{text}");
    }

    #[test]
    fn oversized_headers_get_431() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
        let filler = format!("x-filler: {}\r\n", "y".repeat(4000));
        // Stream far past the head cap without ever finishing.
        for _ in 0..12 {
            if stream.write_all(filler.as_bytes()).is_err() {
                break; // server already closed on us — also acceptable
            }
        }
        let mut buf = Vec::new();
        let _ = stream.read_to_end(&mut buf);
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 431"), "{text}");
    }

    #[test]
    fn connection_cap_sheds_with_503() {
        let config = EventedConfig {
            loops: 1,
            handler_threads: 1,
            max_connections_per_loop: 4,
            ..EventedConfig::default()
        };
        let server = EventedServer::bind("127.0.0.1:0", config, echo_service()).unwrap();
        // Fill the cap with idle keep-alive connections.
        let mut held = Vec::new();
        for _ in 0..4 {
            let client = HttpClient::new(server.addr().to_string());
            assert_eq!(
                client.send(&Request::get("/ping")).unwrap().status,
                Status::Ok
            );
            held.push(client);
        }
        // The next connection must be answered 503 + close, not queued.
        let mut shed = None;
        for _ in 0..20 {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            // The server may have shed + closed already, making this
            // write fail with EPIPE; the 503 may still be readable.
            let _ = write_request(&mut stream, &Request::get("/ping"));
            let mut reader = BufReader::new(stream);
            match read_response(&mut reader) {
                Ok(resp) if resp.status == Status::ServiceUnavailable => {
                    assert_eq!(
                        resp.headers.get("connection").map(String::as_str),
                        Some("close")
                    );
                    shed = Some(resp);
                    break;
                }
                // A raced close (shed write lost to the reset) or a
                // serve from a just-freed slot: try again.
                _ => continue,
            }
        }
        assert!(shed.is_some(), "cap overflow was never answered 503");
    }

    #[test]
    fn idle_connections_are_closed() {
        let config = EventedConfig {
            loops: 1,
            handler_threads: 1,
            idle_timeout: Duration::from_millis(200),
            ..EventedConfig::default()
        };
        let server = EventedServer::bind("127.0.0.1:0", config, echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_request(&mut stream, &Request::get("/ping")).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        assert_eq!(read_response(&mut reader).unwrap().status, Status::Ok);
        // Go idle; the server must close us within a few timeouts.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut byte = [0u8; 1];
        let n = stream.read(&mut byte).unwrap_or(0);
        assert_eq!(n, 0, "expected EOF from idle-timeout close");
    }

    #[test]
    fn connection_close_header_honored() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut req = Request::get("/ping");
        req.headers.insert("connection".into(), "close".into());
        write_request(&mut stream, &req).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).unwrap(); // EOF must arrive
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let mut server =
            EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let addr = server.addr();
        let client = HttpClient::new(addr.to_string());
        assert!(client.send(&Request::get("/ping")).is_ok());
        let started = Instant::now();
        server.shutdown();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            started.elapsed()
        );
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn concurrent_clients_across_loops() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                for j in 0..10 {
                    let body = json!({"worker": i, "iter": j});
                    let resp = client.send(&Request::post_json("/echo", &body)).unwrap();
                    assert_eq!(resp.json_body().unwrap(), body);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn method_not_allowed_statuses_pass_through() {
        let server = EventedServer::bind("127.0.0.1:0", small_config(), echo_service()).unwrap();
        let client = HttpClient::new(server.addr().to_string());
        let req = Request {
            method: Method::Delete,
            ..Request::get("/ping")
        };
        assert_eq!(client.send(&req).unwrap().status, Status::MethodNotAllowed);
        assert_eq!(
            client.send(&Request::get("/nope")).unwrap().status,
            Status::NotFound
        );
    }
}
