//! Prometheus text-exposition (version 0.0.4) *parsing*.
//!
//! The broker's fleet scraper pulls `GET /metrics` from every registered
//! data store and needs the samples back as numbers. This is the inverse
//! of `sensorsafe-obsv`'s `expose` module and accepts the general text
//! format: `# HELP` / `# TYPE` comment lines, optional label sets with
//! escaped values (`\\`, `\"`, `\n`), histogram `_bucket`/`_sum`/`_count`
//! series, `+Inf` bounds, optional trailing timestamps, and (ignored)
//! OpenMetrics exemplar suffixes.
//!
//! Parsing is tolerant by design: a scrape is operational telemetry, so a
//! malformed line is skipped (and counted) rather than failing the whole
//! sweep — one bad series must not blind the fleet plane to a store's
//! remaining signal.

/// One parsed sample: metric name, sorted-as-emitted labels, value.
#[derive(Clone, Debug, PartialEq)]
pub struct TextSample {
    /// Metric (or series) name, e.g. `sensorsafe_net_requests_total`.
    pub name: String,
    /// Label pairs in the order they appeared on the line.
    pub labels: Vec<(String, String)>,
    /// The sample value; `+Inf`/`-Inf`/`NaN` parse to the IEEE values.
    pub value: f64,
}

impl TextSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Canonical `name{k="v",…}` series identifier (labels as-emitted;
    /// the obsv exposition already sorts them by key).
    pub fn series_id(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = self.name.clone();
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// The outcome of parsing one exposition document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedScrape {
    /// Every well-formed sample line, in document order.
    pub samples: Vec<TextSample>,
    /// Lines that were neither comments, blanks, nor parseable samples.
    pub malformed_lines: usize,
}

impl ParsedScrape {
    /// Sum of every sample of `name` whose labels all match `filters`
    /// (other labels are ignored). `None` when no sample matched.
    pub fn sum_where(&self, name: &str, filters: &[(&str, &str)]) -> Option<f64> {
        let mut sum = 0.0;
        let mut hit = false;
        for s in &self.samples {
            if s.name == name && filters.iter().all(|(k, v)| s.label(k) == Some(v)) {
                sum += s.value;
                hit = true;
            }
        }
        if hit {
            Some(sum)
        } else {
            None
        }
    }

    /// The first sample with this exact name, if any.
    pub fn first(&self, name: &str) -> Option<&TextSample> {
        self.samples.iter().find(|s| s.name == name)
    }
}

/// Parses a Prometheus text-format (0.0.4) document.
pub fn parse(text: &str) -> ParsedScrape {
    let mut out = ParsedScrape::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_sample_line(line) {
            Some(sample) => out.samples.push(sample),
            None => out.malformed_lines += 1,
        }
    }
    out
}

/// Parses a bucket bound the way the exposition writes it (`+Inf` → ∞).
pub fn parse_bound(raw: &str) -> Option<f64> {
    raw.parse::<f64>().ok()
}

fn parse_sample_line(line: &str) -> Option<TextSample> {
    let name_end = line.find(|c: char| c == '{' || c.is_whitespace())?;
    let name = &line[..name_end];
    if name.is_empty() || !name.chars().next().is_some_and(valid_name_start) {
        return None;
    }
    if !name.chars().all(valid_name_char) {
        return None;
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        parse_labels(body)?
    } else {
        (Vec::new(), rest)
    };
    let mut fields = rest.split_whitespace();
    let value: f64 = fields.next()?.parse().ok()?;
    // An optional trailing millisecond timestamp is legal, and an
    // OpenMetrics exemplar (` # {labels} value [ts]`) may follow the value
    // or the timestamp — some exporters emit those even on the 0.0.4
    // content type. Exemplars are accepted and ignored; anything else
    // after the timestamp is malformed.
    match fields.next() {
        None => {}
        Some("#") => {}
        Some(ts) => {
            ts.parse::<i64>().ok()?;
            match fields.next() {
                None | Some("#") => {}
                Some(_) => return None,
            }
        }
    }
    Some(TextSample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn valid_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn valid_name_char(c: char) -> bool {
    valid_name_start(c) || c.is_ascii_digit()
}

/// Parses `k="v",…}` (the body after `{`), returning labels and the rest
/// of the line after the closing brace.
fn parse_labels(mut body: &str) -> Option<(Vec<(String, String)>, &str)> {
    let mut labels = Vec::new();
    loop {
        body = body.trim_start();
        if let Some(rest) = body.strip_prefix('}') {
            return Some((labels, rest));
        }
        let eq = body.find('=')?;
        let key = body[..eq].trim();
        if key.is_empty() || !key.chars().all(valid_name_char) {
            return None;
        }
        body = body[eq + 1..].strip_prefix('"')?;
        let (value, rest) = parse_quoted_value(body)?;
        labels.push((key.to_string(), value));
        body = rest.trim_start();
        if let Some(rest) = body.strip_prefix(',') {
            body = rest;
        } else if !body.starts_with('}') {
            return None;
        }
    }
}

/// Unescapes a quoted label value; returns the value and the text after
/// the closing quote.
fn parse_quoted_value(body: &str) -> Option<(String, &str)> {
    let mut value = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((value, &body[i + 1..])),
            '\\' => match chars.next()?.1 {
                '\\' => value.push('\\'),
                '"' => value.push('"'),
                'n' => value.push('\n'),
                other => {
                    // Unknown escape: keep both characters, like Prometheus.
                    value.push('\\');
                    value.push(other);
                }
            },
            other => value.push(other),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counters_gauges_and_comments() {
        let doc = "\
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{code=\"200\"} 3
requests_total{code=\"404\"} 1
up 1
";
        let parsed = parse(doc);
        assert_eq!(parsed.malformed_lines, 0);
        assert_eq!(parsed.samples.len(), 3);
        assert_eq!(parsed.samples[0].label("code"), Some("200"));
        assert_eq!(parsed.samples[0].value, 3.0);
        assert_eq!(
            parsed.samples[0].series_id(),
            "requests_total{code=\"200\"}"
        );
        assert_eq!(parsed.first("up").unwrap().value, 1.0);
        assert_eq!(parsed.sum_where("requests_total", &[]), Some(4.0));
        assert_eq!(
            parsed.sum_where("requests_total", &[("code", "200")]),
            Some(3.0)
        );
        assert_eq!(parsed.sum_where("missing", &[]), None);
    }

    #[test]
    fn unescapes_label_values() {
        let parsed = parse("odd_total{who=\"a\\\"b\\\\c\\nd\"} 1\n");
        assert_eq!(parsed.samples[0].label("who"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parses_inf_bounds_and_timestamps() {
        let doc = "\
lat_bucket{le=\"0.01\"} 2
lat_bucket{le=\"+Inf\"} 4
lat_sum 0.5 1712345678901
lat_count 4
";
        let parsed = parse(doc);
        assert_eq!(parsed.malformed_lines, 0);
        assert_eq!(
            parse_bound(parsed.samples[1].label("le").unwrap()),
            Some(f64::INFINITY)
        );
        assert_eq!(parsed.first("lat_sum").unwrap().value, 0.5);
    }

    #[test]
    fn malformed_lines_are_counted_not_fatal() {
        let doc = "\
good_total 1
}{ not a metric
bad_value_total abc
unterminated{k=\"v 1
trailing_garbage 1 123 junk
also_good_total 2
";
        let parsed = parse(doc);
        assert_eq!(parsed.samples.len(), 2);
        assert_eq!(parsed.malformed_lines, 4);
    }

    #[test]
    fn non_finite_values_parse_to_ieee() {
        let doc = "\
ratio_nan NaN
ratio_pinf +Inf
ratio_ninf -Inf
ratio_ts NaN 1712345678901
";
        let parsed = parse(doc);
        assert_eq!(parsed.malformed_lines, 0);
        assert!(parsed.first("ratio_nan").unwrap().value.is_nan());
        assert_eq!(parsed.first("ratio_pinf").unwrap().value, f64::INFINITY);
        assert_eq!(parsed.first("ratio_ninf").unwrap().value, f64::NEG_INFINITY);
        assert!(parsed.first("ratio_ts").unwrap().value.is_nan());
    }

    #[test]
    fn exemplar_suffixes_are_accepted_and_ignored() {
        // (line, expect_ok, expected value when ok)
        let table: &[(&str, bool, f64)] = &[
            // Exemplar straight after the value.
            ("req_total 7 # {trace_id=\"abc\"} 1.5", true, 7.0),
            // Exemplar after a timestamp.
            (
                "req_total 7 1712345678901 # {trace_id=\"abc\"} 1.5 1712345678901",
                true,
                7.0,
            ),
            // Exemplar with no exemplar-labels section.
            ("lat_bucket{le=\"0.5\"} 3 # 0.42", true, 3.0),
            // Non-finite sample value plus exemplar.
            ("odd_ratio +Inf # {span=\"x\"} 2", true, f64::INFINITY),
            // '#' glued to the value is not a number, not an exemplar.
            ("req_total 7# {t=\"a\"} 1", false, 0.0),
            // Junk after a timestamp is still malformed.
            ("req_total 7 1712345678901 junk", false, 0.0),
        ];
        for &(line, expect_ok, expected) in table {
            let parsed = parse(line);
            if expect_ok {
                assert_eq!(parsed.malformed_lines, 0, "line: {line}");
                assert_eq!(parsed.samples.len(), 1, "line: {line}");
                let got = parsed.samples[0].value;
                assert!(
                    got == expected || (got.is_nan() && expected.is_nan()),
                    "line: {line}, got {got}"
                );
            } else {
                assert_eq!(parsed.malformed_lines, 1, "line: {line}");
                assert!(parsed.samples.is_empty(), "line: {line}");
            }
        }
    }

    #[test]
    fn round_trips_obsv_exposition() {
        let registry = sensorsafe_obsv::Registry::new();
        registry
            .counter(
                "rt_requests_total",
                "Requests.",
                &[("code", "200"), ("q", "a\"b\\c\nd")],
            )
            .add(7);
        registry.gauge("rt_depth", "Depth.", &[]).set(42);
        let hist = registry.histogram("rt_lat_seconds", "Latency.", &[], Some(&[0.01, 0.1]));
        hist.observe_secs(0.005);
        hist.observe_secs(5.0);

        let parsed = parse(&registry.encode());
        assert_eq!(
            parsed.malformed_lines, 0,
            "exposition must round-trip cleanly"
        );
        let counter = parsed.first("rt_requests_total").unwrap();
        assert_eq!(counter.value, 7.0);
        assert_eq!(counter.label("q"), Some("a\"b\\c\nd"));
        assert_eq!(parsed.first("rt_depth").unwrap().value, 42.0);
        assert_eq!(
            parsed.sum_where("rt_lat_seconds_bucket", &[("le", "+Inf")]),
            Some(2.0)
        );
        assert_eq!(parsed.first("rt_lat_seconds_count").unwrap().value, 2.0);
    }
}
