//! The server front door: mode selection between the evented core and
//! the thread-pool baseline, plus the thread-pool implementation itself.
//!
//! [`Server::bind`] is what everything in the workspace calls; it
//! defaults to the epoll-based [`EventedServer`](crate::evented) (see
//! [`ServerMode::from_env`]) and keeps the original blocking
//! thread-per-connection pool selectable as [`ServerMode::ThreadPool`]
//! — the same same-run A/B discipline as the store's `LockMode`:
//! baselines stay runnable forever, so any experiment can pit the two
//! architectures against each other in one process.
//!
//! The thread-pool path ([`ThreadPoolServer`]): connections are
//! accepted on a dedicated thread and dispatched to a fixed pool of
//! workers over a crossbeam channel. Each worker speaks keep-alive
//! HTTP/1.1 and *parks on its connection* until the peer closes, sends
//! `Connection: close`, or errors — which is exactly why it cannot
//! scale past `workers` concurrent keep-alive connections, and why the
//! evented core exists (EXPERIMENTS.md C3).

use crate::evented::{EventedConfig, EventedServer};
use crate::http::{read_request, write_response, Response, Status};
use crate::Service;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which server architecture [`Server::bind`] stands up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Blocking accept + fixed worker pool; one worker thread is parked
    /// per live keep-alive connection. The pre-evented baseline.
    ThreadPool,
    /// Epoll event loops with `SO_REUSEPORT` sharded accept; thousands
    /// of idle connections per loop at flat memory. The default.
    Evented,
}

impl ServerMode {
    /// Parses a mode name as used by `SENSORSAFE_SERVER_MODE` and the
    /// bench CLI: `"evented"` or `"thread-pool"`/`"threadpool"`.
    pub fn parse(s: &str) -> Option<ServerMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "evented" | "epoll" => Some(ServerMode::Evented),
            "thread-pool" | "threadpool" | "thread_pool" => Some(ServerMode::ThreadPool),
            _ => None,
        }
    }

    /// The deployment default: `Evented`, unless the
    /// `SENSORSAFE_SERVER_MODE` environment variable selects otherwise
    /// (unrecognized values fall back to `Evented`).
    pub fn from_env() -> ServerMode {
        std::env::var("SENSORSAFE_SERVER_MODE")
            .ok()
            .and_then(|v| ServerMode::parse(&v))
            .unwrap_or(ServerMode::Evented)
    }

    /// The name [`ServerMode::parse`] round-trips.
    pub fn as_str(self) -> &'static str {
        match self {
            ServerMode::ThreadPool => "thread-pool",
            ServerMode::Evented => "evented",
        }
    }
}

enum Inner {
    ThreadPool(ThreadPoolServer),
    Evented(EventedServer),
}

/// A running HTTP server in either [`ServerMode`]. Dropping it (or
/// calling [`Server::shutdown`]) stops accepting and joins all threads.
pub struct Server {
    inner: Inner,
}

impl Server {
    /// Binds `service` on `addr` (use port 0 for an ephemeral port) in
    /// the mode [`ServerMode::from_env`] selects. `workers` sizes the
    /// worker pool (thread-pool mode) or the handler pool (evented
    /// mode); in evented mode the event-loop count is one per core.
    pub fn bind(addr: &str, workers: usize, service: Arc<dyn Service>) -> std::io::Result<Server> {
        Server::bind_mode(addr, ServerMode::from_env(), workers, service)
    }

    /// Binds in an explicit mode — how experiments A/B the two
    /// architectures in one run.
    pub fn bind_mode(
        addr: &str,
        mode: ServerMode,
        workers: usize,
        service: Arc<dyn Service>,
    ) -> std::io::Result<Server> {
        let inner = match mode {
            ServerMode::ThreadPool => {
                Inner::ThreadPool(ThreadPoolServer::bind(addr, workers, service)?)
            }
            ServerMode::Evented => {
                let config = EventedConfig {
                    handler_threads: workers,
                    ..EventedConfig::default()
                };
                Inner::Evented(EventedServer::bind(addr, config, service)?)
            }
        };
        Ok(Server { inner })
    }

    /// Binds the evented core with full [`EventedConfig`] control.
    pub fn bind_evented(
        addr: &str,
        config: EventedConfig,
        service: Arc<dyn Service>,
    ) -> std::io::Result<Server> {
        Ok(Server {
            inner: Inner::Evented(EventedServer::bind(addr, config, service)?),
        })
    }

    /// The mode this server is running in.
    pub fn mode(&self) -> ServerMode {
        match &self.inner {
            Inner::ThreadPool(_) => ServerMode::ThreadPool,
            Inner::Evented(_) => ServerMode::Evented,
        }
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        match &self.inner {
            Inner::ThreadPool(s) => s.addr(),
            Inner::Evented(s) => s.addr(),
        }
    }

    /// The bound address as a `host:port` string.
    pub fn addr_string(&self) -> String {
        self.addr().to_string()
    }

    /// Stops accepting, closes live connections, and joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        match &mut self.inner {
            Inner::ThreadPool(s) => s.shutdown(),
            Inner::Evented(s) => s.shutdown(),
        }
    }
}

/// The blocking thread-pool server (the pre-evented architecture, kept
/// as the A/B baseline). Dropping it (or calling
/// [`ThreadPoolServer::shutdown`]) stops the acceptor and joins the
/// workers.
pub struct ThreadPoolServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_tx: Option<Sender<TcpStream>>,
    /// Live keep-alive connections; shut down eagerly so workers parked
    /// in blocking reads unblock immediately at server shutdown.
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ThreadPoolServer {
    /// Binds `service` on `addr` (use port 0 for an ephemeral port) with
    /// `workers` pool threads.
    pub fn bind(
        addr: &str,
        workers: usize,
        service: Arc<dyn Service>,
    ) -> std::io::Result<ThreadPoolServer> {
        assert!(workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = bounded::<TcpStream>(1024);
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = rx.clone();
            let service = service.clone();
            let conns = conns.clone();
            let stop = stop.clone();
            let thread = std::thread::Builder::new().name(format!("net-worker-{i}"));
            worker_handles.push(thread.spawn(move || {
                while let Ok(stream) = rx.recv() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        let mut live = conns.lock();
                        // Opportunistically drop closed entries so the
                        // registry doesn't grow unboundedly.
                        live.retain(|s| s.peer_addr().is_ok());
                        live.push(clone);
                    }
                    serve_connection(stream, service.as_ref());
                }
            })?);
        }
        let acceptor_stop = stop.clone();
        let acceptor_tx = tx.clone();
        // Blocking accept: zero CPU while idle. Shutdown wakes the
        // acceptor with a loopback connection (see [`Server::shutdown`]),
        // which it drops once it sees the stop flag.
        let acceptor = std::thread::spawn(move || {
            while !acceptor_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if acceptor_stop.load(Ordering::Relaxed) {
                            break; // the shutdown wake-up connection
                        }
                        sensorsafe_obsv::global()
                            .counter(
                                "sensorsafe_net_connections_total",
                                "TCP connections accepted across all servers in this process.",
                                &[],
                            )
                            .inc();
                        let _ = stream.set_nodelay(true);
                        if acceptor_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ThreadPoolServer {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
            conn_tx: Some(tx),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address as a `host:port` string.
    pub fn addr_string(&self) -> String {
        self.addr.to_string()
    }

    /// A connectable form of the bound address: wildcard binds
    /// (`0.0.0.0` / `::`) are not routable as connect targets, so the
    /// shutdown wake-up aims at loopback on the same port.
    fn wake_addr(&self) -> SocketAddr {
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            match addr {
                SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        addr
    }

    /// Stops accepting, drains the pool, and joins all threads. Live
    /// keep-alive connections are closed immediately.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            // Wake the acceptor parked in the blocking `accept()`: one
            // throwaway loopback connection, immediately dropped on both
            // sides once the stop flag is observed.
            let _ = TcpStream::connect_timeout(&self.wake_addr(), Duration::from_millis(250));
            let _ = handle.join();
        }
        // Closing the channel lets idle workers exit; shutting the live
        // sockets unblocks workers parked in keep-alive reads.
        self.conn_tx.take();
        for stream in self.conns.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPoolServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Server-level accounting: one latency observation plus a status-class
/// counter per request, regardless of which service answered it.
pub(crate) fn record_request(elapsed: Duration, status: Status) {
    let registry = sensorsafe_obsv::global();
    registry
        .histogram(
            "sensorsafe_net_request_seconds",
            "Wall-clock request handling latency at the server layer.",
            &[],
            None,
        )
        .observe(elapsed);
    let class = match status.code() {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    registry
        .counter(
            "sensorsafe_net_requests_total",
            "Requests handled at the server layer, by status class.",
            &[("class", class)],
        )
        .inc();
}

fn serve_connection(stream: TcpStream, service: &dyn Service) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    serve_loop(&mut reader, &mut writer, service);
    // The shutdown registry holds another clone of this socket's fd, so
    // dropping our handles would NOT close the TCP connection — shut it
    // down explicitly or clients waiting for EOF hang.
    let _ = writer.shutdown(std::net::Shutdown::Both);
}

fn serve_loop(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, service: &dyn Service) {
    loop {
        match read_request(reader) {
            Ok(Some(request)) => {
                let close = request
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                // Same frame name as the evented handler pool, so profiles
                // compare across server modes.
                let frame = sensorsafe_obsv::prof_frame!("request-handler");
                let started = std::time::Instant::now();
                let response = service.handle(&request);
                record_request(started.elapsed(), response.status);
                drop(frame);
                if write_response(writer, &response).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Malformed or over a resource bound: answer the typed
                // status (400 / 413 / 431) and close.
                let mut resp = Response::error(crate::http::error_status(&e), &e.to_string());
                resp.headers.insert("connection".into(), "close".into());
                let _ = write_response(writer, &resp);
                return;
            }
            Err(_) => return, // timeout / reset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, Request};
    use crate::transport::HttpClient;
    use crate::Router;
    use sensorsafe_json::json;

    fn echo_service() -> Arc<dyn Service> {
        let mut router = Router::new();
        router.get("/ping", |_, _| Response::json(&json!("pong")));
        router.post("/echo", |req: &Request, _: &crate::Params| {
            let mut resp = Response::status(Status::Ok);
            resp.body = req.body.clone();
            resp
        });
        Arc::new(router)
    }

    #[test]
    fn serves_over_real_tcp() {
        let server = Server::bind("127.0.0.1:0", 2, echo_service()).unwrap();
        // Unset env → the deployment default, the evented core.
        assert_eq!(server.mode(), ServerMode::Evented);
        let client = HttpClient::new(server.addr_string());
        let resp = client.send(&Request::get("/ping")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.json_body().unwrap(), json!("pong"));
    }

    #[test]
    fn both_modes_serve_identically() {
        for mode in [ServerMode::ThreadPool, ServerMode::Evented] {
            let server = Server::bind_mode("127.0.0.1:0", mode, 2, echo_service()).unwrap();
            assert_eq!(server.mode(), mode);
            let client = HttpClient::new(server.addr_string());
            let body = json!({"mode": (mode.as_str())});
            let resp = client.send(&Request::post_json("/echo", &body)).unwrap();
            assert_eq!(resp.status, Status::Ok, "{mode:?}");
            assert_eq!(resp.json_body().unwrap(), body, "{mode:?}");
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [ServerMode::ThreadPool, ServerMode::Evented] {
            assert_eq!(ServerMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(ServerMode::parse("EVENTED"), Some(ServerMode::Evented));
        assert_eq!(
            ServerMode::parse("threadpool"),
            Some(ServerMode::ThreadPool)
        );
        assert_eq!(ServerMode::parse("nonsense"), None);
    }

    #[test]
    fn concurrent_clients() {
        let server = Server::bind("127.0.0.1:0", 4, echo_service()).unwrap();
        let addr = server.addr_string();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let client = HttpClient::new(addr);
                for j in 0..10 {
                    let body = json!({"worker": i, "iter": j});
                    let resp = client.send(&Request::post_json("/echo", &body)).unwrap();
                    assert_eq!(resp.json_body().unwrap(), body);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let server = Server::bind("127.0.0.1:0", 1, echo_service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        // Same client object reuses its pooled connection.
        for _ in 0..5 {
            assert_eq!(
                client.send(&Request::get("/ping")).unwrap().status,
                Status::Ok
            );
        }
    }

    #[test]
    fn unknown_route_404s() {
        let server = Server::bind("127.0.0.1:0", 1, echo_service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        let resp = client.send(&Request::get("/nope")).unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn malformed_request_gets_400_in_both_modes() {
        use std::io::{Read, Write};
        for mode in [ServerMode::ThreadPool, ServerMode::Evented] {
            let server = Server::bind_mode("127.0.0.1:0", mode, 1, echo_service()).unwrap();
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"BOGUS REQUEST LINE\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            stream.read_to_end(&mut buf).unwrap();
            let text = String::from_utf8_lossy(&buf);
            assert!(text.starts_with("HTTP/1.1 400"), "{mode:?}: {text}");
        }
    }

    #[test]
    fn shutdown_is_clean_and_idempotent_in_both_modes() {
        for mode in [ServerMode::ThreadPool, ServerMode::Evented] {
            let mut server = Server::bind_mode("127.0.0.1:0", mode, 2, echo_service()).unwrap();
            let addr = server.addr();
            server.shutdown();
            server.shutdown();
            assert!(
                TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
                "{mode:?} still accepting after shutdown"
            );
        }
    }

    #[test]
    fn shutdown_wakes_idle_blocking_acceptor() {
        // With a blocking accept and no traffic, thread-pool shutdown
        // must complete via the loopback wake-up rather than hanging in
        // `accept()`.
        let mut server = ThreadPoolServer::bind("127.0.0.1:0", 1, echo_service()).unwrap();
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn connection_close_honored() {
        let server = Server::bind("127.0.0.1:0", 1, echo_service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        let mut req = Request::get("/ping");
        req.headers.insert("connection".into(), "close".into());
        let resp = client.send(&req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        // Next request transparently opens a fresh connection.
        assert_eq!(
            client.send(&Request::get("/ping")).unwrap().status,
            Status::Ok
        );
    }

    #[test]
    fn method_not_allowed_over_tcp() {
        let server = Server::bind("127.0.0.1:0", 1, echo_service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        let req = Request {
            method: Method::Delete,
            ..Request::get("/ping")
        };
        assert_eq!(client.send(&req).unwrap().status, Status::MethodNotAllowed);
    }
}
