//! Transports: how a client reaches a service.
//!
//! [`TcpTransport`]/[`HttpClient`] speak real HTTP over sockets (used by
//! examples, integration tests, and the §6 walkthrough). A
//! [`LocalTransport`] calls the service in-process — byte-for-byte the
//! same requests and responses, without kernel overhead — which is what
//! the F1/F2 benches use to measure *architecture* costs.

use crate::http::{read_response, write_request, Request, Response};
use crate::Service;
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Errors reaching a service.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Anything that can round-trip a request to a service.
pub trait Transport: Send + Sync {
    /// Sends a request and waits for the response.
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError>;
}

/// In-process transport: calls the service directly.
pub struct LocalTransport {
    service: Arc<dyn Service>,
}

impl LocalTransport {
    /// Wraps a service.
    pub fn new(service: Arc<dyn Service>) -> LocalTransport {
        LocalTransport { service }
    }
}

impl Transport for LocalTransport {
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError> {
        Ok(self.service.handle(request))
    }
}

/// A blocking HTTP client with one pooled keep-alive connection.
///
/// Thread-safe: concurrent callers serialize on the connection (spawn
/// one client per thread for parallel load, as the benches do).
pub struct HttpClient {
    addr: String,
    connection: Mutex<Option<TcpStream>>,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `host:port`.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            connection: Mutex::new(None),
            timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the per-operation socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    fn try_once(&self, stream: &mut TcpStream, request: &Request) -> std::io::Result<Response> {
        write_request(stream, request)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        read_response(&mut reader)
    }

    /// Sends a request, transparently reconnecting once if the pooled
    /// connection has gone stale.
    pub fn send(&self, request: &Request) -> Result<Response, TransportError> {
        let mut slot = self.connection.lock();
        if let Some(stream) = slot.as_mut() {
            match self.try_once(stream, request) {
                Ok(resp) => {
                    if request
                        .header("connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                    {
                        *slot = None;
                    }
                    return Ok(resp);
                }
                Err(_) => {
                    *slot = None; // stale; fall through to reconnect
                }
            }
        }
        let mut fresh = self.connect()?;
        let resp = self.try_once(&mut fresh, request)?;
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        if !close {
            *slot = Some(fresh);
        }
        Ok(resp)
    }
}

/// TCP transport backed by an [`HttpClient`].
pub struct TcpTransport {
    client: HttpClient,
}

impl TcpTransport {
    /// A transport for `host:port`.
    pub fn new(addr: impl Into<String>) -> TcpTransport {
        TcpTransport {
            client: HttpClient::new(addr),
        }
    }
}

impl Transport for TcpTransport {
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError> {
        self.client.send(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::{Router, Server};
    use sensorsafe_json::json;

    fn service() -> Arc<dyn Service> {
        let mut router = Router::new();
        router.get("/whoami", |_, _| Response::json(&json!("service")));
        Arc::new(router)
    }

    #[test]
    fn local_transport_round_trips() {
        let t = LocalTransport::new(service());
        let resp = t.round_trip(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.json_body().unwrap(), json!("service"));
    }

    #[test]
    fn tcp_transport_round_trips() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let t = TcpTransport::new(server.addr_string());
        let resp = t.round_trip(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn local_and_tcp_agree() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let tcp = TcpTransport::new(server.addr_string());
        let local = LocalTransport::new(service());
        let req = Request::get("/whoami");
        let a = tcp.round_trip(&req).unwrap();
        let b = local.round_trip(&req).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let service = service();
        let server = Server::bind("127.0.0.1:0", 1, service.clone()).unwrap();
        let addr = server.addr_string();
        let client = HttpClient::new(addr.clone());
        assert!(client.send(&Request::get("/whoami")).is_ok());
        drop(server); // connection goes stale
        let server2 = Server::bind(&addr, 1, service).unwrap();
        // One transparent retry re-establishes the connection.
        let resp = client.send(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        drop(server2);
    }

    #[test]
    fn connect_to_nothing_errors() {
        let client = HttpClient::new("127.0.0.1:1").with_timeout(Duration::from_millis(200));
        assert!(client.send(&Request::get("/x")).is_err());
    }
}
