//! Transports: how a client reaches a service.
//!
//! [`TcpTransport`]/[`HttpClient`] speak real HTTP over sockets (used by
//! examples, integration tests, and the §6 walkthrough). A
//! [`LocalTransport`] calls the service in-process — byte-for-byte the
//! same requests and responses, without kernel overhead — which is what
//! the F1/F2 benches use to measure *architecture* costs.

use crate::http::{read_response, write_request, Request, Response};
use crate::Service;
use parking_lot::Mutex;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Errors reaching a service.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Anything that can round-trip a request to a service.
pub trait Transport: Send + Sync {
    /// Sends a request and waits for the response.
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError>;
}

/// In-process transport: calls the service directly.
pub struct LocalTransport {
    service: Arc<dyn Service>,
}

impl LocalTransport {
    /// Wraps a service.
    pub fn new(service: Arc<dyn Service>) -> LocalTransport {
        LocalTransport { service }
    }
}

impl Transport for LocalTransport {
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError> {
        Ok(self.service.handle(request))
    }
}

/// Idle keep-alive connections an [`HttpClient`] retains by default.
pub const DEFAULT_POOL_SIZE: usize = 8;

/// A blocking HTTP client with a pool of keep-alive connections.
///
/// Thread-safe and genuinely concurrent: each in-flight request checks
/// an idle connection out of the pool (or dials a fresh one) and checks
/// it back in afterwards, so N threads sharing one client drive N
/// sockets in parallel instead of serializing on a single connection.
/// At most [`DEFAULT_POOL_SIZE`] (see [`HttpClient::with_pool_size`])
/// idle connections are retained; extras are closed on check-in.
pub struct HttpClient {
    addr: String,
    pool: Mutex<Vec<TcpStream>>,
    max_idle: usize,
    timeout: Duration,
}

fn count_client_connection(kind: &'static str) {
    sensorsafe_obsv::global()
        .counter(
            "sensorsafe_net_client_connections_total",
            "Client-side connection checkouts, by kind: freshly dialed \
             vs reused from the keep-alive pool.",
            &[("kind", kind)],
        )
        .inc();
}

impl HttpClient {
    /// A client for `host:port`.
    pub fn new(addr: impl Into<String>) -> HttpClient {
        HttpClient {
            addr: addr.into(),
            pool: Mutex::new(Vec::new()),
            max_idle: DEFAULT_POOL_SIZE,
            timeout: Duration::from_secs(10),
        }
    }

    /// Overrides the per-operation socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    /// Overrides how many idle keep-alive connections the pool retains
    /// (`0` disables pooling: every request dials fresh).
    pub fn with_pool_size(mut self, max_idle: usize) -> HttpClient {
        self.max_idle = max_idle;
        self
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Idle pooled connections right now (used by tests and benches).
    pub fn idle_connections(&self) -> usize {
        self.pool.lock().len()
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        count_client_connection("fresh");
        Ok(stream)
    }

    /// Returns a healthy connection to the pool, unless the pool is
    /// already holding `max_idle` of them.
    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.max_idle {
            pool.push(stream);
        }
    }

    fn try_once(&self, stream: &mut TcpStream, request: &Request) -> std::io::Result<Response> {
        write_request(stream, request)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        read_response(&mut reader)
    }

    /// Sends a request on a pooled connection (dialing fresh when none
    /// is idle), transparently reconnecting once if the pooled
    /// connection has gone stale.
    pub fn send(&self, request: &Request) -> Result<Response, TransportError> {
        let close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        // Pop under a short-lived guard: binding the checkout first
        // keeps the pool unlocked during the round trip (and during
        // `checkin`, which takes the lock again).
        let checkout = self.pool.lock().pop();
        if let Some(mut pooled) = checkout {
            count_client_connection("reused");
            // On error the pooled connection had gone stale — drop it
            // and fall through to a fresh dial.
            if let Ok(resp) = self.try_once(&mut pooled, request) {
                if !close {
                    self.checkin(pooled);
                }
                return Ok(resp);
            }
        }
        let mut fresh = self.connect()?;
        let resp = self.try_once(&mut fresh, request)?;
        if !close {
            self.checkin(fresh);
        }
        Ok(resp)
    }
}

/// TCP transport backed by an [`HttpClient`].
pub struct TcpTransport {
    client: HttpClient,
}

impl TcpTransport {
    /// A transport for `host:port`.
    pub fn new(addr: impl Into<String>) -> TcpTransport {
        TcpTransport {
            client: HttpClient::new(addr),
        }
    }
}

impl Transport for TcpTransport {
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError> {
        self.client.send(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::{Router, Server};
    use sensorsafe_json::json;

    fn service() -> Arc<dyn Service> {
        let mut router = Router::new();
        router.get("/whoami", |_, _| Response::json(&json!("service")));
        Arc::new(router)
    }

    #[test]
    fn local_transport_round_trips() {
        let t = LocalTransport::new(service());
        let resp = t.round_trip(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.json_body().unwrap(), json!("service"));
    }

    #[test]
    fn tcp_transport_round_trips() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let t = TcpTransport::new(server.addr_string());
        let resp = t.round_trip(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn local_and_tcp_agree() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let tcp = TcpTransport::new(server.addr_string());
        let local = LocalTransport::new(service());
        let req = Request::get("/whoami");
        let a = tcp.round_trip(&req).unwrap();
        let b = local.round_trip(&req).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn client_reconnects_after_server_restart() {
        let service = service();
        let server = Server::bind("127.0.0.1:0", 1, service.clone()).unwrap();
        let addr = server.addr_string();
        let client = HttpClient::new(addr.clone());
        assert!(client.send(&Request::get("/whoami")).is_ok());
        drop(server); // connection goes stale
        let server2 = Server::bind(&addr, 1, service).unwrap();
        // One transparent retry re-establishes the connection.
        let resp = client.send(&Request::get("/whoami")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        drop(server2);
    }

    #[test]
    fn connect_to_nothing_errors() {
        let client = HttpClient::new("127.0.0.1:1").with_timeout(Duration::from_millis(200));
        assert!(client.send(&Request::get("/x")).is_err());
    }

    #[test]
    fn sequential_sends_reuse_one_pooled_connection() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        for _ in 0..5 {
            assert!(client.send(&Request::get("/whoami")).is_ok());
        }
        assert_eq!(client.idle_connections(), 1);
    }

    #[test]
    fn concurrent_sends_share_the_pool() {
        let server = Server::bind("127.0.0.1:0", 4, service()).unwrap();
        let client = Arc::new(HttpClient::new(server.addr_string()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let client = client.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    assert_eq!(
                        client.send(&Request::get("/whoami")).unwrap().status,
                        Status::Ok
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Everything healthy got checked back in, capped at the pool
        // size; at least one connection survived for reuse.
        let idle = client.idle_connections();
        assert!(
            (1..=super::DEFAULT_POOL_SIZE).contains(&idle),
            "idle={idle}"
        );
    }

    #[test]
    fn pool_cap_is_enforced() {
        let server = Server::bind("127.0.0.1:0", 4, service()).unwrap();
        let client = Arc::new(HttpClient::new(server.addr_string()).with_pool_size(2));
        let mut handles = Vec::new();
        // 6 threads in flight at once can dial up to 6 sockets, but at
        // most 2 may be retained.
        for _ in 0..6 {
            let client = client.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    client.send(&Request::get("/whoami")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(client.idle_connections() <= 2);
    }

    #[test]
    fn pool_size_zero_disables_pooling() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let client = HttpClient::new(server.addr_string()).with_pool_size(0);
        for _ in 0..3 {
            assert!(client.send(&Request::get("/whoami")).is_ok());
        }
        assert_eq!(client.idle_connections(), 0);
    }

    #[test]
    fn connection_close_requests_are_not_pooled() {
        let server = Server::bind("127.0.0.1:0", 1, service()).unwrap();
        let client = HttpClient::new(server.addr_string());
        let mut req = Request::get("/whoami");
        req.headers.insert("connection".into(), "close".into());
        assert!(client.send(&req).is_ok());
        assert_eq!(client.idle_connections(), 0);
    }
}
