//! A thin, safe wrapper over raw `epoll` plus an `eventfd` waker.
//!
//! This is the readiness core under [`crate::evented`]: one [`Poller`]
//! per event loop, registered file descriptors identified by a
//! caller-chosen `u64` token, and a [`Waker`] other threads ring to pull
//! a loop out of [`Poller::wait`] (replacing the old loopback-connection
//! shutdown hack in the thread-pool server).
//!
//! The syscall surface comes from the vendored `libc` shim
//! (`vendor/libc`), consistent with the workspace's no-external-crates
//! rule; no async runtime or I/O crate is involved.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Interest in readability (`EPOLLIN`).
pub const READABLE: u32 = libc::EPOLLIN;
/// Interest in writability (`EPOLLOUT`).
pub const WRITABLE: u32 = libc::EPOLLOUT;

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Readable (or a peer hang-up that a read will observe as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition (`EPOLLERR`/`EPOLLHUP`) — always
    /// delivered by the kernel, even at interest 0.
    pub error: bool,
}

fn check(ret: libc::c_int) -> io::Result<libc::c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An `epoll` instance. Level-triggered on purpose: the event loop's
/// state machines re-arm interest explicitly, and level triggering makes
/// a missed edge impossible (at worst a spurious wakeup).
pub struct Poller {
    epfd: RawFd,
    /// Reused kernel-facing event buffer.
    events: Vec<libc::epoll_event>,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = check(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
        Ok(Poller {
            epfd,
            events: vec![libc::epoll_event { events: 0, u64: 0 }; 1024],
        })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        check(unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` under `token` with the given interest bits.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest bits for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. (Closing the fd deregisters implicitly; this is
    /// for fds that outlive their registration.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, appending into `out`. `None` blocks until an
    /// event arrives (or the waker rings). A signal-interrupted wait
    /// returns cleanly with no events.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: libc::c_int = match timeout {
            None => -1,
            // Round up so a 100µs timeout does not spin at 0ms.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as libc::c_int,
        };
        let n = unsafe {
            libc::epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                self.events.len() as libc::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for ev in &self.events[..n as usize] {
            // Copy packed fields out before touching them (x86_64 packs
            // `epoll_event`, and references into packed structs are UB).
            let bits = ev.events;
            let token = ev.u64;
            out.push(Event {
                token,
                readable: bits & libc::EPOLLIN != 0,
                writable: bits & libc::EPOLLOUT != 0,
                error: bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { libc::close(self.epfd) };
    }
}

/// An `eventfd`-backed wakeup handle. Cheap to ring from any thread;
/// the owning loop registers [`Waker::fd`] with its poller and
/// [`drain`](Waker::drain)s it on wakeup.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// A fresh non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = check(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register for [`READABLE`] interest.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Rings the waker. Safe from any thread; coalesces with pending
    /// rings (eventfd is a counter, not a queue).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { libc::write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Resets the counter so the level-triggered poller stops reporting
    /// it readable.
    pub fn drain(&self) {
        let mut val: u64 = 0;
        unsafe { libc::read(self.fd, (&mut val as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe { libc::close(self.fd) };
    }
}

// The loop thread polls while handler threads ring the waker: both ends
// are plain fd syscalls, safe concurrently.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn waker_unblocks_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 7, READABLE).unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.drain();
        // Drained: an immediate wait times out with no events.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 42, READABLE | WRITABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("event");
        assert!(ev.readable, "payload pending");
        assert!(ev.writable, "fresh socket has send-buffer space");
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
    }
}
