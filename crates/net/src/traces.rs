//! The shared `GET /traces` endpoint: a JSON view over a server's
//! [`TraceRecorder`], served identically by the datastore and the broker so
//! one request can be followed across both with a single `trace_id` filter.

use crate::http::{Request, Response};
use sensorsafe_json::{Map, Value};
use sensorsafe_obsv::{Trace, TraceRecorder};

fn hex_id(id: u64) -> Value {
    Value::String(format!("{id:016x}"))
}

fn trace_json(trace: &Trace) -> Value {
    let mut obj = Map::new();
    obj.insert("trace_id".into(), hex_id(trace.trace_id));
    obj.insert("span_id".into(), hex_id(trace.span_id));
    obj.insert("parent_span_id".into(), hex_id(trace.parent_span_id));
    obj.insert("name".into(), Value::from(trace.name.as_str()));
    obj.insert(
        "total_ms".into(),
        Value::from(trace.total.as_secs_f64() * 1e3),
    );
    obj.insert(
        "completed_unix_ms".into(),
        Value::from(trace.completed_unix_ms),
    );
    let phases: Vec<Value> = trace
        .phases
        .iter()
        .map(|p| {
            let mut phase = Map::new();
            phase.insert("name".into(), Value::from(p.name));
            phase.insert("ms".into(), Value::from(p.elapsed.as_secs_f64() * 1e3));
            Value::Object(phase)
        })
        .collect();
    obj.insert("phases".into(), Value::Array(phases));
    Value::Object(obj)
}

/// Serves `GET /traces`: finished traces newest-last, plus the separately
/// pinned slow traces, optionally filtered by `?trace_id=<16-hex>`.
pub fn traces_response(recorder: &TraceRecorder, req: &Request) -> Response {
    let filter = req
        .query
        .get("trace_id")
        .map(|raw| u64::from_str_radix(raw.trim(), 16));
    let filter = match filter {
        None => None,
        Some(Ok(id)) => Some(id),
        Some(Err(_)) => {
            return Response::error(crate::http::Status::BadRequest, "bad trace_id filter")
        }
    };
    let select = |traces: Vec<Trace>| -> Vec<Value> {
        traces
            .iter()
            .filter(|t| filter.is_none_or(|id| t.trace_id == id))
            .map(trace_json)
            .collect()
    };
    let mut body = Map::new();
    body.insert(
        "traces".into(),
        Value::Array(select(recorder.recent_traces())),
    );
    body.insert(
        "slow".into(),
        Value::Array(select(recorder.recent_slow_traces())),
    );
    Response::json(&Value::Object(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_obsv::TraceContext;

    #[test]
    fn traces_endpoint_serves_newest_last_and_filters() {
        let recorder = TraceRecorder::new(8);
        let ctx = TraceContext {
            trace_id: 0xabc,
            parent_span_id: 7,
        };
        {
            let _span = recorder.begin("GET /one");
        }
        {
            let _span = recorder.begin_ctx("POST /two", Some(ctx));
        }
        let resp = traces_response(&recorder, &Request::get("/traces"));
        let body = resp.json_body().unwrap();
        let traces = body["traces"].as_array().unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0]["name"].as_str(), Some("GET /one"));
        assert_eq!(traces[1]["name"].as_str(), Some("POST /two"));
        assert_eq!(traces[1]["trace_id"].as_str(), Some("0000000000000abc"));
        assert_eq!(
            traces[1]["parent_span_id"].as_str(),
            Some("0000000000000007")
        );

        let filtered = traces_response(
            &recorder,
            &Request::get("/traces").with_query("trace_id", "0000000000000abc"),
        );
        let body = filtered.json_body().unwrap();
        assert_eq!(body["traces"].as_array().unwrap().len(), 1);

        let bad = traces_response(
            &recorder,
            &Request::get("/traces").with_query("trace_id", "not-hex"),
        );
        assert_eq!(bad.status, crate::http::Status::BadRequest);
    }
}
