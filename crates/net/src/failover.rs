//! Fence-aware client transport: refetch the store address and retry.
//!
//! After a broker-coordinated failover, a contributor's store assignment
//! moves to the promoted replica and the deposed primary either stops
//! answering or rejects writes with `409 {"error":"fenced"}`.
//! [`FailoverTransport`] wraps an ordinary [`Transport`] with the client
//! half of that protocol: on a transport error or a fence rejection it
//! calls a resolver (typically `POST /api/contributors/resolve` at the
//! broker) for the current address, swaps the underlying transport when
//! the address moved, and retries on a fixed cadence until the request
//! lands or the retry budget runs out.
//!
//! Any other response — success, 4xx, 5xx — is returned untouched on the
//! first attempt: only "this store cannot serve you anymore" conditions
//! trigger the redirect loop.
//!
//! Transport errors are ambiguous: the store may have committed the
//! request before the connection died, so blindly re-sending a
//! non-idempotent write (e.g. `POST /api/upload`) can double-store it.
//! They are therefore retried only for requests marked
//! [`Request::idempotent`] — GETs, reads-over-POST, and writes carrying
//! their own idempotency token. A fence rejection, by contrast, is an
//! explicit "I did NOT perform this write", so it is always retried.

use crate::{Request, Response, Status, Transport, TransportError};
use parking_lot::RwLock;
use sensorsafe_json::Value;
use std::sync::Arc;
use std::time::Duration;

/// Returns the target's current address, or `None` when the resolver
/// itself cannot answer (e.g. the broker is briefly unreachable).
pub type AddrResolver = Arc<dyn Fn() -> Option<String> + Send + Sync>;

/// Builds a transport for an address (TCP in production, in-process in
/// tests — the same shape as the broker's `TransportFactory`).
pub type TransportMaker = Arc<dyn Fn(&str) -> Arc<dyn Transport> + Send + Sync>;

/// Whether a response is an epoch-fence rejection (the store is no
/// longer the primary for this principal's data).
pub fn is_fence_rejection(resp: &Response) -> bool {
    resp.status == Status::Conflict
        && resp
            .json_body()
            .map(|b| b.get("error").and_then(Value::as_str) == Some("fenced"))
            .unwrap_or(false)
}

/// A [`Transport`] that survives store failover. See the module docs.
pub struct FailoverTransport {
    resolve: AddrResolver,
    make: TransportMaker,
    current: RwLock<(String, Arc<dyn Transport>)>,
    attempts: u32,
    delay: Duration,
}

impl FailoverTransport {
    /// Wraps `addr` with the default retry budget (150 attempts, 200 ms
    /// apart — a 30 s window, comfortably longer than the broker's
    /// detect-and-promote latency at default scrape settings).
    pub fn new(addr: impl Into<String>, make: TransportMaker, resolve: AddrResolver) -> Self {
        let addr = addr.into();
        let transport = make(&addr);
        FailoverTransport {
            resolve,
            make,
            current: RwLock::new((addr, transport)),
            attempts: 150,
            delay: Duration::from_millis(200),
        }
    }

    /// Overrides the retry budget: `attempts` retries, `delay` apart.
    pub fn with_retry(mut self, attempts: u32, delay: Duration) -> Self {
        self.attempts = attempts;
        self.delay = delay;
        self
    }

    /// The address requests currently go to (moves after a failover).
    pub fn current_addr(&self) -> String {
        self.current.read().0.clone()
    }

    fn refresh(&self) {
        if let Some(addr) = (self.resolve)() {
            let mut current = self.current.write();
            if current.0 != addr {
                let transport = (self.make)(&addr);
                *current = (addr, transport);
            }
        }
    }
}

impl Transport for FailoverTransport {
    fn round_trip(&self, request: &Request) -> Result<Response, TransportError> {
        // A fence means the store refused the write before acting on it —
        // always safe to retry elsewhere. A transport error leaves the
        // outcome unknown, so only idempotent requests may be re-sent.
        let retryable = |outcome: &Result<Response, TransportError>| match outcome {
            Ok(resp) => is_fence_rejection(resp),
            Err(_) => request.idempotent,
        };
        let mut last = {
            let transport = self.current.read().1.clone();
            transport.round_trip(request)
        };
        if !retryable(&last) {
            return last;
        }
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(self.delay);
            }
            self.refresh();
            let transport = self.current.read().1.clone();
            last = transport.round_trip(request);
            if !retryable(&last) {
                return last;
            }
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Service;
    use parking_lot::Mutex;
    use sensorsafe_json::json;

    type Stores = Arc<Mutex<Vec<(String, Arc<dyn Service>)>>>;

    struct Scripted {
        name: &'static str,
        fenced: bool,
    }

    impl Service for Scripted {
        fn handle(&self, _req: &Request) -> Response {
            if self.fenced {
                Response::json_with_status(
                    Status::Conflict,
                    &json!({"error": "fenced", "epoch": 2}),
                )
            } else {
                Response::json(&json!({"server": (self.name)}))
            }
        }
    }

    fn maker(stores: Stores) -> TransportMaker {
        Arc::new(move |addr: &str| {
            let stores = stores.lock();
            let svc = stores
                .iter()
                .find(|(a, _)| a == addr)
                .map(|(_, s)| s.clone())
                .expect("unknown addr");
            Arc::new(crate::LocalTransport::new(svc)) as Arc<dyn Transport>
        })
    }

    #[test]
    fn fence_rejection_redirects_to_resolved_addr() {
        let stores: Stores = Arc::new(Mutex::new(vec![
            (
                "old".into(),
                Arc::new(Scripted {
                    name: "old",
                    fenced: true,
                }),
            ),
            (
                "new".into(),
                Arc::new(Scripted {
                    name: "new",
                    fenced: false,
                }),
            ),
        ]));
        let resolve: AddrResolver = Arc::new(|| Some("new".to_string()));
        let transport = FailoverTransport::new("old", maker(stores), resolve)
            .with_retry(3, Duration::from_millis(1));
        let resp = transport
            .round_trip(&Request::post_json("/api/upload", &json!({})))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(
            resp.json_body().unwrap()["server"].as_str(),
            Some("new"),
            "request must land on the promoted store"
        );
        assert_eq!(transport.current_addr(), "new");
    }

    #[test]
    fn non_fence_conflict_is_not_retried() {
        struct Conflicting(std::sync::atomic::AtomicU32);
        impl Service for Conflicting {
            fn handle(&self, _req: &Request) -> Response {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                Response::error(Status::Conflict, "account already exists")
            }
        }
        let svc = Arc::new(Conflicting(std::sync::atomic::AtomicU32::new(0)));
        let svc_for_stores = svc.clone();
        let stores: Stores = Arc::new(Mutex::new(vec![(
            "a".into(),
            svc_for_stores as Arc<dyn Service>,
        )]));
        let resolve: AddrResolver = Arc::new(|| Some("a".to_string()));
        let transport = FailoverTransport::new("a", maker(stores), resolve)
            .with_retry(5, Duration::from_millis(1));
        let resp = transport
            .round_trip(&Request::post_json("/api/register", &json!({})))
            .unwrap();
        assert_eq!(resp.status, Status::Conflict);
        assert_eq!(svc.0.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    /// Fails the first `failures` round trips with a transport error,
    /// then answers 200. `LocalTransport` can never produce a transport
    /// error, so ambiguous-outcome behavior needs a scripted transport.
    struct Flaky {
        failures: std::sync::atomic::AtomicU32,
        calls: Arc<std::sync::atomic::AtomicU32>,
    }

    impl Transport for Flaky {
        fn round_trip(&self, _req: &Request) -> Result<Response, TransportError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if self
                .failures
                .fetch_update(
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                    |n| n.checked_sub(1),
                )
                .is_ok()
            {
                Err(TransportError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "connection reset",
                )))
            } else {
                Ok(Response::json(&json!({"ok": true})))
            }
        }
    }

    fn flaky_failover(
        failures: u32,
        calls: Arc<std::sync::atomic::AtomicU32>,
    ) -> FailoverTransport {
        let make: TransportMaker = Arc::new(move |_addr: &str| {
            Arc::new(Flaky {
                failures: std::sync::atomic::AtomicU32::new(failures),
                calls: calls.clone(),
            }) as Arc<dyn Transport>
        });
        let resolve: AddrResolver = Arc::new(|| None);
        FailoverTransport::new("flaky", make, resolve).with_retry(5, Duration::from_millis(1))
    }

    #[test]
    fn transport_error_not_retried_for_non_idempotent_post() {
        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let transport = flaky_failover(1, calls.clone());
        // A plain POST write: the first attempt's outcome is unknown, so
        // re-sending could double-commit — the error must surface.
        let outcome = transport.round_trip(&Request::post_json("/api/upload", &json!({})));
        assert!(outcome.is_err(), "ambiguous failure must not be retried");
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn transport_error_retried_for_idempotent_requests() {
        // GETs are idempotent by construction.
        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let transport = flaky_failover(2, calls.clone());
        let resp = transport.round_trip(&Request::get("/health")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 3);
        // A POST opts in (reads-over-POST, token-carrying writes).
        let calls = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let transport = flaky_failover(2, calls.clone());
        let req = Request::post_json("/api/query", &json!({})).idempotent();
        let resp = transport.round_trip(&req).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn resolver_none_keeps_retrying_current_addr() {
        let stores: Stores = Arc::new(Mutex::new(vec![(
            "only".into(),
            Arc::new(Scripted {
                name: "only",
                fenced: false,
            }) as Arc<dyn Service>,
        )]));
        let resolve: AddrResolver = Arc::new(|| None);
        let transport = FailoverTransport::new("only", maker(stores), resolve)
            .with_retry(2, Duration::from_millis(1));
        let resp = transport.round_trip(&Request::get("/health")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(transport.current_addr(), "only");
    }
}
