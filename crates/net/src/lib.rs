//! Minimal HTTP/1.1 networking for SensorSafe.
//!
//! The paper's servers expose HTTP APIs ("it is included in the body of a
//! HTTPS POST request", §5.4) and web user interfaces. No async runtime
//! or HTTP crate is in the permitted dependency set, so this crate
//! implements the needed subset from scratch over `std::net`:
//!
//! * [`http`] — request/response model, parser, and serializer
//!   (`Content-Length` framing; GET/POST/PUT/DELETE; keep-alive).
//! * [`Router`] — path-pattern routing (`/api/data/:user`) dispatching to
//!   handler closures; implements [`Service`].
//! * [`Server`] — a blocking TCP acceptor with a crossbeam-channel thread
//!   pool and clean shutdown.
//! * [`HttpClient`] — a blocking client for consumer apps, contributor
//!   phones, and server-to-server calls (rule sync, key escrow).
//! * [`promtext`] — a tolerant Prometheus text-format parser, the inverse
//!   of `sensorsafe-obsv`'s exposition, used by the broker's fleet
//!   scraper to turn a store's `/metrics` body back into samples.
//! * [`Transport`] — an abstraction over "talk to a service": either real
//!   TCP ([`TcpTransport`]) or an in-process call ([`LocalTransport`]),
//!   so benches can measure architecture costs without kernel noise and
//!   examples/tests can exercise real sockets.
//! * [`failover`] — a fence-aware [`Transport`] wrapper
//!   ([`FailoverTransport`]) that refetches a store's address from the
//!   broker and retries when the store dies or rejects with a stale
//!   epoch (the client half of broker-coordinated failover).
//!
//! TLS is intentionally absent (see DESIGN.md substitutions): in the
//! paper HTTPS wraps this byte stream transparently.

pub mod codec;
pub mod debug;
pub mod evented;
pub mod failover;
pub mod http;
pub mod poll;
pub mod promtext;
mod router;
mod server;
pub mod traces;
mod transport;

pub use debug::{profile_response, spans_response, spans_table_html};
pub use evented::{EventedConfig, EventedServer};
pub use failover::{AddrResolver, FailoverTransport, TransportMaker};
pub use http::{Method, Request, Response, Status, TRACE_HEADER};
pub use promtext::{ParsedScrape, TextSample};
pub use router::{Params, Router};
pub use server::{Server, ServerMode, ThreadPoolServer};
pub use traces::traces_response;
pub use transport::{
    HttpClient, LocalTransport, TcpTransport, Transport, TransportError, DEFAULT_POOL_SIZE,
};

use std::sync::Arc;

/// Anything that turns a request into a response. Routers, whole servers
/// (data store, broker), and test doubles implement this.
pub trait Service: Send + Sync {
    /// Handles one request.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Service for F
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

impl Service for Arc<dyn Service> {
    fn handle(&self, request: &Request) -> Response {
        (**self).handle(request)
    }
}
