//! Shared profiling debug endpoints, served identically by the datastore
//! and the broker (like [`crate::traces`]):
//!
//! * `GET /debug/profile?seconds=N` — blocks for the window, then returns
//!   the folded-stack samples taken during it as collapsed-stack text
//!   (`kind;frame;... count` lines) that `flamegraph.pl` or speedscope
//!   ingest directly. `?hz=` retunes the process-wide sampling rate first
//!   (sticky, 0 pauses the sampler).
//! * `GET /debug/spans` — the continuous span-stats table as JSON: per
//!   span name, the count, total time, self time, and interpolated p99,
//!   plus sampler metadata. Totals are monotone across reads.

use crate::http::{Request, Response, Status};
use sensorsafe_json::{Map, Value};
use sensorsafe_obsv::prof;
use std::time::Duration;

/// Longest profiling window one request may hold a handler thread for.
pub const MAX_PROFILE_SECONDS: f64 = 30.0;

/// Window used when `?seconds=` is absent.
pub const DEFAULT_PROFILE_SECONDS: f64 = 2.0;

/// Serves `GET /debug/profile`: optionally retunes the sampler (`?hz=`),
/// then samples for the requested window and returns the folded stacks as
/// `text/plain`. Blocking the handler thread for the window is deliberate —
/// this is a debug endpoint, and the sampler itself never blocks.
pub fn profile_response(req: &Request) -> Response {
    let seconds = match req.query.get("seconds") {
        None => DEFAULT_PROFILE_SECONDS,
        Some(raw) => match raw.trim().parse::<f64>() {
            Ok(s) if s.is_finite() && s >= 0.0 => s.min(MAX_PROFILE_SECONDS),
            _ => return Response::error(Status::BadRequest, "bad seconds parameter"),
        },
    };
    if let Some(raw) = req.query.get("hz") {
        match raw.trim().parse::<u64>() {
            Ok(hz) => prof::set_sample_rate_hz(hz),
            Err(_) => return Response::error(Status::BadRequest, "bad hz parameter"),
        }
    }
    Response::text(prof::profile_window(Duration::from_secs_f64(seconds)))
}

/// Serves `GET /debug/spans`: the span-stats table plus sampler state.
pub fn spans_response(_req: &Request) -> Response {
    let rows: Vec<Value> = prof::span_stats()
        .iter()
        .map(|stat| {
            let mut row = Map::new();
            row.insert("name".into(), Value::from(stat.name.as_str()));
            row.insert("count".into(), Value::from(stat.count));
            row.insert(
                "total_ms".into(),
                Value::from(stat.total.as_secs_f64() * 1e3),
            );
            row.insert(
                "self_ms".into(),
                Value::from(stat.self_time.as_secs_f64() * 1e3),
            );
            row.insert("p99_ms".into(), Value::from(stat.p99.as_secs_f64() * 1e3));
            Value::Object(row)
        })
        .collect();
    let mut body = Map::new();
    body.insert("enabled".into(), Value::from(prof::enabled()));
    body.insert("sample_rate_hz".into(), Value::from(prof::sample_rate_hz()));
    body.insert("total_samples".into(), Value::from(prof::total_samples()));
    body.insert("spans".into(), Value::Array(rows));
    Response::json(&Value::Object(body))
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// The span-stats table as an HTML fragment for the servers' `/ui/spans`
/// pages (each server wraps it in its own chrome, behind its sessions).
pub fn spans_table_html() -> String {
    let mut html = String::from("<p>Sampler: ");
    html.push_str(&format!(
        "{} at {} Hz, {} samples total.</p>\n",
        if prof::enabled() {
            "enabled"
        } else {
            "disabled"
        },
        prof::sample_rate_hz(),
        prof::total_samples()
    ));
    html.push_str(
        "<table>\n<tr><th>span</th><th>count</th><th>total ms</th>\
         <th>self ms</th><th>p99 ms</th></tr>\n",
    );
    for stat in prof::span_stats() {
        html.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td></tr>\n",
            escape_html(&stat.name),
            stat.count,
            stat.total.as_secs_f64() * 1e3,
            stat.self_time.as_secs_f64() * 1e3,
            stat.p99.as_secs_f64() * 1e3,
        ));
    }
    html.push_str("</table>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_rejects_bad_parameters() {
        for (key, value) in [
            ("seconds", "soon"),
            ("seconds", "-1"),
            ("seconds", "inf"),
            ("hz", "fast"),
            ("hz", "-5"),
        ] {
            let resp = profile_response(&Request::get("/debug/profile").with_query(key, value));
            assert_eq!(resp.status, Status::BadRequest, "{key}={value}");
        }
    }

    #[test]
    fn profile_serves_folded_text_for_a_zero_window() {
        let resp = profile_response(&Request::get("/debug/profile").with_query("seconds", "0"));
        assert_eq!(resp.status, Status::Ok);
        let body = String::from_utf8(resp.body.clone()).unwrap();
        for line in body.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn profile_hz_parameter_retunes_sampler() {
        let before = prof::sample_rate_hz();
        let resp = profile_response(
            &Request::get("/debug/profile")
                .with_query("seconds", "0")
                .with_query("hz", "97"),
        );
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(prof::sample_rate_hz(), 97);
        prof::set_sample_rate_hz(before);
    }

    #[test]
    fn spans_endpoint_reports_recorded_spans_monotonically() {
        {
            let _g = prof::enter("net_debug_test_span");
        }
        let read = |resp: Response| -> (u64, f64) {
            let body = resp.json_body().unwrap();
            let row = body["spans"]
                .as_array()
                .unwrap()
                .iter()
                .find(|r| r["name"].as_str() == Some("net_debug_test_span"))
                .expect("span row present")
                .clone();
            (
                row["count"].as_u64().unwrap(),
                row["total_ms"].as_f64().unwrap(),
            )
        };
        let (count1, total1) = read(spans_response(&Request::get("/debug/spans")));
        {
            let _g = prof::enter("net_debug_test_span");
            std::thread::sleep(Duration::from_millis(1));
        }
        let (count2, total2) = read(spans_response(&Request::get("/debug/spans")));
        assert!(count2 > count1);
        assert!(total2 > total1);
    }

    #[test]
    fn spans_html_escapes_and_lists() {
        {
            let _g = prof::enter("net_debug_html_<span>");
        }
        let html = spans_table_html();
        assert!(html.contains("net_debug_html_&lt;span&gt;"));
        assert!(html.contains("<th>p99 ms</th>"));
    }
}
