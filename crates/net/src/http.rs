//! HTTP/1.1 request/response model, parser, and serializer.
//!
//! Supports the subset SensorSafe needs: the four common methods,
//! `Content-Length`-framed bodies (no chunked encoding), case-insensitive
//! headers, URL query strings with percent-decoding, and keep-alive.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};

/// The cross-process trace propagation header (stored lower-cased like
/// every other header). Value format: `<trace_id>-<parent_span_id>`, both
/// 16-digit hex — see [`sensorsafe_obsv::TraceContext`].
pub const TRACE_HEADER: &str = "x-sensorsafe-trace";

/// Request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Retrieve.
    Get,
    /// Create / invoke (API keys travel in POST bodies, §5.4).
    Post,
    /// Replace.
    Put,
    /// Remove.
    Delete,
}

impl Method {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "DELETE" => Some(Method::Delete),
            _ => None,
        }
    }
}

/// Response status codes used by SensorSafe services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200
    Ok,
    /// 201
    Created,
    /// 400
    BadRequest,
    /// 401
    Unauthorized,
    /// 403
    Forbidden,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 409
    Conflict,
    /// 413
    PayloadTooLarge,
    /// 431
    RequestHeaderFieldsTooLarge,
    /// 500
    InternalError,
    /// 503
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Created => 201,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::MethodNotAllowed => 405,
            Status::Conflict => 409,
            Status::PayloadTooLarge => 413,
            Status::RequestHeaderFieldsTooLarge => 431,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Created => "Created",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::MethodNotAllowed => "Method Not Allowed",
            Status::Conflict => "Conflict",
            Status::PayloadTooLarge => "Payload Too Large",
            Status::RequestHeaderFieldsTooLarge => "Request Header Fields Too Large",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }

    /// From a numeric code (client side).
    pub fn from_code(code: u16) -> Option<Status> {
        [
            Status::Ok,
            Status::Created,
            Status::BadRequest,
            Status::Unauthorized,
            Status::Forbidden,
            Status::NotFound,
            Status::MethodNotAllowed,
            Status::Conflict,
            Status::PayloadTooLarge,
            Status::RequestHeaderFieldsTooLarge,
            Status::InternalError,
            Status::ServiceUnavailable,
        ]
        .into_iter()
        .find(|s| s.code() == code)
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.code())
    }
}

/// Largest accepted request body (64 MiB — a day of multi-channel sensor
/// data fits comfortably; anything bigger is rejected, not buffered).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// Largest accepted message head (request/status line + headers,
/// including line terminators). A peer that streams more head bytes than
/// this without finishing its headers is answered `431` and closed —
/// the cap is enforced *while reading*, so a hostile client can never
/// claim more than this much memory for headers.
pub const MAX_HEAD_BYTES: usize = 32 * 1024;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path without the query string, e.g. `/api/data`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether a retrying transport may safely re-send this request after
    /// a transport error whose outcome is unknown (the server may have
    /// committed the effect before the response was lost). GETs are
    /// idempotent by construction; POSTs must opt in via
    /// [`Request::idempotent`] — e.g. reads-over-POST, or writes carrying
    /// their own idempotency token. Client-side only; never serialized.
    pub idempotent: bool,
}

impl Request {
    /// A bodyless GET.
    pub fn get(path: impl Into<String>) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            query: BTreeMap::new(),
            headers: BTreeMap::new(),
            body: Vec::new(),
            idempotent: true,
        }
    }

    /// A POST with a JSON body.
    pub fn post_json(path: impl Into<String>, json: &sensorsafe_json::Value) -> Request {
        let mut req = Request {
            method: Method::Post,
            path: path.into(),
            query: BTreeMap::new(),
            headers: BTreeMap::new(),
            body: json.to_string().into_bytes(),
            idempotent: false,
        };
        req.headers
            .insert("content-type".into(), "application/json".into());
        req
    }

    /// Marks the request safe to re-send after an ambiguous transport
    /// failure (see the [`Request::idempotent`] field).
    pub fn idempotent(mut self) -> Request {
        self.idempotent = true;
        self
    }

    /// Adds a query parameter.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Request {
        self.query.insert(key.into(), value.into());
        self
    }

    /// A header value (key is matched case-insensitively).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Parses the body as JSON.
    pub fn json(&self) -> Result<sensorsafe_json::Value, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        sensorsafe_json::parse(text).map_err(|e| e.to_string())
    }

    /// The trace context propagated by the caller, if the request carries
    /// a well-formed [`TRACE_HEADER`]. Malformed values are ignored —
    /// propagation is best-effort and must never fail a request.
    pub fn trace_context(&self) -> Option<sensorsafe_obsv::TraceContext> {
        self.header(TRACE_HEADER)
            .and_then(sensorsafe_obsv::TraceContext::parse)
    }

    /// Stamps the request with an explicit trace context (tests and
    /// clients that manage contexts by hand; the wire client injects the
    /// ambient context automatically in [`write_request`]).
    pub fn with_trace_context(mut self, ctx: sensorsafe_obsv::TraceContext) -> Request {
        self.headers.insert(TRACE_HEADER.into(), ctx.header_value());
        self
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// Headers, keys lower-cased.
    pub headers: BTreeMap<String, String>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: BTreeMap::new(),
            body: Vec::new(),
        }
    }

    /// A 200 with a JSON body.
    pub fn json(value: &sensorsafe_json::Value) -> Response {
        Response::json_with_status(Status::Ok, value)
    }

    /// A JSON body with an explicit status.
    pub fn json_with_status(status: Status, value: &sensorsafe_json::Value) -> Response {
        let mut resp = Response::status(status);
        resp.headers
            .insert("content-type".into(), "application/json".into());
        resp.body = value.to_string().into_bytes();
        resp
    }

    /// A 200 with a plain-text body (metrics exposition).
    pub fn text(body: impl Into<String>) -> Response {
        let mut resp = Response::status(Status::Ok);
        resp.headers.insert(
            "content-type".into(),
            "text/plain; version=0.0.4; charset=utf-8".into(),
        );
        resp.body = body.into().into_bytes();
        resp
    }

    /// A 200 with an HTML body (the web user interfaces).
    pub fn html(body: impl Into<String>) -> Response {
        let mut resp = Response::status(Status::Ok);
        resp.headers
            .insert("content-type".into(), "text/html; charset=utf-8".into());
        resp.body = body.into().into_bytes();
        resp
    }

    /// An error with a JSON `{"error": msg}` body.
    pub fn error(status: Status, msg: &str) -> Response {
        Response::json_with_status(status, &sensorsafe_json::json!({ "error": msg }))
    }

    /// Parses the body as JSON.
    pub fn json_body(&self) -> Result<sensorsafe_json::Value, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        sensorsafe_json::parse(text).map_err(|e| e.to_string())
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn parse_query(qs: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => map.insert(percent_decode(k), percent_decode(v)),
            None => map.insert(percent_decode(pair), String::new()),
        };
    }
    map
}

pub(crate) fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Parses a request line (`GET /path?query HTTP/1.1`) into method,
/// decoded path, and decoded query map. Shared by the blocking reader
/// and the incremental [`crate::codec::RequestDecoder`], so the two
/// parsers can never disagree on the head grammar.
pub(crate) fn parse_request_line(
    line: &str,
) -> std::io::Result<(Method, String, BTreeMap<String, String>)> {
    let mut parts = line.trim_end().splitn(3, ' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| invalid("bad method"))?;
    let target = parts
        .next()
        .ok_or_else(|| invalid("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| invalid("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok((method, percent_decode(raw_path), parse_query(raw_query)))
}

/// Parses a status line (`HTTP/1.1 200 OK`). Shared like
/// [`parse_request_line`].
pub(crate) fn parse_status_line(line: &str) -> std::io::Result<Status> {
    let mut parts = line.trim_end().splitn(3, ' ');
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;
    Status::from_code(code).ok_or_else(|| invalid("unknown status code"))
}

/// Parses one `key: value` header line (already known non-empty).
pub(crate) fn parse_header_line(line: &str) -> std::io::Result<(String, String)> {
    let (key, value) = line
        .trim_end()
        .split_once(':')
        .ok_or_else(|| invalid("bad header"))?;
    Ok((key.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Extracts and bounds-checks `content-length`.
pub(crate) fn parse_content_length(headers: &BTreeMap<String, String>) -> std::io::Result<usize> {
    let content_length: usize = headers
        .get("content-length")
        .map(|v| v.parse().map_err(|_| invalid("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(invalid("body too large"));
    }
    Ok(content_length)
}

/// The response status a server should answer when a read failed with
/// `e`: `431` for a head that overran [`MAX_HEAD_BYTES`], `413` for a
/// body beyond [`MAX_BODY`], `400` for anything else malformed.
pub fn error_status(e: &std::io::Error) -> Status {
    if e.kind() != std::io::ErrorKind::InvalidData {
        return Status::BadRequest;
    }
    match e.to_string().as_str() {
        "headers too large" => Status::RequestHeaderFieldsTooLarge,
        "body too large" => Status::PayloadTooLarge,
        _ => Status::BadRequest,
    }
}

/// Reads one line, debiting its bytes from the shared head budget. At an
/// exhausted budget mid-line the head is oversized — that is
/// indistinguishable from a hostile endless header stream, so it errors
/// rather than buffering on.
fn read_head_line<R: Read>(
    reader: &mut BufReader<R>,
    budget: &mut usize,
) -> std::io::Result<String> {
    let mut line = String::new();
    let read = reader.by_ref().take(*budget as u64).read_line(&mut line)?;
    *budget -= read;
    if !line.ends_with('\n') && *budget == 0 {
        return Err(invalid("headers too large"));
    }
    Ok(line)
}

/// Reads one request from a stream. Returns `Ok(None)` on a clean EOF
/// before any bytes (keep-alive connection closed by peer).
pub fn read_request<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<Option<Request>> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_head_line(reader, &mut budget)?;
    if line.is_empty() {
        return Ok(None);
    }
    let (method, path, query) = parse_request_line(&line)?;
    let mut headers = BTreeMap::new();
    loop {
        let header_line = read_head_line(reader, &mut budget)?;
        if header_line.is_empty() {
            return Err(invalid("EOF in headers"));
        }
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (key, value) = parse_header_line(trimmed)?;
        headers.insert(key, value);
    }
    let content_length = parse_content_length(&headers)?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        idempotent: method == Method::Get,
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Writes one request (client side).
pub fn write_request<W: Write>(writer: &mut W, req: &Request) -> std::io::Result<()> {
    let mut target = percent_encode(&req.path);
    if !req.query.is_empty() {
        target.push('?');
        let qs: Vec<String> = req
            .query
            .iter()
            .map(|(k, v)| format!("{}={}", percent_encode(k), percent_encode(v)))
            .collect();
        target.push_str(&qs.join("&"));
    }
    write!(writer, "{} {} HTTP/1.1\r\n", req.method.as_str(), target)?;
    for (k, v) in &req.headers {
        if k == "content-length" {
            continue; // computed below
        }
        write!(writer, "{k}: {v}\r\n")?;
    }
    // Trace propagation: outbound requests inherit the thread's ambient
    // trace context (the active server span, or a client's context scope)
    // unless the caller already stamped one. Serialized here — not cloned
    // into `req.headers` — so the hot path stays allocation-free.
    if !req.headers.contains_key(TRACE_HEADER) {
        if let Some(ctx) = sensorsafe_obsv::trace::current_context() {
            write!(writer, "{TRACE_HEADER}: {}\r\n", ctx.header_value())?;
        }
    }
    write!(writer, "content-length: {}\r\n\r\n", req.body.len())?;
    writer.write_all(&req.body)?;
    writer.flush()
}

/// Reads one response (client side).
pub fn read_response<R: Read>(reader: &mut BufReader<R>) -> std::io::Result<Response> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_head_line(reader, &mut budget)?;
    if line.is_empty() {
        return Err(invalid("EOF before status line"));
    }
    let status = parse_status_line(&line)?;
    let mut headers = BTreeMap::new();
    loop {
        let header_line = read_head_line(reader, &mut budget)?;
        if header_line.is_empty() {
            return Err(invalid("EOF in headers"));
        }
        let trimmed = header_line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (key, value) = parse_header_line(trimmed)?;
        headers.insert(key, value);
    }
    let content_length = parse_content_length(&headers)?;
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Writes one response (server side).
pub fn write_response<W: Write>(writer: &mut W, resp: &Response) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\n",
        resp.status.code(),
        resp.status.reason()
    )?;
    for (k, v) in &resp.headers {
        if k == "content-length" {
            continue;
        }
        write!(writer, "{k}: {v}\r\n")?;
    }
    write!(writer, "content-length: {}\r\n\r\n", resp.body.len())?;
    writer.write_all(&resp.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_json::json;

    fn roundtrip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        read_request(&mut reader).unwrap().unwrap()
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut wire = Vec::new();
        write_response(&mut wire, resp).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        read_response(&mut reader).unwrap()
    }

    #[test]
    fn request_roundtrip_with_query_and_body() {
        let req = Request::post_json("/api/data", &json!({"k": [1, 2]}))
            .with_query("user", "alice smith")
            .with_query("limit", "10");
        let back = roundtrip_request(&req);
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.path, "/api/data");
        assert_eq!(back.query.get("user").unwrap(), "alice smith");
        assert_eq!(back.query.get("limit").unwrap(), "10");
        assert_eq!(back.json().unwrap(), json!({"k": [1, 2]}));
        assert_eq!(back.header("Content-Type"), Some("application/json"));
    }

    #[test]
    fn get_roundtrip() {
        let back = roundtrip_request(&Request::get("/health"));
        assert_eq!(back.method, Method::Get);
        assert_eq!(back.path, "/health");
        assert!(back.body.is_empty());
        assert!(back.query.is_empty());
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::json(&json!({"ok": true}));
        let back = roundtrip_response(&resp);
        assert_eq!(back.status, Status::Ok);
        assert_eq!(back.json_body().unwrap(), json!({"ok": true}));
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::error(Status::Unauthorized, "bad key");
        assert_eq!(resp.status.code(), 401);
        assert_eq!(resp.json_body().unwrap()["error"].as_str(), Some("bad key"));
        assert!(!resp.status.is_success());
    }

    #[test]
    fn html_response() {
        let resp = Response::html("<h1>hi</h1>");
        let back = roundtrip_response(&resp);
        assert!(back.headers["content-type"].starts_with("text/html"));
        assert_eq!(back.body, b"<h1>hi</h1>");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%E4%B8%96"), "世");
        assert_eq!(percent_decode("100%"), "100%"); // malformed escape passes through
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn unicode_path_roundtrip() {
        let req = Request::get("/files/世界");
        let back = roundtrip_request(&req);
        assert_eq!(back.path, "/files/世界");
    }

    #[test]
    fn keep_alive_two_requests_on_one_stream() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::get("/a")).unwrap();
        write_request(&mut wire, &Request::get("/b")).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/a");
        assert_eq!(read_request(&mut reader).unwrap().unwrap().path, "/b");
        assert!(read_request(&mut reader).unwrap().is_none());
    }

    #[test]
    fn malformed_requests_rejected() {
        for wire in [
            "NOTAMETHOD / HTTP/1.1\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            "GET / HTTP/1.1\r\ncontent-length: abc\r\n\r\n",
        ] {
            let mut reader = BufReader::new(wire.as_bytes());
            assert!(read_request(&mut reader).is_err(), "should reject {wire:?}");
        }
    }

    #[test]
    fn oversized_body_rejected() {
        let wire = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::from_code(404), Some(Status::NotFound));
        assert_eq!(Status::from_code(418), None);
        assert!(Status::Created.is_success());
        assert!(!Status::InternalError.is_success());
    }

    #[test]
    fn truncated_body_is_io_error() {
        let wire = "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(read_request(&mut reader).is_err());
    }
}
