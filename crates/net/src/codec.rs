//! Incremental HTTP/1.1 codec for readiness-driven I/O.
//!
//! The blocking parser in [`crate::http`] assumes it can sit in a read
//! until a full message arrives — fine for a thread-per-connection
//! server, useless for an event loop where a message trickles in across
//! many readiness events. [`RequestDecoder`] / [`ResponseDecoder`] are
//! the evented counterparts: bytes are [`fed`](RequestDecoder::feed) in
//! whatever fragments the socket yields, and a complete message pops out
//! once its final byte has arrived.
//!
//! Both decoders share the head grammar helpers with the blocking parser
//! (`parse_request_line`, `parse_header_line`, ...), so the two can
//! never drift: `crates/net/tests/codec_incremental.rs` proptests feed
//! identical wire bytes to both at arbitrary split points and assert
//! byte-exact agreement.
//!
//! Resource bounds are enforced *while buffering*, not after: a head
//! that exceeds [`MAX_HEAD_BYTES`] fails with `431` and a declared body
//! beyond [`MAX_BODY`](crate::http::MAX_BODY) fails with `413` before a
//! single body byte is stored, so a hostile peer can never claim
//! unbounded memory.

use crate::http::{
    invalid, parse_content_length, parse_header_line, parse_request_line, parse_status_line,
    Request, Response, Status, MAX_HEAD_BYTES,
};
use std::collections::BTreeMap;

/// Why a decoder gave up on its stream. Terminal: the connection should
/// answer `status` (servers) or surface the message (clients) and close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The response status a server should answer with (`400`, `413`,
    /// or `431`).
    pub status: Status,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status.code())
    }
}

/// One decoding step's outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded<T> {
    /// The buffered bytes do not hold a complete message yet.
    NeedMore,
    /// A complete message; its bytes have been consumed from the buffer.
    Item(T),
    /// The stream is unrecoverable (malformed or over a resource bound).
    Failed(DecodeError),
}

fn map_err(e: std::io::Error) -> DecodeError {
    DecodeError {
        status: crate::http::error_status(&e),
        message: e.to_string(),
    }
}

/// The phase a decoder is in between messages.
enum Phase {
    /// Accumulating head bytes; `scan` is the next unexamined offset and
    /// `line_start` the beginning of the line being scanned.
    Head { scan: usize, line_start: usize },
    /// Head parsed; waiting for `need` body bytes.
    Body { need: usize },
    /// Terminal failure; replayed on every poll.
    Failed(DecodeError),
}

/// Head-agnostic incremental framing shared by both decoders: find the
/// blank line, split the head into lines, count body bytes.
struct Framer {
    buf: Vec<u8>,
    phase: Phase,
    /// Parsed head, parked while body bytes accumulate.
    head_lines: Vec<String>,
}

impl Framer {
    fn new() -> Framer {
        Framer {
            buf: Vec::new(),
            phase: Phase::Head {
                scan: 0,
                line_start: 0,
            },
            head_lines: Vec::new(),
        }
    }

    fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn fail(&mut self, err: DecodeError) -> Decoded<(Vec<String>, Vec<u8>)> {
        self.phase = Phase::Failed(err.clone());
        Decoded::Failed(err)
    }

    fn at_boundary(&self) -> bool {
        matches!(self.phase, Phase::Head { scan: 0, .. }) && self.buf.is_empty()
    }

    fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Advances the state machine; yields the head lines (request/status
    /// line first, no blank terminator) plus the body bytes.
    fn poll(&mut self) -> Decoded<(Vec<String>, Vec<u8>)> {
        // Every arm returns: callers drive the machine by polling again.
        match &mut self.phase {
            Phase::Failed(err) => Decoded::Failed(err.clone()),
            Phase::Head { scan, line_start } => {
                let mut found_head_end = None;
                while *scan < self.buf.len() {
                    let at = *scan;
                    *scan += 1;
                    if self.buf[at] != b'\n' {
                        continue;
                    }
                    let line = &self.buf[*line_start..=at];
                    let text = match std::str::from_utf8(line) {
                        Ok(text) => text,
                        Err(_) => {
                            // The blocking parser's `read_line` fails
                            // the same way on a non-UTF-8 head line.
                            return self.fail(map_err(invalid("head is not valid UTF-8")));
                        }
                    };
                    let first_line = *line_start == 0;
                    *line_start = at + 1;
                    if !first_line && text.trim_end().is_empty() {
                        found_head_end = Some(at + 1);
                        break;
                    }
                    self.head_lines.push(text.to_string());
                }
                let Some(head_end) = found_head_end else {
                    if self.buf.len() > MAX_HEAD_BYTES {
                        return self.fail(map_err(invalid("headers too large")));
                    }
                    return Decoded::NeedMore;
                };
                if head_end > MAX_HEAD_BYTES {
                    return self.fail(map_err(invalid("headers too large")));
                }
                // Body bytes (if any) slide to the front; head bytes
                // are done with.
                self.buf.drain(..head_end);
                // An empty first line is still handed to the head
                // parser so it rejects exactly like the blocking
                // reader ("bad method" / "missing version").
                if self.head_lines.is_empty() {
                    self.head_lines.push(String::new());
                }
                self.phase = Phase::Body { need: usize::MAX };
                Decoded::Item((std::mem::take(&mut self.head_lines), Vec::new()))
            }
            Phase::Body { need } => {
                if self.buf.len() < *need {
                    return Decoded::NeedMore;
                }
                let body: Vec<u8> = self.buf.drain(..*need).collect();
                self.phase = Phase::Head {
                    scan: 0,
                    line_start: 0,
                };
                Decoded::Item((Vec::new(), body))
            }
        }
    }
}

/// Incremental request parser for the evented server. See module docs.
pub struct RequestDecoder {
    framer: Framer,
    /// Head parsed and body length known; awaiting body bytes.
    pending: Option<(Request, usize)>,
}

impl Default for RequestDecoder {
    fn default() -> Self {
        RequestDecoder::new()
    }
}

impl RequestDecoder {
    /// An empty decoder at a message boundary.
    pub fn new() -> RequestDecoder {
        RequestDecoder {
            framer: Framer::new(),
            pending: None,
        }
    }

    /// Buffers more bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.framer.feed(bytes);
    }

    /// Bytes currently buffered (bounded by the head cap plus one
    /// declared-in-bounds body).
    pub fn buffered(&self) -> usize {
        self.framer.buffered()
    }

    /// True when the stream sits exactly between messages — an EOF here
    /// is a clean keep-alive close, anywhere else it is a truncation.
    pub fn at_boundary(&self) -> bool {
        self.pending.is_none() && self.framer.at_boundary()
    }

    /// Attempts to decode the next complete request. Call again after
    /// more [`feed`](RequestDecoder::feed)s, or immediately after an
    /// [`Decoded::Item`] to drain pipelined requests.
    pub fn poll(&mut self) -> Decoded<Request> {
        loop {
            if let Some((_, need)) = &self.pending {
                self.framer.phase = Phase::Body { need: *need };
            }
            match self.framer.poll() {
                Decoded::NeedMore => return Decoded::NeedMore,
                Decoded::Failed(err) => return Decoded::Failed(err),
                Decoded::Item((lines, body)) => {
                    if let Some((mut request, _)) = self.pending.take() {
                        request.body = body;
                        return Decoded::Item(request);
                    }
                    match parse_request_head(&lines) {
                        Ok((request, content_length)) => {
                            self.pending = Some((request, content_length));
                            // Loop: the body (possibly empty) may already
                            // be buffered.
                        }
                        Err(e) => {
                            let err = map_err(e);
                            self.framer.phase = Phase::Failed(err.clone());
                            return Decoded::Failed(err);
                        }
                    }
                }
            }
        }
    }
}

/// Incremental response parser (the client-side mirror image, used by
/// the codec equivalence tests and available to future evented clients).
pub struct ResponseDecoder {
    framer: Framer,
    pending: Option<(Response, usize)>,
}

impl Default for ResponseDecoder {
    fn default() -> Self {
        ResponseDecoder::new()
    }
}

impl ResponseDecoder {
    /// An empty decoder at a message boundary.
    pub fn new() -> ResponseDecoder {
        ResponseDecoder {
            framer: Framer::new(),
            pending: None,
        }
    }

    /// Buffers more bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.framer.feed(bytes);
    }

    /// True when the stream sits exactly between messages.
    pub fn at_boundary(&self) -> bool {
        self.pending.is_none() && self.framer.at_boundary()
    }

    /// Attempts to decode the next complete response.
    pub fn poll(&mut self) -> Decoded<Response> {
        loop {
            if let Some((_, need)) = &self.pending {
                self.framer.phase = Phase::Body { need: *need };
            }
            match self.framer.poll() {
                Decoded::NeedMore => return Decoded::NeedMore,
                Decoded::Failed(err) => return Decoded::Failed(err),
                Decoded::Item((lines, body)) => {
                    if let Some((mut response, _)) = self.pending.take() {
                        response.body = body;
                        return Decoded::Item(response);
                    }
                    match parse_response_head(&lines) {
                        Ok((response, content_length)) => {
                            self.pending = Some((response, content_length));
                        }
                        Err(e) => {
                            let err = map_err(e);
                            self.framer.phase = Phase::Failed(err.clone());
                            return Decoded::Failed(err);
                        }
                    }
                }
            }
        }
    }
}

fn parse_headers(lines: &[String]) -> std::io::Result<BTreeMap<String, String>> {
    let mut headers = BTreeMap::new();
    for line in lines {
        let (key, value) = parse_header_line(line.trim_end())?;
        headers.insert(key, value);
    }
    Ok(headers)
}

fn parse_request_head(lines: &[String]) -> std::io::Result<(Request, usize)> {
    let (first, rest) = lines.split_first().ok_or_else(|| invalid("empty head"))?;
    let (method, path, query) = parse_request_line(first)?;
    let headers = parse_headers(rest)?;
    let content_length = parse_content_length(&headers)?;
    Ok((
        Request {
            idempotent: method == crate::http::Method::Get,
            method,
            path,
            query,
            headers,
            body: Vec::new(),
        },
        content_length,
    ))
}

fn parse_response_head(lines: &[String]) -> std::io::Result<(Response, usize)> {
    let (first, rest) = lines.split_first().ok_or_else(|| invalid("empty head"))?;
    let status = parse_status_line(first)?;
    let headers = parse_headers(rest)?;
    let content_length = parse_content_length(&headers)?;
    Ok((
        Response {
            status,
            headers,
            body: Vec::new(),
        },
        content_length,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{write_request, write_response, Method};
    use sensorsafe_json::json;

    #[test]
    fn byte_at_a_time_request() {
        let req = Request::post_json("/api/data", &json!({"k": [1, 2, 3]}))
            .with_query("user", "alice")
            .with_trace_context(sensorsafe_obsv::TraceContext::root());
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut decoder = RequestDecoder::new();
        for (i, b) in wire.iter().enumerate() {
            decoder.feed(std::slice::from_ref(b));
            match decoder.poll() {
                Decoded::NeedMore => assert!(i + 1 < wire.len(), "must complete at last byte"),
                Decoded::Item(back) => {
                    assert_eq!(i + 1, wire.len(), "completed early at byte {i}");
                    assert_eq!(back.method, Method::Post);
                    assert_eq!(back.path, "/api/data");
                    assert_eq!(back.query.get("user").map(String::as_str), Some("alice"));
                    assert_eq!(back.json().unwrap(), json!({"k": [1, 2, 3]}));
                }
                Decoded::Failed(e) => panic!("unexpected decode failure: {e}"),
            }
        }
        assert!(decoder.at_boundary());
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::get("/a")).unwrap();
        write_request(&mut wire, &Request::get("/b")).unwrap();
        write_request(&mut wire, &Request::post_json("/c", &json!(1))).unwrap();
        let mut decoder = RequestDecoder::new();
        decoder.feed(&wire);
        let mut paths = Vec::new();
        while let Decoded::Item(req) = decoder.poll() {
            paths.push(req.path);
        }
        assert_eq!(paths, ["/a", "/b", "/c"]);
        assert!(decoder.at_boundary());
    }

    #[test]
    fn oversized_head_fails_431_while_streaming() {
        let mut decoder = RequestDecoder::new();
        decoder.feed(b"GET / HTTP/1.1\r\n");
        // An endless header stream must fail once past the cap even
        // though no blank line ever arrives.
        let filler = format!("x-filler: {}\r\n", "y".repeat(1000));
        for _ in 0..40 {
            decoder.feed(filler.as_bytes());
            if let Decoded::Failed(err) = decoder.poll() {
                assert_eq!(err.status, Status::RequestHeaderFieldsTooLarge);
                assert_eq!(
                    crate::http::error_status(&invalid(&err.message)).code(),
                    431
                );
                return;
            }
        }
        panic!("decoder never enforced the head cap");
    }

    #[test]
    fn oversized_body_fails_413_before_buffering() {
        let mut decoder = RequestDecoder::new();
        decoder.feed(
            format!(
                "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                crate::http::MAX_BODY + 1
            )
            .as_bytes(),
        );
        match decoder.poll() {
            Decoded::Failed(err) => assert_eq!(err.status, Status::PayloadTooLarge),
            other => panic!("expected 413 failure, got {other:?}"),
        }
    }

    #[test]
    fn garbage_fails_400() {
        let mut decoder = RequestDecoder::new();
        decoder.feed(b"BOGUS REQUEST LINE\r\n\r\n");
        match decoder.poll() {
            Decoded::Failed(err) => assert_eq!(err.status, Status::BadRequest),
            other => panic!("expected failure, got {other:?}"),
        }
        // Terminal: stays failed on subsequent polls.
        assert!(matches!(decoder.poll(), Decoded::Failed(_)));
    }

    #[test]
    fn response_roundtrip_split() {
        let resp = Response::json(&json!({"ok": true, "n": 7}));
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        for split in 0..wire.len() {
            let mut decoder = ResponseDecoder::new();
            decoder.feed(&wire[..split]);
            let _ = decoder.poll();
            decoder.feed(&wire[split..]);
            match decoder.poll() {
                Decoded::Item(back) => {
                    assert_eq!(back.status, Status::Ok);
                    assert_eq!(back.body, resp.body);
                }
                other => panic!("split {split}: {other:?}"),
            }
        }
    }

    #[test]
    fn zero_length_body_completes_without_extra_bytes() {
        let mut decoder = RequestDecoder::new();
        decoder.feed(b"GET /x HTTP/1.1\r\n\r\n");
        match decoder.poll() {
            Decoded::Item(req) => assert_eq!(req.path, "/x"),
            other => panic!("{other:?}"),
        }
        assert!(decoder.at_boundary());
    }
}
