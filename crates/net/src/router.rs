//! Path-pattern routing.
//!
//! Patterns are `/`-separated literals and `:name` captures:
//! `/api/data/:user` matches `/api/data/alice` with `user = "alice"`.
//! Dispatch picks the first registered route whose method and pattern
//! match; a path that matches some pattern with a different method yields
//! 405, otherwise 404.

use crate::http::{Method, Request, Response, Status};
use crate::Service;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Captured path parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params(BTreeMap<String, String>);

impl Params {
    /// The captured value of `:name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0.get(name).map(String::as_str)
    }

    /// The captured value, or a 400 response for the caller to return.
    pub fn require(&self, name: &str) -> Result<&str, Response> {
        self.get(name)
            .ok_or_else(|| Response::error(Status::BadRequest, &format!("missing '{name}'")))
    }
}

type Handler = Arc<dyn Fn(&Request, &Params) -> Response + Send + Sync>;

struct Route {
    method: Method,
    raw_pattern: String,
    pattern: Vec<Pattern>,
    handler: Handler,
}

enum Pattern {
    Literal(String),
    Capture(String),
}

fn compile(pattern: &str) -> Vec<Pattern> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|seg| match seg.strip_prefix(':') {
            Some(name) => Pattern::Capture(name.to_string()),
            None => Pattern::Literal(seg.to_string()),
        })
        .collect()
}

fn match_path(pattern: &[Pattern], path: &str) -> Option<Params> {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if segments.len() != pattern.len() {
        return None;
    }
    let mut params = Params::default();
    for (pat, seg) in pattern.iter().zip(&segments) {
        match pat {
            Pattern::Literal(lit) if lit == seg => {}
            Pattern::Literal(_) => return None,
            Pattern::Capture(name) => {
                params.0.insert(name.clone(), (*seg).to_string());
            }
        }
    }
    Some(params)
}

/// A method+pattern dispatcher.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a route.
    pub fn route(
        &mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.routes.push(Route {
            method,
            raw_pattern: pattern.to_string(),
            pattern: compile(pattern),
            handler: Arc::new(handler),
        });
        self
    }

    /// The registered pattern a request would dispatch to, e.g.
    /// `"/api/data/:user"` for `GET /api/data/alice`. Metrics label
    /// endpoints by pattern rather than by concrete path, keeping label
    /// cardinality bounded by the route table.
    pub fn match_pattern(&self, method: Method, path: &str) -> Option<&str> {
        self.routes
            .iter()
            .find(|r| r.method == method && match_path(&r.pattern, path).is_some())
            .map(|r| r.raw_pattern.as_str())
    }

    /// Registers a GET route.
    pub fn get(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Get, pattern, handler)
    }

    /// Registers a POST route.
    pub fn post(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Post, pattern, handler)
    }

    /// Registers a PUT route.
    pub fn put(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Put, pattern, handler)
    }

    /// Registers a DELETE route.
    pub fn delete(
        &mut self,
        pattern: &str,
        handler: impl Fn(&Request, &Params) -> Response + Send + Sync + 'static,
    ) -> &mut Router {
        self.route(Method::Delete, pattern, handler)
    }
}

impl Service for Router {
    fn handle(&self, request: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_path(&route.pattern, &request.path) {
                if route.method == request.method {
                    return (route.handler)(request, &params);
                }
                path_matched = true;
            }
        }
        if path_matched {
            Response::error(Status::MethodNotAllowed, "method not allowed")
        } else {
            Response::error(Status::NotFound, "no such route")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_json::json;

    fn router() -> Router {
        let mut r = Router::new();
        r.get("/health", |_, _| Response::json(&json!({"ok": true})));
        r.get("/api/data/:user", |_, params| {
            Response::json(&json!({"user": (params.get("user").unwrap())}))
        });
        r.post("/api/data/:user", |req, params| {
            Response::json(&json!({
                "user": (params.get("user").unwrap()),
                "bytes": (req.body.len()),
            }))
        });
        r.get("/api/:a/:b", |_, params| {
            Response::json(&json!({
                "a": (params.get("a").unwrap()),
                "b": (params.get("b").unwrap()),
            }))
        });
        r
    }

    #[test]
    fn literal_route() {
        let resp = router().handle(&Request::get("/health"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.json_body().unwrap()["ok"].as_bool(), Some(true));
    }

    #[test]
    fn capture_route() {
        let resp = router().handle(&Request::get("/api/data/alice"));
        assert_eq!(resp.json_body().unwrap()["user"].as_str(), Some("alice"));
    }

    #[test]
    fn method_dispatch() {
        let req = Request::post_json("/api/data/alice", &json!({"x": 1}));
        let resp = router().handle(&req);
        assert_eq!(resp.json_body().unwrap()["bytes"].as_i64(), Some(7));
    }

    #[test]
    fn first_match_wins() {
        // `/api/data/:user` is registered before `/api/:a/:b`.
        let resp = router().handle(&Request::get("/api/data/alice"));
        assert!(resp.json_body().unwrap().get("user").is_some());
        // A non-"data" middle segment falls through to the generic route.
        let resp2 = router().handle(&Request::get("/api/users/bob"));
        assert_eq!(resp2.json_body().unwrap()["a"].as_str(), Some("users"));
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let missing = router().handle(&Request::get("/nope"));
        assert_eq!(missing.status, Status::NotFound);
        let wrong_method = router().handle(&Request {
            method: Method::Delete,
            ..Request::get("/health")
        });
        assert_eq!(wrong_method.status, Status::MethodNotAllowed);
    }

    #[test]
    fn trailing_slash_equivalence() {
        let resp = router().handle(&Request::get("/health/"));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn segment_count_must_match() {
        assert_eq!(
            router().handle(&Request::get("/api/data")).status,
            Status::NotFound
        );
        assert_eq!(
            router()
                .handle(&Request::get("/api/data/alice/extra"))
                .status,
            Status::NotFound
        );
    }

    #[test]
    fn params_require() {
        let p = Params::default();
        assert!(p.require("user").is_err());
    }

    #[test]
    fn match_pattern_returns_registered_pattern() {
        let r = router();
        assert_eq!(
            r.match_pattern(Method::Get, "/api/data/alice"),
            Some("/api/data/:user")
        );
        assert_eq!(r.match_pattern(Method::Get, "/health"), Some("/health"));
        assert_eq!(r.match_pattern(Method::Delete, "/health"), None);
        assert_eq!(r.match_pattern(Method::Get, "/nope"), None);
    }
}
