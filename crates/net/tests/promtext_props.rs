//! Property-based tests for the Prometheus text parser: the edge cases
//! the fleet scraper can hit in the wild — label values needing escapes,
//! non-finite sample values, timestamps, and OpenMetrics exemplar
//! suffixes — all parse back exactly and never panic.

use proptest::prelude::*;
use sensorsafe_net::promtext::parse;

fn arb_label_key() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,8}"
}

/// Label values with the characters the exposition format must escape
/// (`\`, `"`, newline) mixed into ordinary text.
fn arb_label_value() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            "[a-zA-Z0-9 .:/+-]".prop_map(|s: String| s),
            Just("\\".to_string()),
            Just("\"".to_string()),
            Just("\n".to_string()),
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

fn escape_label_value(raw: &str) -> String {
    let mut out = String::new();
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sample values as (wire spelling, expected f64), covering the IEEE
/// spellings the 0.0.4 format allows.
fn arb_value() -> impl Strategy<Value = (String, f64)> {
    prop_oneof![
        any::<i32>().prop_map(|n| (n.to_string(), n as f64)),
        (-1.0e9f64..1.0e9).prop_map(|f| (format!("{f:?}"), f)),
        Just(("NaN".to_string(), f64::NAN)),
        Just(("+Inf".to_string(), f64::INFINITY)),
        Just(("-Inf".to_string(), f64::NEG_INFINITY)),
    ]
}

/// Optional suffix after the value: nothing, a timestamp, an exemplar, or
/// a timestamp followed by an exemplar. All must parse; exemplars are
/// ignored.
fn arb_suffix() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        any::<i64>().prop_map(|ts| format!(" {ts}")),
        Just(" # {trace_id=\"abc123\"} 0.5".to_string()),
        any::<i64>().prop_map(|ts| format!(" {ts} # {{trace_id=\"abc123\"}} 0.5 {ts}")),
    ]
}

proptest! {
    /// A well-formed sample line with escaped labels, any legal value
    /// spelling, and any legal suffix parses to exactly one sample with
    /// the labels and value intact.
    #[test]
    fn escaped_labels_and_odd_values_roundtrip(
        labels in prop::collection::btree_map(arb_label_key(), arb_label_value(), 0..4),
        (value_repr, expected) in arb_value(),
        suffix in arb_suffix(),
    ) {
        let mut line = String::from("scrape_props_total");
        if !labels.is_empty() {
            line.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
            }
            line.push('}');
        }
        line.push(' ');
        line.push_str(&value_repr);
        line.push_str(&suffix);
        line.push('\n');

        let parsed = parse(&line);
        prop_assert_eq!(parsed.malformed_lines, 0, "line: {:?}", line);
        prop_assert_eq!(parsed.samples.len(), 1);
        let sample = &parsed.samples[0];
        prop_assert_eq!(sample.name.as_str(), "scrape_props_total");
        prop_assert!(
            sample.value == expected || (sample.value.is_nan() && expected.is_nan()),
            "value {:?} parsed to {}", value_repr, sample.value
        );
        prop_assert_eq!(sample.labels.len(), labels.len());
        for (k, v) in &labels {
            prop_assert_eq!(sample.label(k), Some(v.as_str()), "label {}", k);
        }
    }

    /// The parser is total: arbitrary text never panics, and every line is
    /// either a sample or counted malformed (comments/blanks aside).
    #[test]
    fn parser_total_on_arbitrary_text(text in "[ -~\n\t\"\\\\{}#]{0,256}") {
        let parsed = parse(&text);
        let candidate_lines = text
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .count();
        prop_assert!(parsed.samples.len() + parsed.malformed_lines <= candidate_lines);
    }
}
