//! Property-based tests for the incremental HTTP codec: fed the same
//! bytes as the blocking parser — at arbitrary split boundaries — it
//! must produce byte-exactly the same messages, and agree with the
//! blocking parser's verdict on garbage and truncation.

use proptest::prelude::*;
use sensorsafe_net::codec::{Decoded, RequestDecoder, ResponseDecoder};
use sensorsafe_net::http::{
    read_request, read_response, write_request, write_response, Method, Request, Response, Status,
};
use std::collections::BTreeMap;
use std::io::BufReader;

fn arb_method() -> impl Strategy<Value = Method> {
    prop::sample::select(vec![Method::Get, Method::Post, Method::Put, Method::Delete])
}

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._~ -]{1,12}", 0..4)
        .prop_map(|segments| format!("/{}", segments.join("/")))
}

fn arb_kv() -> impl Strategy<Value = BTreeMap<String, String>> {
    prop::collection::btree_map("[a-z0-9_]{1,8}", "[a-zA-Z0-9 =&?%+-]{0,16}", 0..4)
}

fn arb_headers() -> impl Strategy<Value = BTreeMap<String, String>> {
    // Header values are trimmed on parse (RFC 9110 optional whitespace),
    // so generate values without edge whitespace.
    prop::collection::btree_map(
        "[a-z][a-z0-9-]{0,10}",
        "([a-zA-Z0-9;=/.-]([a-zA-Z0-9 ;=/.-]{0,22}[a-zA-Z0-9;=/.-])?)?",
        0..4,
    )
    .prop_map(|mut h| {
        // content-length is computed by the writer; "connection" would
        // change framing semantics server-side, not parse results.
        h.remove("content-length");
        h
    })
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop::sample::select(vec![
        Status::Ok,
        Status::Created,
        Status::BadRequest,
        Status::Unauthorized,
        Status::Forbidden,
        Status::NotFound,
        Status::MethodNotAllowed,
        Status::Conflict,
        Status::PayloadTooLarge,
        Status::RequestHeaderFieldsTooLarge,
        Status::InternalError,
        Status::ServiceUnavailable,
    ])
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        arb_method(),
        arb_path(),
        arb_kv(),
        arb_headers(),
        prop::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(method, path, query, headers, body)| Request {
            idempotent: method == Method::Get,
            method,
            path,
            query,
            headers,
            body,
        })
}

/// Turns arbitrary proptest indices into a sorted, deduped list of cut
/// offsets covering the whole wire.
fn cut_offsets(wire_len: usize, cuts: &[prop::sample::Index]) -> Vec<usize> {
    let mut offsets: Vec<usize> = cuts.iter().map(|ix| ix.index(wire_len + 1)).collect();
    offsets.push(0);
    offsets.push(wire_len);
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

/// Feeds `wire` to the request decoder in the given fragments, draining
/// completed requests after every fragment. Panics if the decoder
/// rejects (callers pass valid wire bytes).
fn drive_request_decoder(
    decoder: &mut RequestDecoder,
    wire: &[u8],
    offsets: &[usize],
) -> Vec<Request> {
    let mut items = Vec::new();
    for pair in offsets.windows(2) {
        decoder.feed(&wire[pair[0]..pair[1]]);
        loop {
            match decoder.poll() {
                Decoded::Item(item) => items.push(item),
                Decoded::NeedMore => break,
                Decoded::Failed(e) => panic!("decoder failed on valid input: {}", e.message),
            }
        }
    }
    items
}

proptest! {
    /// A pipelined burst of requests, split at arbitrary byte
    /// boundaries, decodes incrementally to byte-exactly what the
    /// blocking parser reads from the same wire bytes.
    #[test]
    fn incremental_request_decode_matches_blocking(
        requests in prop::collection::vec(arb_request(), 1..4),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..12),
    ) {
        let mut wire = Vec::new();
        for req in &requests {
            write_request(&mut wire, req).unwrap();
        }

        // Blocking reference parse of the identical bytes.
        let mut reader = BufReader::new(wire.as_slice());
        let mut blocking = Vec::new();
        while let Some(req) = read_request(&mut reader).unwrap() {
            blocking.push(req);
        }

        let mut decoder = RequestDecoder::new();
        let offsets = cut_offsets(wire.len(), &cuts);
        let incremental = drive_request_decoder(&mut decoder, &wire, &offsets);

        prop_assert_eq!(incremental.len(), blocking.len());
        for (a, b) in incremental.iter().zip(&blocking) {
            prop_assert_eq!(a.method, b.method);
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(&a.query, &b.query);
            prop_assert_eq!(&a.headers, &b.headers);
            prop_assert_eq!(&a.body, &b.body);
        }
        prop_assert!(decoder.at_boundary());
    }

    /// Responses decode incrementally to what the blocking parser reads,
    /// at any fragmentation.
    #[test]
    fn incremental_response_decode_matches_blocking(
        status in arb_status(),
        headers in arb_headers(),
        body in prop::collection::vec(any::<u8>(), 0..512),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let resp = Response { status, headers, body };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();

        let mut reader = BufReader::new(wire.as_slice());
        let blocking = read_response(&mut reader).unwrap();

        let mut decoder = ResponseDecoder::new();
        let mut items = Vec::new();
        for pair in cut_offsets(wire.len(), &cuts).windows(2) {
            decoder.feed(&wire[pair[0]..pair[1]]);
            loop {
                match decoder.poll() {
                    Decoded::Item(item) => items.push(item),
                    Decoded::NeedMore => break,
                    Decoded::Failed(e) => {
                        panic!("decoder failed on valid response: {}", e.message)
                    }
                }
            }
        }
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(items[0].status, blocking.status);
        prop_assert_eq!(&items[0].body, &blocking.body);
    }

    /// Byte-at-a-time (the worst fragmentation) agrees too.
    #[test]
    fn byte_at_a_time_agrees_with_blocking(req in arb_request()) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let blocking = read_request(&mut reader).unwrap().unwrap();

        let mut decoder = RequestDecoder::new();
        let mut items = Vec::new();
        for b in &wire {
            decoder.feed(std::slice::from_ref(b));
            if let Decoded::Item(req) = decoder.poll() {
                items.push(req);
            }
        }
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(&items[0].path, &blocking.path);
        prop_assert_eq!(&items[0].headers, &blocking.headers);
        prop_assert_eq!(&items[0].body, &blocking.body);
    }

    /// On arbitrary garbage the incremental decoder never panics, and
    /// whenever the blocking parser rejects a *complete* head as
    /// malformed (InvalidData), the incremental decoder fed the same
    /// bytes fails too — same verdict, incremental delivery.
    #[test]
    fn garbage_verdicts_agree(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        // Terminate the head so both parsers see a complete (if bogus)
        // message head rather than truncation.
        let mut wire = bytes.clone();
        wire.extend_from_slice(b"\r\n\r\n");

        let mut reader = BufReader::new(wire.as_slice());
        let blocking_verdict = read_request(&mut reader);

        let mut decoder = RequestDecoder::new();
        let mut offsets: Vec<usize> =
            cuts.iter().map(|ix| ix.index(wire.len() + 1)).collect();
        offsets.push(0);
        offsets.push(wire.len());
        offsets.sort_unstable();
        offsets.dedup();
        let mut failed = false;
        let mut decoded_any = false;
        'outer: for pair in offsets.windows(2) {
            decoder.feed(&wire[pair[0]..pair[1]]);
            loop {
                match decoder.poll() {
                    Decoded::Item(_) => decoded_any = true,
                    Decoded::NeedMore => break,
                    Decoded::Failed(_) => { failed = true; break 'outer; }
                }
            }
        }
        match blocking_verdict {
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                prop_assert!(failed, "blocking rejected but incremental did not");
            }
            Ok(Some(_)) => {
                prop_assert!(decoded_any || !failed);
            }
            // Truncation/EOF cases: the incremental decoder just waits
            // for more bytes; it must not have *failed* unless the
            // blocking parser also saw malformed data.
            _ => {}
        }
    }

    /// Truncated messages never produce an item and never fail as
    /// malformed: the decoder just reports NeedMore, exactly like a
    /// blocking parser would keep waiting on the socket.
    #[test]
    fn truncation_waits_instead_of_failing(
        req in arb_request(),
        drop_tail in 1usize..64,
    ) {
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let keep = wire.len().saturating_sub(drop_tail);
        let mut decoder = RequestDecoder::new();
        decoder.feed(&wire[..keep]);
        let mut saw_item = false;
        let mut saw_failure = false;
        loop {
            match decoder.poll() {
                Decoded::Item(_) => saw_item = true,
                Decoded::NeedMore => break,
                Decoded::Failed(_) => {
                    saw_failure = true;
                    break;
                }
            }
        }
        prop_assert!(!saw_failure, "truncated valid request must not fail");
        // Dropping bytes from the end can never complete the message.
        prop_assert!(!saw_item);
        prop_assert!(!decoder.at_boundary() || keep == 0);
        // Feeding the missing tail completes it.
        decoder.feed(&wire[keep..]);
        let completed = match decoder.poll() {
            Decoded::Item(got) => {
                prop_assert_eq!(got.body, req.body);
                true
            }
            _ => false,
        };
        prop_assert!(completed, "completing the wire must decode the request");
    }
}
