//! Property-based tests for the HTTP codec: anything the client writes,
//! the server parses back identically (and vice versa).

use proptest::prelude::*;
use sensorsafe_net::http::{
    read_request, read_response, write_request, write_response, Method, Request, Response, Status,
};
use std::collections::BTreeMap;
use std::io::BufReader;

fn arb_method() -> impl Strategy<Value = Method> {
    prop::sample::select(vec![Method::Get, Method::Post, Method::Put, Method::Delete])
}

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec("[a-zA-Z0-9._~ -]{1,12}", 0..4)
        .prop_map(|segments| format!("/{}", segments.join("/")))
}

fn arb_kv() -> impl Strategy<Value = BTreeMap<String, String>> {
    prop::collection::btree_map("[a-z0-9_]{1,8}", "[a-zA-Z0-9 =&?%+-]{0,16}", 0..4)
}

fn arb_headers() -> impl Strategy<Value = BTreeMap<String, String>> {
    // Header values are trimmed on parse (RFC 9110 optional whitespace),
    // so generate values without edge whitespace.
    prop::collection::btree_map(
        "[a-z][a-z0-9-]{0,10}",
        "([a-zA-Z0-9;=/.-]([a-zA-Z0-9 ;=/.-]{0,22}[a-zA-Z0-9;=/.-])?)?",
        0..4,
    )
    .prop_map(|mut h| {
        // content-length is computed by the writer.
        h.remove("content-length");
        h
    })
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop::sample::select(vec![
        Status::Ok,
        Status::Created,
        Status::BadRequest,
        Status::Unauthorized,
        Status::Forbidden,
        Status::NotFound,
        Status::MethodNotAllowed,
        Status::Conflict,
        Status::PayloadTooLarge,
        Status::InternalError,
    ])
}

proptest! {
    /// Requests round-trip the wire exactly.
    #[test]
    fn request_roundtrip(
        method in arb_method(),
        path in arb_path(),
        query in arb_kv(),
        headers in arb_headers(),
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let req = Request { idempotent: method == Method::Get, method, path, query, headers, body };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = read_request(&mut reader).unwrap().unwrap();
        prop_assert_eq!(back.method, req.method);
        prop_assert_eq!(back.path, req.path);
        prop_assert_eq!(back.query, req.query);
        prop_assert_eq!(back.body, req.body);
        for (k, v) in &req.headers {
            prop_assert_eq!(back.headers.get(k), Some(v));
        }
        // And the stream is cleanly consumed (keep-alive ready).
        prop_assert!(read_request(&mut reader).unwrap().is_none());
    }

    /// Responses round-trip the wire exactly.
    #[test]
    fn response_roundtrip(
        status in arb_status(),
        headers in arb_headers(),
        body in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let resp = Response { status, headers, body };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = read_response(&mut reader).unwrap();
        prop_assert_eq!(back.status, resp.status);
        prop_assert_eq!(back.body, resp.body);
    }

    /// The request parser never panics on arbitrary bytes.
    #[test]
    fn parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = read_request(&mut reader);
        let mut reader = BufReader::new(bytes.as_slice());
        let _ = read_response(&mut reader);
    }

    /// Pipelined requests all parse back in order.
    #[test]
    fn pipelining(paths in prop::collection::vec(arb_path(), 1..5)) {
        let mut wire = Vec::new();
        for p in &paths {
            write_request(&mut wire, &Request::get(p.clone())).unwrap();
        }
        let mut reader = BufReader::new(wire.as_slice());
        for p in &paths {
            let got = read_request(&mut reader).unwrap().unwrap();
            prop_assert_eq!(&got.path, p);
        }
        prop_assert!(read_request(&mut reader).unwrap().is_none());
    }
}
