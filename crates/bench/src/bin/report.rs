//! Non-timing experiment metrics: storage sizes, segment counts, data-
//! volume savings, broker byte accounting, and search-result shapes.
//!
//! Criterion measures latencies; this binary prints the counted
//! quantities EXPERIMENTS.md reports, one table per experiment id.
//!
//! ```text
//! cargo run -p sensorsafe-bench --bin report --release
//! ```

use sensorsafe_bench::{
    alice_scenario, chest_packets, durable_workload, durable_workload_with, mixed_workload,
    run_durable_uploads, run_many_account_uploads, run_mixed_traffic, segment_store_with,
    synthetic_rules, tuple_store_with,
};
use sensorsafe_core::datastore::{DataStoreConfig, LockMode, StorageEngine};
use sensorsafe_core::net::{LocalTransport, Request, Service, Transport};
use sensorsafe_core::policy::{ConsumerCtx, RuleIndex, SearchQuery};
use sensorsafe_core::store::{GroupCommitConfig, MergePolicy, Query};
use sensorsafe_core::types::{ContextKind, ContributorId, RepeatTime};
use sensorsafe_core::{json, ContributorDevice, Deployment};
use std::sync::Arc;

fn f5_storage_table() {
    println!("== F5: storage size, wave segments vs per-sample tuples ==");
    println!("workload: 1 hour of 50 Hz ECG+respiration (180,000 samples)");
    let packets = chest_packets(2812);
    let tuples = tuple_store_with(&packets);
    println!("{:<36} {:>12} {:>10}", "representation", "bytes", "records");
    println!(
        "{:<36} {:>12} {:>10}",
        "per-sample tuples (baseline)",
        tuples.approx_bytes(),
        tuples.len()
    );
    for (name, policy) in [
        ("wave segments, unmerged (64/pkt)", MergePolicy::disabled()),
        ("wave segments, merge cap 8192", MergePolicy::default()),
        (
            "wave segments, unbounded merge",
            MergePolicy {
                enabled: true,
                max_rows: usize::MAX,
            },
        ),
    ] {
        let store = segment_store_with(&packets, policy);
        let stats = store.stats();
        println!(
            "{:<36} {:>12} {:>10}",
            name, stats.approx_bytes, stats.segments
        );
    }
    let merged = segment_store_with(&packets, MergePolicy::default());
    let ratio = tuples.approx_bytes() as f64 / merged.stats().approx_bytes as f64;
    println!("--> tuples use {ratio:.1}x the bytes of merged wave segments\n");
}

fn a1_merge_table() {
    println!("== A1: merge optimization, segment counts ==");
    let packets = chest_packets(2812);
    println!("{:<28} {:>10} {:>8}", "merge policy", "segments", "merges");
    for (name, policy) in [
        ("disabled", MergePolicy::disabled()),
        (
            "cap 512",
            MergePolicy {
                enabled: true,
                max_rows: 512,
            },
        ),
        ("cap 8192 (default)", MergePolicy::default()),
        (
            "unbounded",
            MergePolicy {
                enabled: true,
                max_rows: usize::MAX,
            },
        ),
    ] {
        let store = segment_store_with(&packets, policy);
        let stats = store.stats();
        println!("{:<28} {:>10} {:>8}", name, stats.segments, stats.merges);
    }
    println!();
}

fn a2_search_table() {
    println!("== A2: contributor search result shape ==");
    let mut index = RuleIndex::new();
    let n = 1_000;
    for i in 0..n {
        index.sync(
            ContributorId::new(format!("contributor-{i:05}")),
            1,
            synthetic_rules(i, 4),
        );
    }
    let paper_query = SearchQuery {
        consumer: ConsumerCtx::user("bob"),
        raw_channels: vec!["ecg".into(), "respiration".into()],
        location_labels: vec!["work".into()],
        repeat: Some(RepeatTime::weekdays_nine_to_six()),
        ..Default::default()
    };
    let driving_query = SearchQuery {
        consumer: ConsumerCtx::user("bob"),
        raw_channels: vec!["ecg".into(), "respiration".into()],
        active_contexts: vec![ContextKind::Drive],
        ..Default::default()
    };
    println!("mirror: {n} contributors x 4 rules");
    println!(
        "paper query (ECG+RSP at 'work', weekdays 9-6): {} match",
        index.search(&paper_query).len()
    );
    println!(
        "driving-stress query (ECG+RSP while driving): {} match",
        index.search(&driving_query).len()
    );
    println!();
}

fn a3_savings_table() {
    println!("== A3: privacy-rule-aware collection savings ==");
    let scenario = alice_scenario(9);
    let runs: Vec<(&str, bool, sensorsafe_core::Value)> = vec![
        (
            "plain (upload everything)",
            false,
            json!([
                {"Action": "Allow"},
                {"Context": ["Drive"], "Action": "Deny"},
            ]),
        ),
        (
            "rule-aware, deny-while-driving",
            true,
            json!([
                {"Action": "Allow"},
                {"Context": ["Drive"], "Action": "Deny"},
            ]),
        ),
        (
            "rule-aware, deny drive+conversation",
            true,
            json!([
                {"Action": "Allow"},
                {"Context": ["Drive"], "Action": "Deny"},
                {"Context": ["Conversation"], "Action": "Deny"},
            ]),
        ),
        ("rule-aware, nothing shared", true, json!([])),
    ];
    println!(
        "{:<38} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "configuration", "collected", "uploaded", "discarded", "off(s)", "bytes"
    );
    for (name, aware, rules) in runs {
        let mut deployment = Deployment::in_process();
        let store = deployment.add_store("s1");
        let alice = deployment.register_contributor("s1", "alice").unwrap();
        alice.set_rules(&rules).unwrap();
        let transport: Arc<dyn Transport> = Arc::new(LocalTransport::new(Arc::new(store)));
        let device =
            ContributorDevice::new(transport, alice.api_key.clone()).with_rule_aware(aware);
        let (m, _) = device.run_scenario(&scenario).unwrap();
        println!(
            "{:<38} {:>9} {:>9} {:>9} {:>8} {:>10}",
            name,
            m.collected_samples,
            m.uploaded_samples,
            m.discarded_samples,
            m.sensor_off_secs,
            m.uploaded_bytes
        );
    }
    println!();
}

fn f1_byte_accounting() {
    println!("== F1: broker vs store bytes on the download path ==");
    let mut deployment = Deployment::in_process();
    deployment.add_store("s1");
    for i in 0..4 {
        let handle = deployment
            .register_contributor("s1", &format!("c{i}"))
            .unwrap();
        handle.upload_scenario(&alice_scenario(i)).unwrap();
        handle.set_rules(&json!([{"Action": "Allow"}])).unwrap();
    }
    let bob = deployment.register_consumer("bob").unwrap();
    bob.add_contributors(&["c0", "c1", "c2", "c3"]).unwrap();
    // Access-list payload (the broker's entire role on the data path).
    let access = bob.access_list().unwrap();
    let access_bytes: usize = access
        .iter()
        .map(|a| a.contributor.len() + a.store_addr.len() + a.api_key.len())
        .sum();
    let results = bob.download_all(&Query::all()).unwrap();
    let data_samples: usize = results.iter().map(|(_, v)| v.raw_samples()).sum();
    // A raw f32 sample is 4 bytes before JSON framing; JSON inflates ~5x.
    println!("broker-served access metadata: ~{access_bytes} bytes");
    println!("store-served sensor payload:   {data_samples} samples");
    println!("--> data path bypasses the broker; broker bytes stay O(contributors), not O(data)\n");
}

fn c1_concurrency_table() {
    println!("== C1: sharded vs global-lock store, mixed upload/query traffic ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    // The account lock-wait histogram accumulates process-wide; deltas
    // around each timed run attribute waiting to that run alone.
    let lock_wait_secs = || -> f64 {
        ["read", "write"]
            .iter()
            .map(|mode| {
                sensorsafe_core::obsv::global()
                    .histogram(
                        "sensorsafe_datastore_lock_wait_seconds",
                        "Time spent waiting to acquire a contributor account lock.",
                        &[("mode", mode)],
                        None,
                    )
                    .snapshot()
                    .sum()
            })
            .sum()
    };
    let ops = 300;
    // Best-of-3 to damp scheduler noise; lock-wait from the best run.
    let measure = |mode: LockMode, threads: usize, contributors: usize| -> (f64, f64) {
        let workload = mixed_workload(mode, contributors);
        run_mixed_traffic(&workload, threads, 40); // warm-up, discarded
        let mut best_rate = 0.0f64;
        let mut best_wait = 0.0f64;
        for _ in 0..3 {
            let wait_before = lock_wait_secs();
            let elapsed = run_mixed_traffic(&workload, threads, ops);
            let wait = lock_wait_secs() - wait_before;
            let rate = (threads * ops) as f64 / elapsed.as_secs_f64();
            if rate > best_rate {
                best_rate = rate;
                best_wait = wait;
            }
        }
        (best_rate, best_wait)
    };
    println!(
        "{:<22} {:>13} {:>13} {:>8} {:>12} {:>12}",
        "threads x contribs", "global req/s", "shard req/s", "speedup", "g-wait ms", "s-wait ms"
    );
    for (threads, contributors) in [(1, 8), (2, 8), (4, 8), (8, 8), (8, 2), (8, 32)] {
        let (global, global_wait) = measure(LockMode::GlobalLock, threads, contributors);
        let (sharded, sharded_wait) = measure(LockMode::Sharded, threads, contributors);
        println!(
            "{:<22} {:>13.0} {:>13.0} {:>7.2}x {:>12.2} {:>12.2}",
            format!("{threads} x {contributors}"),
            global,
            sharded,
            sharded / global,
            global_wait * 1e3,
            sharded_wait * 1e3
        );
    }
    println!("(wait columns: contributor-account lock acquisition wait per timed run)");
    println!();
}

fn c2_durable_upload_table() {
    println!("== C2: durable uploads, group commit vs per-record fsync ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let registry = sensorsafe_core::obsv::global();
    let fsyncs = registry.counter(
        "sensorsafe_store_wal_fsyncs_total",
        "fsync calls issued by write-ahead logs.",
        &[],
    );
    let uploads = registry.counter(
        "sensorsafe_datastore_durable_uploads_total",
        "Upload requests acked after a durable WAL commit.",
        &[],
    );
    let commit_latency = || {
        registry
            .histogram(
                "sensorsafe_store_wal_commit_seconds",
                "WAL group-commit batch latency (write + fsync).",
                &[],
                None,
            )
            .snapshot()
    };
    let ops = 100;
    let contributors = 2;
    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "config", "threads", "req/s", "uploads", "fsyncs", "fsync/up", "commit mean"
    );
    for (label, config) in [
        ("unbatched", GroupCommitConfig::unbatched()),
        ("batch64_500us", GroupCommitConfig::default()),
        (
            "batch256_2ms",
            GroupCommitConfig {
                max_batch: 256,
                max_delay: std::time::Duration::from_millis(2),
            },
        ),
    ] {
        for threads in [1usize, 4, 8] {
            let workload = durable_workload(config, contributors);
            run_durable_uploads(&workload, threads, 10); // warm-up, discarded
            let (f0, u0, l0) = (fsyncs.get(), uploads.get(), commit_latency());
            let elapsed = run_durable_uploads(&workload, threads, ops);
            let df = fsyncs.get() - f0;
            let du = uploads.get() - u0;
            // The histogram is cumulative; mean over the delta of
            // (sum, count) attributes latency to this run alone.
            let l1 = commit_latency();
            let commits = l1.count().saturating_sub(l0.count());
            let mean_ms = if commits > 0 {
                (l1.sum() - l0.sum()) / commits as f64 * 1e3
            } else {
                0.0
            };
            let rate = (threads * ops) as f64 / elapsed.as_secs_f64();
            println!(
                "{:<16} {:>8} {:>10.0} {:>8} {:>8} {:>12.3} {:>10.3}ms",
                label,
                threads,
                rate,
                du,
                df,
                df as f64 / du as f64,
                mean_ms
            );
        }
    }
    println!("(fsync/up < 1 at threads >= 4 is group commit coalescing concurrent acks)");
    println!();
}

fn c4_store_wide_group_commit_table() {
    use sensorsafe_core::store::JournalConfig;
    println!("== C4: store-wide group commit, many accounts x low per-account rate ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    println!(
        "shape: every contributor uploads one packet per round (a 1 Hz fleet\n\
         compressed in time) — no account ever has two uploads in flight, so\n\
         only cross-account batching can coalesce fsyncs"
    );
    let registry = sensorsafe_core::obsv::global();
    let fsyncs = registry.counter(
        "sensorsafe_store_wal_fsyncs_total",
        "fsync calls issued by write-ahead logs.",
        &[],
    );
    let uploads = registry.counter(
        "sensorsafe_datastore_durable_uploads_total",
        "Upload requests acked after a durable WAL commit.",
        &[],
    );
    // More workers than a single fsync can retire: the commit thread
    // batches every upload staged while the previous fsync was in
    // flight, so in-flight depth bounds the achievable coalescing.
    let threads = 32;
    println!(
        "{:<18} {:<16} {:>9} {:>10} {:>8} {:>8} {:>12}",
        "engine", "commit config", "contribs", "req/s", "uploads", "fsyncs", "fsync/up"
    );
    let configs = [
        ("batch64_500us", GroupCommitConfig::default()),
        (
            "batch256_2ms",
            GroupCommitConfig {
                max_batch: 256,
                max_delay: std::time::Duration::from_millis(2),
            },
        ),
    ];
    for (engine_label, engine) in [
        ("per-account-wal", StorageEngine::PerAccountWal),
        ("journal", StorageEngine::Journal),
    ] {
        for (wal_label, wal) in configs {
            for contributors in [100usize, 1000] {
                let workload = durable_workload_with(
                    DataStoreConfig {
                        engine,
                        wal,
                        ..Default::default()
                    },
                    contributors,
                );
                run_many_account_uploads(&workload, threads, 0, 1); // warm-up, discarded
                let (f0, u0) = (fsyncs.get(), uploads.get());
                let elapsed = run_many_account_uploads(&workload, threads, 1, 3);
                let df = fsyncs.get() - f0;
                let du = uploads.get() - u0;
                println!(
                    "{:<18} {:<16} {:>9} {:>10.0} {:>8} {:>8} {:>12.3}",
                    engine_label,
                    wal_label,
                    contributors,
                    du as f64 / elapsed.as_secs_f64(),
                    du,
                    df,
                    df as f64 / du as f64
                );
            }
        }
    }
    // Recovery-time probe: rotation + checkpoints bound replay to the
    // checkpoint snapshot plus the tail segments — segments a checkpoint
    // covers are skipped wholesale at reopen. The workload drives
    // re-enrollment cycles (upload, `/repl/reset` wipe, upload again):
    // live state stays one cycle's worth while journal history grows
    // with every cycle, which is exactly the shape where a naive
    // full-log replay (the control rig, rotation disabled) degrades
    // linearly and a checkpointed reopen stays flat.
    println!(
        "\n{:<34} {:>9} {:>9} {:>12} {:>10} {:>8}",
        "journal recovery rig", "history", "live", "replay ms", "live segs", "ckpt'd"
    );
    let rigs = [
        (
            "rotate 256 KiB + ckpt",
            JournalConfig {
                rotate_bytes: 256 * 1024,
                ..Default::default()
            },
        ),
        (
            "rotation disabled",
            JournalConfig {
                rotate_bytes: u64::MAX,
                rotate_records: u64::MAX,
                ..Default::default()
            },
        ),
    ];
    let contributors = 128;
    let live_rounds = 4;
    for (label, journal) in rigs {
        for cycles in [1usize, 4, 16] {
            let mut workload = durable_workload_with(
                DataStoreConfig {
                    engine: StorageEngine::Journal,
                    journal,
                    ..Default::default()
                },
                contributors,
            );
            for cycle in 0..cycles {
                run_many_account_uploads(&workload, threads, cycle * live_rounds, live_rounds);
                if cycle + 1 < cycles {
                    // Operator wipe between cycles: the account's prior
                    // records become dead history the checkpoint drops.
                    for (name, _) in &workload.contributors {
                        let resp =
                            workload
                                .store
                                .handle(&sensorsafe_core::net::Request::post_json(
                                    "/repl/reset",
                                    &sensorsafe_core::json!({
                                        "key": (workload.admin_key.clone()),
                                        "contributor": (name.clone()),
                                        "epoch": 0,
                                    }),
                                ));
                        assert!(resp.status.is_success(), "re-enrollment wipe failed");
                    }
                }
            }
            let replay = workload.restart();
            let stats = workload.store.journal_stats().expect("journal engine");
            println!(
                "{:<34} {:>9} {:>9} {:>12.2} {:>10} {:>8}",
                format!("{label}, {cycles} cycles"),
                cycles * live_rounds * contributors,
                live_rounds * contributors,
                replay.as_secs_f64() * 1e3,
                stats.live_segments,
                stats.checkpointed_through
            );
        }
    }
    println!(
        "(history = uploads ever journaled, live = uploads surviving the last wipe;\n\
         flat replay ms down the checkpointed rows = reopen bounded to ckpt + tail)"
    );
    println!();
}

/// Child-process client for the C3 soak. The container's 20,000-fd
/// budget cannot hold ~10k server-side descriptors *and* ~10k client
/// sockets in one process, so the report binary re-execs itself
/// (`report c3-client <addr> <conns>`) and each child owns a slice of
/// the client connections. Protocol over the pipes: the child prints
/// `ready <n>` once all connections are open and proven live, waits for
/// any line on stdin, drives one final round over every connection, and
/// prints `done`.
fn c3_client_main(addr: &str, conns: usize) {
    use std::io::{BufRead, Write};
    let mut held = sensorsafe_bench::open_soak_conns(addr, conns).expect("c3 client connect");
    println!("ready {conns}");
    std::io::stdout().flush().expect("c3 client stdout");
    let mut line = String::new();
    std::io::stdin()
        .lock()
        .read_line(&mut line)
        .expect("c3 parent handshake");
    sensorsafe_bench::soak_round(&mut held).expect("c3 client final round");
    println!("done");
}

fn c3_evented_core_table() {
    use sensorsafe_bench::rss_kb;
    use sensorsafe_core::net::{EventedConfig, Server, ServerMode};
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

    println!("== C3: evented core, concurrent keep-alive connections at flat memory ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    struct Client {
        child: Child,
        stdin: ChildStdin,
        stdout: BufReader<ChildStdout>,
    }
    let spawn_client = |addr: &str, conns: usize| -> Client {
        let exe = std::env::current_exe().expect("current_exe");
        let mut child = Command::new(exe)
            .args(["c3-client", addr, &conns.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn c3 client");
        let stdin = child.stdin.take().expect("client stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("client stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("client ready line");
        assert_eq!(line.trim(), format!("ready {conns}"), "client handshake");
        Client {
            child,
            stdin,
            stdout,
        }
    };
    // Releasing a client drives one final request over every one of its
    // connections — proof that each is still concurrently served, not
    // merely open.
    let release_client = |mut client: Client| {
        writeln!(client.stdin, "go").expect("client go");
        let mut line = String::new();
        client
            .stdout
            .read_line(&mut line)
            .expect("client done line");
        assert_eq!(line.trim(), "done", "client final round");
        assert!(client.child.wait().expect("client exit").success());
    };
    let print_row = |label: &str, base_kb: u64, conns: usize| {
        let kb = rss_kb();
        let delta = kb.saturating_sub(base_kb);
        let per_conn = if conns > 0 {
            format!("{:.2}", delta as f64 / conns as f64)
        } else {
            "-".into()
        };
        println!("{label:<34} {kb:>10} {delta:>11} {per_conn:>13}");
    };

    // --- evented store: 4 children x 2,560 = 10,240 connections ---
    let (store, _admin) = sensorsafe_core::datastore::DataStoreService::new(Default::default());
    let config = EventedConfig {
        handler_threads: 8,
        // The staircase below holds connections idle for minutes while
        // later children ramp; reaping mid-measurement would deflate
        // the concurrency claim.
        idle_timeout: std::time::Duration::from_secs(600),
        ..EventedConfig::default()
    };
    let mut server =
        Server::bind_evented("127.0.0.1:0", config, Arc::new(store)).expect("evented store");
    let addr = server.addr_string();
    let open_gauge = sensorsafe_core::obsv::global().gauge(
        "sensorsafe_net_open_connections",
        "Currently open server-side connections across all servers in \
         this process.",
        &[],
    );
    println!(
        "{:<34} {:>10} {:>11} {:>13}",
        "held connections", "rss KiB", "delta KiB", "KiB per conn"
    );
    let base_kb = rss_kb();
    print_row("0 (evented store idle)", base_kb, 0);
    let mut clients = Vec::new();
    let mut held = 0usize;
    for _ in 0..4 {
        clients.push(spawn_client(&addr, 2_560));
        held += 2_560;
        print_row(&format!("{held} (evented)"), base_kb, held);
    }
    println!(
        "server-side open-connection gauge at peak: {}",
        open_gauge.get()
    );
    for client in clients.drain(..) {
        release_client(client); // final round: all 10,240 still served
    }
    server.shutdown();

    // --- thread-pool baseline, same run ---
    // The blocking server parks one worker per keep-alive connection,
    // so its concurrency ceiling IS its worker count; 10k connections
    // would need 10k threads. Measured at a 512-worker rig instead.
    let (store, _admin) = sensorsafe_core::datastore::DataStoreService::new(Default::default());
    let tp_base_kb = rss_kb();
    let mut server = Server::bind_mode("127.0.0.1:0", ServerMode::ThreadPool, 512, Arc::new(store))
        .expect("thread-pool store");
    print_row("0 (thread-pool, 512 workers)", tp_base_kb, 0);
    let client = spawn_client(&server.addr_string(), 512);
    print_row("512 (thread-pool)", tp_base_kb, 512);
    release_client(client);
    server.shutdown();
    println!(
        "--> evented: 10,240 keep-alive connections on {} handler threads; \
         thread-pool ceiling = worker count\n",
        8
    );
}

fn obsv_overhead_table() {
    println!("== O1: observability overhead on the query hot path ==");
    // Each configuration gets its own deployment because the audit
    // ledger is not behind the metrics kill switch (accountability is
    // not telemetry): the baseline must avoid it structurally, via an
    // in-memory store, rather than by flipping the registry off.
    //
    // Run-to-run noise on a ~30 ms query is larger than the 5% budget,
    // so the harness interleaves the configurations over several rounds
    // and reports each configuration's best round — the estimator least
    // disturbed by scheduler and allocator interference.
    let ledger_dir = std::env::temp_dir().join(format!("sensorsafe-o1-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ledger_dir);
    std::fs::create_dir_all(&ledger_dir).expect("O1 ledger dir");

    let wire = |config: sensorsafe_core::datastore::DataStoreConfig| {
        let mut deployment = Deployment::in_process();
        let store = deployment.add_store_with("s1", config);
        let alice = deployment.register_contributor("s1", "alice").unwrap();
        alice.upload_scenario(&alice_scenario(3)).unwrap();
        alice.set_rules(&json!([{"Action": "Allow"}])).unwrap();
        let bob = deployment.register_consumer("bob").unwrap();
        bob.add_contributors(&["alice"]).unwrap();
        (store, bob)
    };
    let rigs = [
        (
            "kill switch off, in-memory ledger",
            false,
            wire(Default::default()),
        ),
        (
            "metrics+tracing, in-memory ledger",
            true,
            wire(Default::default()),
        ),
        (
            "metrics+tracing+durable audit ledger",
            true,
            wire(sensorsafe_core::datastore::DataStoreConfig {
                data_dir: Some(ledger_dir.clone()),
                slow_request_threshold: Some(std::time::Duration::from_millis(250)),
                ..Default::default()
            }),
        ),
    ];

    const ROUNDS: usize = 5;
    const ITERATIONS: usize = 30;
    let mut best = [f64::INFINITY; 3];
    for round in 0..=ROUNDS {
        for (i, (_, enabled, (store, bob))) in rigs.iter().enumerate() {
            sensorsafe_core::obsv::global().set_enabled(*enabled);
            store.registry().set_enabled(*enabled);
            let started = std::time::Instant::now();
            for _ in 0..ITERATIONS {
                let results = bob.download_all(&Query::all()).unwrap();
                assert!(results[0].1.raw_samples() > 0);
            }
            let mean_ms = started.elapsed().as_secs_f64() * 1e3 / ITERATIONS as f64;
            // Round 0 is warm-up (caches, lazy series registration).
            if round > 0 && mean_ms < best[i] {
                best[i] = mean_ms;
            }
        }
    }
    sensorsafe_core::obsv::global().set_enabled(true);
    let _ = std::fs::remove_dir_all(&ledger_dir);

    for (i, (label, _, _)) in rigs.iter().enumerate() {
        println!("{label:<44} {:>9.3} ms/query (best of {ROUNDS})", best[i]);
    }
    let metrics_overhead = (best[1] - best[0]) / best[0] * 100.0;
    let full_overhead = (best[2] - best[0]) / best[0] * 100.0;
    println!("--> metrics+tracing overhead:       {metrics_overhead:+.2}% (budget: <5%)");
    println!("--> full stack incl. audit ledger:  {full_overhead:+.2}% (budget: <5%)\n");
}

fn fleet_scrape_overhead_table() {
    println!("== O2: fleet scrape overhead on store query latency ==");
    // Same estimator as O1: the configurations are interleaved over
    // several rounds and each reports its best round, because run-to-run
    // noise on a ~30 ms query dwarfs the 5% budget. The scraped rigs run
    // the broker's background scraper at intervals far more aggressive
    // than the 5 s default, so the measured overhead is an upper bound:
    // every sweep costs the store two extra requests (/healthz +
    // /metrics) that contend with the query workload.
    use sensorsafe_core::broker::FleetConfig;
    let wire = |fleet: Option<FleetConfig>| {
        let scraped = fleet.is_some();
        let mut deployment = match fleet {
            Some(fleet) => Deployment::in_process_with_fleet(fleet),
            None => Deployment::in_process(),
        };
        deployment.add_store("s1");
        let alice = deployment.register_contributor("s1", "alice").unwrap();
        alice.upload_scenario(&alice_scenario(3)).unwrap();
        alice.set_rules(&json!([{"Action": "Allow"}])).unwrap();
        let bob = deployment.register_consumer("bob").unwrap();
        bob.add_contributors(&["alice"]).unwrap();
        if scraped {
            deployment.start_fleet_scraper();
        }
        (deployment, bob)
    };
    let scrape_config = |millis: u64| FleetConfig {
        scrape_interval: std::time::Duration::from_millis(millis),
        ..FleetConfig::default()
    };
    let rigs = [
        ("no fleet scraping", wire(None)),
        (
            "scraped every 100 ms (50x default)",
            wire(Some(scrape_config(100))),
        ),
        (
            "scraped every 10 ms (500x default)",
            wire(Some(scrape_config(10))),
        ),
    ];

    const ROUNDS: usize = 5;
    const ITERATIONS: usize = 30;
    let mut best = [f64::INFINITY; 3];
    for round in 0..=ROUNDS {
        for (i, (_, (_deployment, bob))) in rigs.iter().enumerate() {
            let started = std::time::Instant::now();
            for _ in 0..ITERATIONS {
                let results = bob.download_all(&Query::all()).unwrap();
                assert!(results[0].1.raw_samples() > 0);
            }
            let mean_ms = started.elapsed().as_secs_f64() * 1e3 / ITERATIONS as f64;
            // Round 0 is warm-up (caches, scraper series registration).
            if round > 0 && mean_ms < best[i] {
                best[i] = mean_ms;
            }
        }
    }
    let sweeps: Vec<u64> = rigs
        .iter()
        .map(|(_, (deployment, _))| {
            deployment
                .broker()
                .handle(&sensorsafe_core::net::Request::get("/fleet"))
                .json_body()
                .ok()
                .and_then(|b| b["sweeps"].as_u64())
                .unwrap_or(0)
        })
        .collect();
    for (i, (label, _)) in rigs.iter().enumerate() {
        println!(
            "{label:<36} {:>9.3} ms/query (best of {ROUNDS}, {} sweeps)",
            best[i], sweeps[i]
        );
    }
    let overhead_100ms = (best[1] - best[0]) / best[0] * 100.0;
    let overhead_10ms = (best[2] - best[0]) / best[0] * 100.0;
    println!("--> scrape overhead at 100 ms interval: {overhead_100ms:+.2}% (budget: <5%)");
    println!("--> scrape overhead at 10 ms interval:  {overhead_10ms:+.2}% (budget: <5%)");
    // Broker-side cost of the most aggressive rig, from its own
    // self-observation metrics (fleet gauges live on the broker
    // instance registry, not the process-wide one).
    let broker_metrics = rigs[2].1 .0.broker().handle(&Request::get("/metrics"));
    let text = String::from_utf8(broker_metrics.body).unwrap();
    for line in text.lines().filter(|l| {
        l.starts_with("sensorsafe_broker_fleet_scrape_seconds_sum")
            || l.starts_with("sensorsafe_broker_fleet_scrape_seconds_count")
            || l.starts_with("sensorsafe_broker_fleet_retained_series")
    }) {
        println!("    {line}");
    }
    println!();
    // Scrapers stop (and join) when the deployments drop here.
}

fn o3_profiler_overhead_table() {
    println!("== O3: continuous profiler overhead on the mixed workload ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    use sensorsafe_core::obsv::prof;
    // Same estimator as O1/O2: interleave the configurations over
    // several rounds and report each configuration's best round, since
    // scheduler noise on a multi-threaded run dwarfs the 5% budget.
    // The sampler rate is process-wide state, so each configuration
    // sets it (and the plane's kill switch) just before its timed run.
    //
    // `disabled` is the true baseline: frame enter/exit reduces to one
    // relaxed load + branch and the sampler parks. `0 Hz` keeps the
    // span-stats table hot (every frame still timed) without stack
    // sampling, isolating the bookkeeping cost from the sampling cost.
    let configs: [(&str, bool, u64); 4] = [
        ("profiling plane disabled", false, 0),
        ("frames on, sampler paused (0 Hz)", true, 0),
        ("frames on, sampler at 99 Hz (default)", true, 99),
        ("frames on, sampler at 997 Hz", true, 997),
    ];
    let threads = 4;
    let ops = 600;
    let workload = mixed_workload(LockMode::Sharded, 8);
    run_mixed_traffic(&workload, threads, 40); // warm-up, discarded

    const ROUNDS: usize = 8;
    let mut best = [0.0f64; 4];
    for round in 0..=ROUNDS {
        for (i, (_, enabled, hz)) in configs.iter().enumerate() {
            prof::set_enabled(*enabled);
            prof::set_sample_rate_hz(*hz);
            let elapsed = run_mixed_traffic(&workload, threads, ops);
            let rate = (threads * ops) as f64 / elapsed.as_secs_f64();
            // Round 0 is warm-up (sampler thread spawn, interning).
            if round > 0 && rate > best[i] {
                best[i] = rate;
            }
        }
    }
    prof::set_enabled(true);
    prof::set_sample_rate_hz(prof::DEFAULT_SAMPLE_HZ);

    for (i, (label, _, _)) in configs.iter().enumerate() {
        let overhead = (best[0] - best[i]) / best[0] * 100.0;
        println!(
            "{label:<40} {:>10.0} req/s (best of {ROUNDS}, {overhead:+.2}% vs disabled)",
            best[i]
        );
    }
    let overhead_99 = (best[0] - best[2]) / best[0] * 100.0;
    println!("--> sampler overhead at 99 Hz: {overhead_99:+.2}% (budget: <5%)");
    println!(
        "    {} stack samples taken process-wide so far",
        prof::total_samples()
    );
    println!();
}

fn o4_awareness_overhead_table() {
    println!("== O4: awareness-aggregator overhead on the mixed workload ==");
    println!(
        "environment: {} CPU(s) visible to this process",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    // Same interleaved best-of-round estimator as O1-O3. The awareness
    // plane hangs off the store, so the kill switch is flipped on the
    // workload's own instance between timed runs; every consumer query
    // in the C1 mix funnels one decision through `record_decision`,
    // which is exactly the aggregation path being priced.
    let configs: [(&str, bool); 2] = [
        ("awareness plane disabled", false),
        ("awareness plane enabled (default)", true),
    ];
    let threads = 4;
    let ops = 600;
    let workload = mixed_workload(LockMode::Sharded, 8);
    run_mixed_traffic(&workload, threads, 40); // warm-up, discarded

    const ROUNDS: usize = 8;
    let mut best = [0.0f64; 2];
    for round in 0..=ROUNDS {
        for (i, (_, enabled)) in configs.iter().enumerate() {
            workload.store.awareness().set_enabled(*enabled);
            let elapsed = run_mixed_traffic(&workload, threads, ops);
            let rate = (threads * ops) as f64 / elapsed.as_secs_f64();
            // Round 0 is warm-up (allocator, map growth) and discarded.
            if round > 0 && rate > best[i] {
                best[i] = rate;
            }
        }
    }
    workload.store.awareness().set_enabled(true);

    for (i, (label, _)) in configs.iter().enumerate() {
        let overhead = (best[0] - best[i]) / best[0] * 100.0;
        println!(
            "{label:<40} {:>10.0} req/s (best of {ROUNDS}, {overhead:+.2}% vs disabled)",
            best[i]
        );
    }
    let overhead = (best[0] - best[1]) / best[0] * 100.0;
    println!("--> awareness aggregation overhead: {overhead:+.2}% (budget: <5%)");
    println!(
        "    {} decisions aggregated on the workload store",
        workload.store.awareness().aggregates().total().total()
    );
    println!();
}

fn obsv_metrics_snapshot(store: &sensorsafe_core::datastore::DataStoreService) {
    println!("== OBSV: metrics snapshot after the runs above ==");
    // Per-instance (datastore) families first, then the process-wide
    // registry — the same concatenation `GET /metrics` serves.
    let mut exposition = store.registry().encode();
    exposition.push_str(&sensorsafe_core::obsv::global().encode());
    for line in exposition.lines().filter(|l| !l.starts_with('#')) {
        println!("{line}");
    }
    println!();
}

fn main() {
    // Self-exec entry point for the C3 soak's client children.
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("c3-client") {
        let addr = args.get(2).expect("c3-client <addr> <conns>");
        let conns = args
            .get(3)
            .and_then(|n| n.parse().ok())
            .expect("c3-client <addr> <conns>");
        c3_client_main(addr, conns);
        return;
    }
    // `report c4` runs the storage-engine sweep alone — the section CI
    // and the OPERATIONS.md runbook re-run in isolation.
    if args.get(1).map(String::as_str) == Some("c4") {
        c4_store_wide_group_commit_table();
        return;
    }
    // `report o3` runs the profiler overhead sweep alone — the section
    // EXPERIMENTS.md O3 and the OPERATIONS.md runbook reference.
    if args.get(1).map(String::as_str) == Some("o3") {
        o3_profiler_overhead_table();
        return;
    }
    // `report o4` runs the awareness overhead sweep alone — the section
    // EXPERIMENTS.md O4 and the OPERATIONS.md runbook reference.
    if args.get(1).map(String::as_str) == Some("o4") {
        o4_awareness_overhead_table();
        return;
    }

    f5_storage_table();
    a1_merge_table();
    a2_search_table();
    a3_savings_table();
    f1_byte_accounting();
    c1_concurrency_table();
    c2_durable_upload_table();
    c3_evented_core_table();
    c4_store_wide_group_commit_table();
    obsv_overhead_table();
    fleet_scrape_overhead_table();
    o3_profiler_overhead_table();
    o4_awareness_overhead_table();

    // Re-run one instrumented flow so the snapshot shows every family.
    let mut deployment = Deployment::in_process();
    let store = deployment.add_store("s1");
    let alice = deployment.register_contributor("s1", "alice").unwrap();
    alice.upload_scenario(&alice_scenario(5)).unwrap();
    alice.set_rules(&json!([{"Action": "Allow"}])).unwrap();
    let bob = deployment.register_consumer("bob").unwrap();
    bob.add_contributors(&["alice"]).unwrap();
    let _ = bob.download_all(&Query::all()).unwrap();
    obsv_metrics_snapshot(&store);
}
