//! Shared workload builders for the SensorSafe benchmark harness.
//!
//! Each bench target regenerates one paper artifact (see DESIGN.md §4
//! and EXPERIMENTS.md); this crate holds the workload constructors they
//! share so benches and the `report` binary measure identical inputs.

use sensorsafe_core::policy::{
    AbstractionSpec, Action, BinaryAbs, Conditions, ConsumerSelector, LocationCondition,
    PrivacyRule, TimeCondition,
};
use sensorsafe_core::sim::Scenario;
use sensorsafe_core::store::{MergePolicy, SegmentStore, TupleStore};
use sensorsafe_core::types::{
    ChannelSpec, ContextKind, GeoPoint, Region, RepeatTime, SegmentMeta, Timestamp, Timing,
    WaveSegment,
};

/// Day-start timestamp used across all workloads.
pub const DAY_START: i64 = 1_311_500_000_000;

/// Builds `n_packets` consecutive Zephyr-style 64-sample chest packets
/// (ECG i16 + respiration f32 at 50 Hz).
pub fn chest_packets(n_packets: usize) -> Vec<WaveSegment> {
    let hz = 50.0;
    (0..n_packets)
        .map(|p| {
            let start = DAY_START + (p * 64 * 20) as i64;
            let meta = SegmentMeta {
                timing: Timing::Uniform {
                    start: Timestamp::from_millis(start),
                    interval_secs: 1.0 / hz,
                },
                location: Some(GeoPoint::ucla()),
                format: vec![ChannelSpec::i16("ecg"), ChannelSpec::f32("respiration")],
            };
            let rows: Vec<Vec<f64>> = (0..64)
                .map(|i| {
                    let t = (p * 64 + i) as f64;
                    vec![(t * 1.3).sin() * 400.0, 300.0 + (t / 25.0).sin() * 40.0]
                })
                .collect();
            WaveSegment::from_rows(meta, &rows).expect("valid packet")
        })
        .collect()
}

/// Loads packets into a segment store with the given merge policy.
pub fn segment_store_with(packets: &[WaveSegment], merge: MergePolicy) -> SegmentStore {
    let mut store = SegmentStore::in_memory(merge);
    for p in packets {
        store.insert_segment(p.clone()).expect("in-memory insert");
    }
    store
}

/// Loads the same packets into the per-tuple baseline.
pub fn tuple_store_with(packets: &[WaveSegment]) -> TupleStore {
    let mut store = TupleStore::new();
    for p in packets {
        store.insert_segment(p);
    }
    store
}

/// A rule set with one rule per Table 1 condition type, for T1.
pub fn table1_rule_set() -> Vec<PrivacyRule> {
    vec![
        PrivacyRule::allow_all(),
        PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User("bob".into())],
                ..Default::default()
            },
            action: Action::Allow,
        },
        PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec!["UCLA".into()],
                    regions: vec![Region::around(GeoPoint::ucla(), 0.01)],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                time: Some(TimeCondition {
                    ranges: vec![],
                    repeats: vec![RepeatTime::weekdays_nine_to_six()],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                sensors: vec!["ecg".into()],
                contexts: vec![ContextKind::Drive],
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Conversation],
                ..Default::default()
            },
            action: Action::Abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::NotShared),
                ..Default::default()
            }),
        },
    ]
}

/// Synthetic per-contributor rule sets for the A2 search bench,
/// deterministic in `i`. Contributors fall into four equal classes:
/// driving-deniers, at-work-deniers, smoking-abstractors, and
/// unrestricted sharers; `rules_per_contributor` pads the set with
/// consumer-scoped allow rules so rule-count scaling can be measured
/// without changing the class mix.
pub fn synthetic_rules(i: usize, rules_per_contributor: usize) -> Vec<PrivacyRule> {
    let mut rules = vec![PrivacyRule::allow_all()];
    let restriction = match i % 4 {
        0 => Some(PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Drive],
                sensors: vec!["ecg".into(), "respiration".into()],
                ..Default::default()
            },
            action: Action::Deny,
        }),
        1 => Some(PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec!["work".into()],
                    regions: vec![],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        }),
        2 => Some(PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Abstraction(AbstractionSpec {
                smoking: Some(BinaryAbs::Label),
                ..Default::default()
            }),
        }),
        _ => None, // unrestricted sharer
    };
    rules.extend(restriction);
    while rules.len() < rules_per_contributor {
        rules.push(PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User(
                    format!("colleague-{}", rules.len()).as_str().into(),
                )],
                ..Default::default()
            },
            action: Action::Allow,
        });
    }
    rules.truncate(rules_per_contributor.max(1));
    rules
}

/// The canonical Alice day used by device benches.
pub fn alice_scenario(seed: u64) -> Scenario {
    Scenario::alice_day(Timestamp::from_millis(DAY_START), seed, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chest_packets_are_mergeable() {
        let packets = chest_packets(10);
        assert_eq!(packets.len(), 10);
        assert!(packets[0].can_merge(&packets[1]));
        let store = segment_store_with(&packets, MergePolicy::default());
        assert_eq!(store.stats().segments, 1);
        let tuples = tuple_store_with(&packets);
        assert_eq!(tuples.len(), 640);
    }

    #[test]
    fn workload_rule_sets_parse() {
        assert_eq!(table1_rule_set().len(), 6);
        assert_eq!(synthetic_rules(0, 4).len(), 4);
        assert_eq!(synthetic_rules(5, 1).len(), 1);
    }
}
