//! Shared workload builders for the SensorSafe benchmark harness.
//!
//! Each bench target regenerates one paper artifact (see DESIGN.md §4
//! and EXPERIMENTS.md); this crate holds the workload constructors they
//! share so benches and the `report` binary measure identical inputs.

use sensorsafe_core::datastore::{DataStoreConfig, DataStoreService, LockMode};
use sensorsafe_core::net::{Request, Service, Status};
use sensorsafe_core::policy::{
    AbstractionSpec, Action, BinaryAbs, Conditions, ConsumerSelector, LocationCondition,
    PrivacyRule, TimeCondition,
};
use sensorsafe_core::sim::Scenario;
use sensorsafe_core::store::{GroupCommitConfig, MergePolicy, SegmentStore, TupleStore};
use sensorsafe_core::types::{
    ChannelSpec, ContextKind, GeoPoint, Region, RepeatTime, SegmentMeta, Timestamp, Timing,
    WaveSegment,
};
use sensorsafe_core::{json, Value};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Day-start timestamp used across all workloads.
pub const DAY_START: i64 = 1_311_500_000_000;

/// Builds `n_packets` consecutive Zephyr-style 64-sample chest packets
/// (ECG i16 + respiration f32 at 50 Hz).
pub fn chest_packets(n_packets: usize) -> Vec<WaveSegment> {
    let hz = 50.0;
    (0..n_packets)
        .map(|p| {
            let start = DAY_START + (p * 64 * 20) as i64;
            let meta = SegmentMeta {
                timing: Timing::Uniform {
                    start: Timestamp::from_millis(start),
                    interval_secs: 1.0 / hz,
                },
                location: Some(GeoPoint::ucla()),
                format: vec![ChannelSpec::i16("ecg"), ChannelSpec::f32("respiration")],
            };
            let rows: Vec<Vec<f64>> = (0..64)
                .map(|i| {
                    let t = (p * 64 + i) as f64;
                    vec![(t * 1.3).sin() * 400.0, 300.0 + (t / 25.0).sin() * 40.0]
                })
                .collect();
            WaveSegment::from_rows(meta, &rows).expect("valid packet")
        })
        .collect()
}

/// Loads packets into a segment store with the given merge policy.
pub fn segment_store_with(packets: &[WaveSegment], merge: MergePolicy) -> SegmentStore {
    let mut store = SegmentStore::in_memory(merge);
    for p in packets {
        store.insert_segment(p.clone()).expect("in-memory insert");
    }
    store
}

/// Loads the same packets into the per-tuple baseline.
pub fn tuple_store_with(packets: &[WaveSegment]) -> TupleStore {
    let mut store = TupleStore::new();
    for p in packets {
        store.insert_segment(p);
    }
    store
}

/// A rule set with one rule per Table 1 condition type, for T1.
pub fn table1_rule_set() -> Vec<PrivacyRule> {
    vec![
        PrivacyRule::allow_all(),
        PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User("bob".into())],
                ..Default::default()
            },
            action: Action::Allow,
        },
        PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec!["UCLA".into()],
                    regions: vec![Region::around(GeoPoint::ucla(), 0.01)],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                time: Some(TimeCondition {
                    ranges: vec![],
                    repeats: vec![RepeatTime::weekdays_nine_to_six()],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                sensors: vec!["ecg".into()],
                contexts: vec![ContextKind::Drive],
                ..Default::default()
            },
            action: Action::Deny,
        },
        PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Conversation],
                ..Default::default()
            },
            action: Action::Abstraction(AbstractionSpec {
                stress: Some(BinaryAbs::NotShared),
                ..Default::default()
            }),
        },
    ]
}

/// Synthetic per-contributor rule sets for the A2 search bench,
/// deterministic in `i`. Contributors fall into four equal classes:
/// driving-deniers, at-work-deniers, smoking-abstractors, and
/// unrestricted sharers; `rules_per_contributor` pads the set with
/// consumer-scoped allow rules so rule-count scaling can be measured
/// without changing the class mix.
pub fn synthetic_rules(i: usize, rules_per_contributor: usize) -> Vec<PrivacyRule> {
    let mut rules = vec![PrivacyRule::allow_all()];
    let restriction = match i % 4 {
        0 => Some(PrivacyRule {
            conditions: Conditions {
                contexts: vec![ContextKind::Drive],
                sensors: vec!["ecg".into(), "respiration".into()],
                ..Default::default()
            },
            action: Action::Deny,
        }),
        1 => Some(PrivacyRule {
            conditions: Conditions {
                location: Some(LocationCondition {
                    labels: vec!["work".into()],
                    regions: vec![],
                }),
                ..Default::default()
            },
            action: Action::Deny,
        }),
        2 => Some(PrivacyRule {
            conditions: Conditions::default(),
            action: Action::Abstraction(AbstractionSpec {
                smoking: Some(BinaryAbs::Label),
                ..Default::default()
            }),
        }),
        _ => None, // unrestricted sharer
    };
    rules.extend(restriction);
    while rules.len() < rules_per_contributor {
        rules.push(PrivacyRule {
            conditions: Conditions {
                consumers: vec![ConsumerSelector::User(
                    format!("colleague-{}", rules.len()).as_str().into(),
                )],
                ..Default::default()
            },
            action: Action::Allow,
        });
    }
    rules.truncate(rules_per_contributor.max(1));
    rules
}

/// The canonical Alice day used by device benches.
pub fn alice_scenario(seed: u64) -> Scenario {
    Scenario::alice_day(Timestamp::from_millis(DAY_START), seed, 1)
}

/// A data store preloaded for the C1 concurrency workload: one server in
/// the requested [`LockMode`], `n` registered contributors (each with
/// data and a non-trivial rule set) and one consumer.
pub struct MixedWorkload {
    /// The in-process store all traffic targets.
    pub store: DataStoreService,
    /// `(name, api_key)` per contributor.
    pub contributors: Vec<(String, String)>,
    /// The consumer's API key.
    pub consumer_key: String,
}

/// Builds the C1 workload: register `n_contributors` on a fresh store in
/// `lock_mode`, give each a rule set that exercises real enforcement
/// (allow-all plus a context-scoped deny) and `preload_packets` chest
/// packets, and register one consumer.
pub fn mixed_workload(lock_mode: LockMode, n_contributors: usize) -> MixedWorkload {
    let (store, admin) = DataStoreService::new(DataStoreConfig {
        lock_mode,
        ..Default::default()
    });
    let admin = admin.to_hex();
    let preload: Vec<Value> = chest_packets(8).iter().map(WaveSegment::to_json).collect();
    let mut contributors = Vec::with_capacity(n_contributors);
    for i in 0..n_contributors {
        let name = format!("c{i}");
        let resp = store.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.clone()), "name": (name.clone()), "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Created, "contributor registration");
        let key = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        let resp = store.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": (key.clone()), "rules": [
                {"Action": "Allow"},
                {"Context": ["Drive"], "Sensor": ["ecg"], "Action": "Deny"},
            ]}),
        ));
        assert_eq!(resp.status, Status::Ok, "rules/set");
        let resp = store.handle(&Request::post_json(
            "/api/upload",
            &json!({"key": (key.clone()), "segments": (Value::Array(preload.clone()))}),
        ));
        assert_eq!(resp.status, Status::Ok, "preload upload");
        contributors.push((name, key));
    }
    let resp = store.handle(&Request::post_json(
        "/api/register",
        &json!({"key": (admin.clone()), "name": "bob", "role": "consumer"}),
    ));
    assert_eq!(resp.status, Status::Created, "consumer registration");
    let consumer_key = resp.json_body().unwrap()["api_key"]
        .as_str()
        .unwrap()
        .to_string();
    MixedWorkload {
        store,
        contributors,
        consumer_key,
    }
}

/// One 64-sample chest packet per contributor, a day past the preload
/// region (so C1 traffic uploads never intersect the queried window).
fn future_packet(i: usize) -> WaveSegment {
    future_packet_at(i, 0)
}

/// Round `round` of contributor `i`'s packet stream: each round starts
/// exactly where the previous one ended, so consecutive uploads merge —
/// the shape of a real continuous 1 Hz sensor feed. Contributors are
/// strided a day apart so streams never overlap.
fn future_packet_at(i: usize, round: usize) -> WaveSegment {
    let start = DAY_START + 86_400_000 + (i as i64) * 86_400_000 + (round * 64 * 20) as i64;
    let meta = SegmentMeta {
        timing: Timing::Uniform {
            start: Timestamp::from_millis(start),
            interval_secs: 1.0 / 50.0,
        },
        location: Some(GeoPoint::ucla()),
        format: vec![ChannelSpec::i16("ecg"), ChannelSpec::f32("respiration")],
    };
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|r| vec![(r as f64 * 1.3).sin() * 400.0, 300.0])
        .collect();
    WaveSegment::from_rows(meta, &rows).expect("valid packet")
}

/// Drives `threads` workers, each issuing `ops_per_thread` alternating
/// upload (as a fixed contributor) and consumer-query (round-robin over
/// contributors) requests against `workload.store`. All request bodies
/// are rendered before the clock starts; the returned duration covers
/// only the traffic. Every response must be 200/OK.
pub fn run_mixed_traffic(
    workload: &MixedWorkload,
    threads: usize,
    ops_per_thread: usize,
) -> Duration {
    let n = workload.contributors.len();
    assert!(n > 0 && threads > 0);
    // One single-packet upload per contributor, placed far after the
    // preload window so repeated uploads never land inside the queried
    // range (per-query work stays constant as the run accumulates data).
    let upload_reqs: Arc<Vec<Request>> = Arc::new(
        workload
            .contributors
            .iter()
            .enumerate()
            .map(|(i, (_, key))| {
                let packet = future_packet(i);
                Request::post_json(
                    "/api/upload",
                    &json!({"key": (key.clone()), "segments": (Value::Array(vec![packet.to_json()]))}),
                )
            })
            .collect(),
    );
    // Queries pin the preload window (8 packets x 64 samples x 20 ms).
    let window_end = DAY_START + 8 * 64 * 20;
    let query_reqs: Arc<Vec<Request>> = Arc::new(
        workload
            .contributors
            .iter()
            .map(|(name, _)| {
                Request::post_json(
                    "/api/query",
                    &json!({
                        "key": (workload.consumer_key.clone()),
                        "contributor": (name.clone()),
                        "query": {"time": {"start": DAY_START, "end": window_end}},
                    }),
                )
            })
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = workload.store.clone();
            let uploads = upload_reqs.clone();
            let queries = query_reqs.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ops_per_thread {
                    let resp = if i % 2 == 0 {
                        store.handle(&uploads[t % uploads.len()])
                    } else {
                        store.handle(&queries[(t + i) % queries.len()])
                    };
                    assert_eq!(resp.status, Status::Ok, "mixed-traffic op failed");
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for handle in handles {
        handle.join().expect("traffic thread panicked");
    }
    started.elapsed()
}

/// A data store in durable mode for the C2 group-commit workload: WAL
/// files live in a fresh temp directory (removed on drop), contributor
/// accounts are registered, and every upload is acked only after a
/// durable commit.
pub struct DurableWorkload {
    /// The in-process durable store all traffic targets.
    pub store: DataStoreService,
    /// `(name, api_key)` per contributor.
    pub contributors: Vec<(String, String)>,
    /// The store's admin (`Role::Server`) key in hex — lets a bench
    /// drive operator paths like `/repl/reset` re-enrollment wipes.
    pub admin_key: String,
    config: DataStoreConfig,
    dir: std::path::PathBuf,
}

impl Drop for DurableWorkload {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl DurableWorkload {
    /// Shuts the running service down and reopens a fresh one over the
    /// same on-disk state, returning how long the reopen took. Under
    /// [`StorageEngine::Journal`](sensorsafe_core::datastore::StorageEngine)
    /// that covers the full journal replay
    /// (checkpoint load + tail-segment scan), so this is the C4
    /// recovery-time probe: with rotation + checkpoints, the duration
    /// must stay flat as upload history grows.
    pub fn restart(&mut self) -> Duration {
        // Swap in a throwaway in-memory service so the durable one drops
        // (joining its journal threads and releasing the directory)
        // before the reopen is timed.
        let (placeholder, _key) = DataStoreService::new(Default::default());
        drop(std::mem::replace(&mut self.store, placeholder));
        let started = Instant::now();
        let (store, _admin) = DataStoreService::new(self.config.clone());
        let elapsed = started.elapsed();
        self.store = store;
        elapsed
    }
}

/// Builds the C2 workload: a durable store under the given group-commit
/// configuration and the default storage engine, with `n_contributors`
/// registered accounts.
pub fn durable_workload(wal: GroupCommitConfig, n_contributors: usize) -> DurableWorkload {
    durable_workload_with(
        DataStoreConfig {
            wal,
            ..Default::default()
        },
        n_contributors,
    )
}

/// Builds a durable workload from an explicit [`DataStoreConfig`]
/// (engine, group-commit, and journal rotation settings) — the C4
/// builder. The config's `data_dir` is overwritten with a fresh temp
/// directory that the workload removes on drop.
pub fn durable_workload_with(
    mut config: DataStoreConfig,
    n_contributors: usize,
) -> DurableWorkload {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sensorsafe-c2-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    config.data_dir = Some(dir.clone());
    let (store, admin) = DataStoreService::new(config.clone());
    let admin = admin.to_hex();
    let mut contributors = Vec::with_capacity(n_contributors);
    for i in 0..n_contributors {
        let name = format!("c{i}");
        let resp = store.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.clone()), "name": (name.clone()), "role": "contributor"}),
        ));
        assert_eq!(resp.status, Status::Created, "contributor registration");
        let key = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        contributors.push((name, key));
    }
    DurableWorkload {
        store,
        contributors,
        admin_key: admin,
        config,
        dir,
    }
}

/// Drives the C4 many-accounts/low-rate shape: every contributor uploads
/// exactly one packet per round (`rounds * n_contributors` uploads
/// total), with the contributor space sharded over `threads` workers.
/// Each contributor's rounds form one contiguous packet stream (they
/// merge, like a real 1 Hz feed). Unlike [`run_durable_uploads`] — many
/// threads hammering few accounts — no account ever sees two concurrent
/// uploads here, so per-account group commit has nothing to coalesce and
/// only a store-wide commit path can batch the fsyncs. `start_round`
/// continues a stream a previous call left off at. Bodies are
/// pre-rendered; the duration covers only the traffic.
pub fn run_many_account_uploads(
    workload: &DurableWorkload,
    threads: usize,
    start_round: usize,
    rounds: usize,
) -> Duration {
    let n = workload.contributors.len();
    assert!(n > 0 && threads > 0);
    let render_round = |round: usize| -> Vec<Request> {
        workload
            .contributors
            .iter()
            .enumerate()
            .map(|(i, (_, key))| {
                let packet = future_packet_at(i, round);
                Request::post_json(
                    "/api/upload",
                    &json!({"key": (key.clone()), "segments": (Value::Array(vec![packet.to_json()]))}),
                )
            })
            .collect()
    };
    let upload_reqs: Arc<Vec<Vec<Request>>> = Arc::new(
        (start_round..start_round + rounds)
            .map(render_round)
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = workload.store.clone();
            let uploads = upload_reqs.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for round in uploads.iter() {
                    for i in (t..round.len()).step_by(threads) {
                        let resp = store.handle(&round[i]);
                        assert_eq!(resp.status, Status::Ok, "many-account upload failed");
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for handle in handles {
        handle.join().expect("upload thread panicked");
    }
    started.elapsed()
}

/// Drives `threads` workers, each issuing `ops_per_thread` durable
/// single-packet uploads (thread `t` targets contributor `t % n`, so
/// with more threads than contributors concurrent uploads contend for
/// the same account and its WAL — the group-commit case). Bodies are
/// pre-rendered; the duration covers only the traffic. Every upload
/// must ack 200/OK, i.e. durably committed.
pub fn run_durable_uploads(
    workload: &DurableWorkload,
    threads: usize,
    ops_per_thread: usize,
) -> Duration {
    let n = workload.contributors.len();
    assert!(n > 0 && threads > 0);
    let upload_reqs: Arc<Vec<Request>> = Arc::new(
        (0..threads)
            .map(|t| {
                let (_, key) = &workload.contributors[t % n];
                let packet = future_packet(t);
                Request::post_json(
                    "/api/upload",
                    &json!({"key": (key.clone()), "segments": (Value::Array(vec![packet.to_json()]))}),
                )
            })
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = workload.store.clone();
            let uploads = upload_reqs.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ops_per_thread {
                    let resp = store.handle(&uploads[t]);
                    assert_eq!(resp.status, Status::Ok, "durable upload failed");
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for handle in handles {
        handle.join().expect("upload thread panicked");
    }
    started.elapsed()
}

/// Resident set size (`VmRSS`) of this process in KiB, read from
/// `/proc/self/status`. Returns 0 where procfs is unavailable, so C3
/// memory columns degrade to zeros instead of failing the run.
pub fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmRSS:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// One keep-alive connection held open by the C3 soak (stream for
/// writes, buffered clone for reads).
pub struct SoakConn {
    stream: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

/// Opens `n` keep-alive connections to `addr`, then proves every one
/// live with a [`soak_round`]. Transient connect failures (listen
/// backlog overflow while thousands of peers arrive) are retried
/// briefly before giving up.
pub fn open_soak_conns(addr: &str, n: usize) -> std::io::Result<Vec<SoakConn>> {
    let mut conns = Vec::with_capacity(n);
    for _ in 0..n {
        let mut attempts = 0;
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(_) if attempts < 50 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        };
        // Request heads go out as a few small writes; without nodelay,
        // Nagle + delayed ACK turns every round trip into ~40 ms.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        conns.push(SoakConn { stream, reader });
    }
    soak_round(&mut conns)?;
    Ok(conns)
}

/// Sends `GET /healthz` on every connection and reads every response —
/// one full round over the whole set, erroring if any connection has
/// gone dead or answers non-200.
pub fn soak_round(conns: &mut [SoakConn]) -> std::io::Result<()> {
    use sensorsafe_core::net::http::{read_response, write_request};
    let ping = Request::get("/healthz");
    for conn in conns.iter_mut() {
        write_request(&mut conn.stream, &ping)?;
        let resp = read_response(&mut conn.reader)?;
        if resp.status != Status::Ok {
            return Err(std::io::Error::other(format!(
                "soak round got {:?}",
                resp.status
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_core::datastore::StorageEngine;

    #[test]
    fn chest_packets_are_mergeable() {
        let packets = chest_packets(10);
        assert_eq!(packets.len(), 10);
        assert!(packets[0].can_merge(&packets[1]));
        let store = segment_store_with(&packets, MergePolicy::default());
        assert_eq!(store.stats().segments, 1);
        let tuples = tuple_store_with(&packets);
        assert_eq!(tuples.len(), 640);
    }

    #[test]
    fn workload_rule_sets_parse() {
        assert_eq!(table1_rule_set().len(), 6);
        assert_eq!(synthetic_rules(0, 4).len(), 4);
        assert_eq!(synthetic_rules(5, 1).len(), 1);
    }

    #[test]
    fn durable_uploads_coalesce_fsyncs() {
        // The C2 acceptance shape in miniature: 4 threads hammering one
        // contributor's WAL must ack every upload with fewer fsyncs than
        // uploads (group commit), and the data must be on disk.
        let fsyncs = sensorsafe_core::obsv::global().counter(
            "sensorsafe_store_wal_fsyncs_total",
            "fsync calls issued by write-ahead logs.",
            &[],
        );
        let workload = durable_workload(GroupCommitConfig::default(), 1);
        let before = fsyncs.get();
        run_durable_uploads(&workload, 4, 8);
        let spent = fsyncs.get() - before;
        assert!(spent > 0, "durable uploads must fsync");
        assert!(spent < 32, "no coalescing: {spent} fsyncs for 32 uploads");
    }

    #[test]
    fn c4_group_commit_coalesces_across_accounts() {
        // The C4 acceptance shape at reduced scale: many accounts, each
        // uploading at most once at a time. Per-account WALs get no
        // coalescing from this shape (one fsync per upload), while the
        // store-wide journal batches strangers' uploads into shared
        // fsyncs. A restart replays the journal and must come back up.
        let fsyncs = sensorsafe_core::obsv::global().counter(
            "sensorsafe_store_wal_fsyncs_total",
            "fsync calls issued by write-ahead logs.",
            &[],
        );
        let contributors = 48;
        let (threads, rounds) = (8, 2);
        let total = (contributors * rounds) as u64;

        let wal_workload = durable_workload_with(
            DataStoreConfig {
                engine: StorageEngine::PerAccountWal,
                ..Default::default()
            },
            contributors,
        );
        let before = fsyncs.get();
        run_many_account_uploads(&wal_workload, threads, 0, rounds);
        let per_account_spent = fsyncs.get() - before;
        assert!(
            per_account_spent >= total,
            "per-account WALs cannot coalesce across accounts: \
             {per_account_spent} fsyncs for {total} uploads"
        );

        let mut journal_workload = durable_workload_with(
            DataStoreConfig {
                engine: StorageEngine::Journal,
                ..Default::default()
            },
            contributors,
        );
        let before = fsyncs.get();
        run_many_account_uploads(&journal_workload, threads, 0, rounds);
        let journal_spent = fsyncs.get() - before;
        assert!(journal_spent > 0, "durable uploads must fsync");
        assert!(
            journal_spent * 2 < total,
            "store-wide group commit should batch across accounts: \
             {journal_spent} fsyncs for {total} uploads"
        );

        let replay = journal_workload.restart();
        assert!(replay > Duration::ZERO, "restart must replay the journal");
    }

    #[test]
    fn soak_helpers_round_trip_against_an_evented_store() {
        use sensorsafe_core::net::{EventedConfig, Server};
        let (store, _admin) = DataStoreService::new(Default::default());
        let config = EventedConfig {
            loops: 1,
            handler_threads: 2,
            ..EventedConfig::default()
        };
        let server = Server::bind_evented("127.0.0.1:0", config, Arc::new(store)).unwrap();
        let mut conns = open_soak_conns(&server.addr_string(), 8).unwrap();
        soak_round(&mut conns).unwrap();
        assert!(rss_kb() > 0, "VmRSS should be readable on this platform");
    }

    #[test]
    fn mixed_traffic_runs_in_both_lock_modes() {
        for mode in [LockMode::Sharded, LockMode::GlobalLock] {
            let workload = mixed_workload(mode, 3);
            assert_eq!(workload.contributors.len(), 3);
            let elapsed = run_mixed_traffic(&workload, 2, 6);
            assert!(elapsed > Duration::ZERO);
        }
    }
}
