//! F2 — Fig. 2's authentication layer: "Every interaction with both
//! servers has to go through the user authentication layer."
//!
//! Measures the per-request cost of that layer (API-key hash + lookup),
//! its scaling with registered-key count, and the end-to-end overhead
//! on a small query (authenticated vs the same work with auth skipped —
//! approximated by the unauthenticated /health endpoint).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensorsafe_core::auth::{ApiKey, KeyRing, Principal, Role};
use sensorsafe_core::datastore::{DataStoreConfig, DataStoreService};
use sensorsafe_core::net::{Request, Service};
use sensorsafe_core::{json, Value};
use std::hint::black_box;

fn bench_keyring_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_keyring_authenticate");
    for n in [1usize, 100, 10_000] {
        let ring = KeyRing::new();
        let mut probe = String::new();
        for i in 0..n {
            let key = ring.register(Principal {
                name: format!("user-{i}"),
                role: Role::Consumer,
            });
            if i == n / 2 {
                probe = key.to_hex();
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &ring, |b, ring| {
            b.iter(|| black_box(ring.authenticate(black_box(&probe)).is_some()))
        });
    }
    group.finish();
}

fn bench_key_generation(c: &mut Criterion) {
    c.bench_function("f2_api_key_generate", |b| {
        b.iter(|| black_box(ApiKey::generate().to_hex()))
    });
}

fn bench_request_with_and_without_auth(c: &mut Criterion) {
    let (svc, admin) = DataStoreService::new(DataStoreConfig::default());
    let resp = svc.handle(&Request::post_json(
        "/api/register",
        &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
    ));
    let alice_key = resp.json_body().unwrap()["api_key"]
        .as_str()
        .unwrap()
        .to_string();
    let mut group = c.benchmark_group("f2_request_path");
    // Unauthenticated endpoint (no auth-layer work).
    let health = Request::get("/health");
    group.bench_function("health_no_auth", |b| {
        b.iter(|| black_box(svc.handle(black_box(&health)).status))
    });
    // Authenticated endpoint doing trivial work (empty rules read).
    let rules_get = Request::post_json("/api/rules/get", &json!({"key": alice_key}));
    group.bench_function("rules_get_authenticated", |b| {
        b.iter(|| black_box(svc.handle(black_box(&rules_get)).status))
    });
    // Rejected request (bad key): the auth layer's failure path.
    let bad = Request::post_json("/api/rules/get", &json!({"key": ("0".repeat(64))}));
    group.bench_function("rules_get_rejected", |b| {
        b.iter(|| black_box(svc.handle(black_box(&bad)).status))
    });
    group.finish();
    let _: Value = json!(null);
}

criterion_group!(
    benches,
    bench_keyring_lookup_scaling,
    bench_key_generation,
    bench_request_with_and_without_auth
);
criterion_main!(benches);
