//! A1 — §5.1's merge optimization ablation.
//!
//! "If this packet is directly converted to a wave segment, there will
//! be too many wave segments in total decreasing the query performance."
//! Measures query latency with merging disabled (one segment per
//! 64-sample Zephyr packet) versus enabled at several caps, plus the
//! ingest-side cost of merging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensorsafe_bench::{chest_packets, segment_store_with, DAY_START};
use sensorsafe_core::store::{MergePolicy, Query, SegmentStore};
use sensorsafe_core::types::{TimeRange, Timestamp};
use std::hint::black_box;

const PACKETS: usize = 2812; // one hour

fn full_scan_query() -> Query {
    Query::all().in_time(TimeRange::new(
        Timestamp::from_millis(DAY_START),
        Timestamp::from_millis(DAY_START + 3600 * 1000),
    ))
}

fn point_query() -> Query {
    // One second somewhere in the middle.
    let t = DAY_START + 1800 * 1000;
    Query::all().in_time(TimeRange::new(
        Timestamp::from_millis(t),
        Timestamp::from_millis(t + 1000),
    ))
}

fn policies() -> Vec<(&'static str, MergePolicy)> {
    vec![
        ("disabled_64_per_segment", MergePolicy::disabled()),
        (
            "cap_512",
            MergePolicy {
                enabled: true,
                max_rows: 512,
            },
        ),
        ("cap_8192_default", MergePolicy::default()),
        (
            "cap_unbounded",
            MergePolicy {
                enabled: true,
                max_rows: usize::MAX,
            },
        ),
    ]
}

fn bench_query_vs_merge_policy(c: &mut Criterion) {
    let packets = chest_packets(PACKETS);
    let stores: Vec<(&str, SegmentStore)> = policies()
        .into_iter()
        .map(|(name, policy)| (name, segment_store_with(&packets, policy)))
        .collect();
    let scan = full_scan_query();
    let point = point_query();
    let mut scan_group = c.benchmark_group("a1_hour_scan_query");
    for (name, store) in &stores {
        scan_group.bench_with_input(BenchmarkId::from_parameter(name), store, |b, store| {
            b.iter(|| black_box(store.query(black_box(&scan)).len()))
        });
    }
    scan_group.finish();
    let mut point_group = c.benchmark_group("a1_one_second_point_query");
    for (name, store) in &stores {
        point_group.bench_with_input(BenchmarkId::from_parameter(name), store, |b, store| {
            b.iter(|| black_box(store.query(black_box(&point)).len()))
        });
    }
    point_group.finish();
}

fn bench_ingest_cost_of_merging(c: &mut Criterion) {
    let packets = chest_packets(512);
    let mut group = c.benchmark_group("a1_ingest_512_packets");
    group.sample_size(20);
    for (name, policy) in policies() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            b.iter(|| black_box(segment_store_with(&packets, *policy).stats().segments))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_vs_merge_policy,
    bench_ingest_cost_of_merging
);
criterion_main!(benches);
