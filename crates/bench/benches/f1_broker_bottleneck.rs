//! F1 — Fig. 1's architectural claim: "The broker is not a performance
//! bottleneck because sensor data are directly transferred from each
//! remote data store to data consumers."
//!
//! Compares the SensorSafe data path (broker serves only the access
//! list; data flows store→consumer) against a strawman broker that
//! relays the data itself, as contributor count grows. The broker-side
//! work per downloaded megabyte should stay flat in the SensorSafe
//! design and grow linearly in the strawman.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::alice_scenario;
use sensorsafe_core::net::{LocalTransport, Request, Response, Service, Transport};
use sensorsafe_core::store::Query;
use sensorsafe_core::{json, Deployment};
use std::hint::black_box;
use std::sync::Arc;

/// Builds a deployment with `n` contributors (all sharing), returning
/// the consumer app plus direct store transport for the strawman.
fn deployment_with(n: usize) -> (Deployment, sensorsafe_core::ConsumerApp) {
    let mut deployment = Deployment::in_process();
    deployment.add_store("store-1");
    for i in 0..n {
        let handle = deployment
            .register_contributor("store-1", &format!("c{i}"))
            .unwrap();
        handle.upload_scenario(&alice_scenario(i as u64)).unwrap();
        handle.set_rules(&json!([{"Action": "Allow"}])).unwrap();
    }
    let bob = deployment.register_consumer("bob").unwrap();
    let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    bob.add_contributors(&refs).unwrap();
    (deployment, bob)
}

/// The strawman: every byte of data relayed through a broker-side proxy
/// handler (an extra hop + copy on the broker).
struct RelayBroker {
    store: Arc<dyn Transport>,
}

impl Service for RelayBroker {
    fn handle(&self, request: &Request) -> Response {
        // Forward verbatim and copy the response back out — exactly what
        // a data-relaying broker would do.
        match self.store.round_trip(request) {
            Ok(resp) => resp,
            Err(_) => Response::error(sensorsafe_core::net::Status::InternalError, "relay failed"),
        }
    }
}

fn bench_direct_vs_relayed(c: &mut Criterion) {
    let (deployment, bob) = deployment_with(4);
    let query = Query::all();
    // Direct path: consumer → store.
    let mut group = c.benchmark_group("f1_download_4_contributors");
    group.sample_size(10);
    group.throughput(Throughput::Elements(4));
    group.bench_function("sensorsafe_direct", |b| {
        b.iter(|| {
            let results = bob.download_all(&query).unwrap();
            black_box(results.iter().map(|(_, v)| v.raw_samples()).sum::<usize>())
        })
    });
    // Strawman: same requests through the relay hop.
    let store_transport = (deployment.transports())("store-1");
    let relay: Arc<dyn Service> = Arc::new(RelayBroker {
        store: store_transport,
    });
    let relay_transport = LocalTransport::new(relay);
    let access = bob.access_list().unwrap();
    group.bench_function("strawman_broker_relay", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for entry in &access {
                let body = json!({
                    "key": (entry.api_key.clone()),
                    "contributor": (entry.contributor.clone()),
                    "query": (query.to_json()),
                });
                let resp = relay_transport
                    .round_trip(&Request::post_json("/api/query", &body))
                    .unwrap();
                total += resp.body.len();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_broker_metadata_path_scaling(c: &mut Criterion) {
    // The broker's own per-download work (serving the access list) as
    // contributor count grows: this is all the broker ever does on the
    // data path.
    let mut group = c.benchmark_group("f1_broker_access_list");
    group.sample_size(20);
    for n in [1usize, 8, 32] {
        let (_deployment, bob) = deployment_with(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &bob, |b, bob| {
            b.iter(|| black_box(bob.access_list().unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_relayed,
    bench_broker_metadata_path_scaling
);
criterion_main!(benches);
