//! A3 — §5.3 privacy-rule-aware data collection.
//!
//! End-to-end device runs over Alice's day: plain upload-everything vs
//! rule-aware collection under her §6 rules. Timing here; the data-
//! volume and sensor-time savings are printed by the `report` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use sensorsafe_bench::alice_scenario;
use sensorsafe_core::net::{LocalTransport, Request, Transport};
use sensorsafe_core::{json, ContributorDevice, Deployment};
use std::hint::black_box;
use std::sync::Arc;

fn device_rig(rules: sensorsafe_core::Value) -> (Arc<dyn Transport>, String) {
    let mut deployment = Deployment::in_process();
    let store = deployment.add_store("s1");
    let alice = deployment.register_contributor("s1", "alice").unwrap();
    alice.set_rules(&rules).unwrap();
    let transport: Arc<dyn Transport> = Arc::new(LocalTransport::new(Arc::new(store)));
    (transport, alice.api_key.clone())
}

fn alice_rules() -> sensorsafe_core::Value {
    json!([
        {"Action": "Allow"},
        {"Context": ["Drive"], "Action": "Deny"},
    ])
}

fn bench_device_runs(c: &mut Criterion) {
    let scenario = alice_scenario(9);
    let mut group = c.benchmark_group("a3_device_day_run");
    group.sample_size(10); // each iteration renders + uploads a full day
    {
        let (transport, key) = device_rig(alice_rules());
        let device = ContributorDevice::new(transport, key);
        group.bench_function("plain_upload_everything", |b| {
            b.iter(|| black_box(device.run_scenario(&scenario).unwrap().0.uploaded_samples))
        });
    }
    {
        let (transport, key) = device_rig(alice_rules());
        let device = ContributorDevice::new(transport, key).with_rule_aware(true);
        group.bench_function("rule_aware", |b| {
            b.iter(|| black_box(device.run_scenario(&scenario).unwrap().0.uploaded_samples))
        });
    }
    {
        // Nothing shareable: the device should be *fastest* (sensors
        // off, no uploads).
        let (transport, key) = device_rig(json!([]));
        let device = ContributorDevice::new(transport, key).with_rule_aware(true);
        group.bench_function("rule_aware_nothing_shared", |b| {
            b.iter(|| black_box(device.run_scenario(&scenario).unwrap().0.sensor_off_secs))
        });
    }
    group.finish();
}

fn bench_rule_download(c: &mut Criterion) {
    let (transport, key) = device_rig(alice_rules());
    let device = ContributorDevice::new(transport.clone(), key.clone());
    c.bench_function("a3_rules_download", |b| {
        b.iter(|| black_box(device.download_rules().unwrap().len()))
    });
    // Keep transport alive explicitly (the rig's store lives in it).
    let _ = transport.round_trip(&Request::get("/health"));
    let _ = key;
}

criterion_group!(benches, bench_device_runs, bench_rule_download);
criterion_main!(benches);
