//! C1 — fine-grained concurrency: per-contributor sharded locking vs the
//! pre-sharding single global lock, under N threads of mixed
//! upload/query traffic over the in-process transport.
//!
//! Each measured iteration builds a fresh 8-contributor store in the
//! given [`LockMode`], then drives `threads` workers through alternating
//! uploads (each worker writes its own contributor) and consumer queries
//! (round-robin across contributors). Throughput is reported in
//! requests/second; both modes are measured in the same run so the
//! sharded/global ratio is directly comparable. See EXPERIMENTS.md C1
//! for recorded sweeps (including the contributor-count axis, produced
//! by the `report` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::{mixed_workload, run_mixed_traffic};
use sensorsafe_core::datastore::LockMode;
use std::hint::black_box;
use std::time::Duration;

const CONTRIBUTORS: usize = 8;
const OPS_PER_THREAD: usize = 100;

fn bench_mixed_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("c1_mixed_traffic_8_contributors");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(400));
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        for (label, mode) in [
            ("global", LockMode::GlobalLock),
            ("sharded", LockMode::Sharded),
        ] {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let workload = mixed_workload(mode, CONTRIBUTORS);
                    black_box(run_mixed_traffic(&workload, threads, OPS_PER_THREAD))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed_traffic);
criterion_main!(benches);
