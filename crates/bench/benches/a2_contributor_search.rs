//! A2 — §5.2 contributor search scaling.
//!
//! The paper's example query — "finding data contributors who share ECG
//! and respiration sensor data at the location labeled 'work' from 9am
//! to 6pm on weekdays" — run against rule mirrors of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::synthetic_rules;
use sensorsafe_core::policy::{ConsumerCtx, RuleIndex, SearchQuery};
use sensorsafe_core::types::{ContextKind, ContributorId, RepeatTime};
use std::hint::black_box;

fn paper_query() -> SearchQuery {
    SearchQuery {
        consumer: ConsumerCtx::user("bob"),
        raw_channels: vec!["ecg".into(), "respiration".into()],
        location_labels: vec!["work".into()],
        repeat: Some(RepeatTime::weekdays_nine_to_six()),
        ..Default::default()
    }
}

fn driving_stress_query() -> SearchQuery {
    SearchQuery {
        consumer: ConsumerCtx::user("bob"),
        raw_channels: vec!["ecg".into(), "respiration".into()],
        active_contexts: vec![ContextKind::Drive],
        ..Default::default()
    }
}

fn index_with(contributors: usize, rules_each: usize) -> RuleIndex {
    let mut index = RuleIndex::new();
    for i in 0..contributors {
        index.sync(
            ContributorId::new(format!("contributor-{i:05}")),
            1,
            synthetic_rules(i, rules_each),
        );
    }
    index
}

fn bench_search_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_search_vs_contributors");
    for n in [10usize, 100, 1_000, 10_000] {
        let index = index_with(n, 4);
        let query = paper_query();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &index, |b, index| {
            b.iter(|| black_box(index.search(black_box(&query)).len()))
        });
    }
    group.finish();
}

fn bench_search_vs_rules_per_contributor(c: &mut Criterion) {
    let mut group = c.benchmark_group("a2_search_vs_rules_per_contributor");
    for rules_each in [1usize, 4, 16, 32] {
        let index = index_with(500, rules_each);
        let query = driving_stress_query();
        group.bench_with_input(
            BenchmarkId::from_parameter(rules_each),
            &index,
            |b, index| b.iter(|| black_box(index.search(black_box(&query)).len())),
        );
    }
    group.finish();
}

fn bench_sync_throughput(c: &mut Criterion) {
    // The push-sync write path: how fast can the mirror absorb rule
    // updates?
    c.bench_function("a2_sync_one_update_into_1000", |b| {
        let mut index = index_with(1_000, 4);
        let mut epoch = 2u64;
        b.iter(|| {
            epoch += 1;
            black_box(index.sync(
                ContributorId::new("contributor-00500"),
                epoch,
                synthetic_rules(7, 4),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_search_scaling,
    bench_search_vs_rules_per_contributor,
    bench_sync_throughput
);
criterion_main!(benches);
