//! C2 — durable upload throughput under WAL group commit: batched
//! commits vs the per-record (`unbatched`) baseline, sweeping batch
//! settings and upload concurrency.
//!
//! Each measured iteration builds a fresh durable 2-contributor store
//! (WALs in a temp dir) under the given [`GroupCommitConfig`], then
//! drives `threads` workers through single-packet durable uploads;
//! every ack means a completed `write`+`fsync` covering that record.
//! With threads > contributors, concurrent uploads to the same account
//! share batches, so the batched configs ack the same uploads with far
//! fewer fsyncs. Throughput is requests/second; the fsync-vs-uploads
//! counter sweep is produced by the `report` binary and recorded in
//! EXPERIMENTS.md C2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::{durable_workload, run_durable_uploads};
use sensorsafe_core::store::GroupCommitConfig;
use std::hint::black_box;
use std::time::Duration;

const CONTRIBUTORS: usize = 2;
const OPS_PER_THREAD: usize = 50;

fn configs() -> Vec<(&'static str, GroupCommitConfig)> {
    vec![
        ("unbatched", GroupCommitConfig::unbatched()),
        ("batch64_500us", GroupCommitConfig::default()),
        (
            "batch16_200us",
            GroupCommitConfig {
                max_batch: 16,
                max_delay: Duration::from_micros(200),
            },
        ),
        (
            "batch256_2ms",
            GroupCommitConfig {
                max_batch: 256,
                max_delay: Duration::from_millis(2),
            },
        ),
    ]
}

fn bench_durable_uploads(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_durable_upload_2_contributors");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(400));
    for threads in [1usize, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        for (label, config) in configs() {
            group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, &threads| {
                b.iter(|| {
                    let workload = durable_workload(config, CONTRIBUTORS);
                    black_box(run_durable_uploads(&workload, threads, OPS_PER_THREAD))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_durable_uploads);
criterion_main!(benches);
