//! R1 — replication segment wire codec throughput: encode and decode
//! cost of shipping sealed WAL batches, swept over batch size. The
//! `repl-shipper` thread pays encode on the primary and the replica
//! pays decode (plus CRC verification) on every applied batch, so this
//! bounds how much replication lag a single shipper pass can drain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_core::store::repl::{decode_batch, encode_batch};
use sensorsafe_core::store::{SealedBatch, WalRecord};
use sensorsafe_core::types::{ChannelSpec, GeoPoint, SegmentMeta, Timestamp, Timing, WaveSegment};
use std::hint::black_box;
use std::time::Duration;

const ROWS_PER_SEGMENT: usize = 50;

fn batch(records: usize) -> SealedBatch {
    let segments = (0..records)
        .map(|i| {
            let meta = SegmentMeta {
                timing: Timing::Uniform {
                    start: Timestamp::from_millis(i as i64 * 1_000),
                    interval_secs: 0.02,
                },
                location: Some(GeoPoint::ucla()),
                format: vec![ChannelSpec::f32("ecg"), ChannelSpec::f32("respiration")],
            };
            let data: Vec<Vec<f64>> = (0..ROWS_PER_SEGMENT)
                .map(|r| vec![(i * ROWS_PER_SEGMENT + r) as f64, 300.0])
                .collect();
            WalRecord::Segment(WaveSegment::from_rows(meta, &data).unwrap())
        })
        .collect();
    SealedBatch {
        seq: 1,
        records: segments,
    }
}

fn bench_repl_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("r1_repl_codec");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(400));
    for records in [1usize, 16, 256] {
        let b = batch(records);
        let encoded = encode_batch("alice", 1, &b);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", records), &b, |bench, b| {
            bench.iter(|| black_box(encode_batch(black_box("alice"), 1, b)));
        });
        group.bench_with_input(
            BenchmarkId::new("decode", records),
            &encoded,
            |bench, bytes| {
                bench.iter(|| black_box(decode_batch(black_box(bytes)).unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_repl_codec);
criterion_main!(benches);
