//! C3 — evented network core: per-request round-trip latency over a
//! keep-alive connection, in both server modes, with and without
//! thousands of idle connections parked on the same server.
//!
//! The full 10k-connection flat-memory run is produced by the `report`
//! binary (EXPERIMENTS.md C3; the fd budget forces client connections
//! into child processes there). This bench regenerates the latency
//! face of the claim: a readiness-driven server answers in the same
//! time whether 0 or 2,000 idle connections are parked, because idle
//! sockets cost it nothing but a slab slot and a timer-wheel entry.
//! The thread-pool baseline has no 2,000-idle variant — it would need
//! 2,000 dedicated workers just to keep those sockets open.

use criterion::{criterion_group, criterion_main, Criterion};
use sensorsafe_bench::{open_soak_conns, soak_round};
use sensorsafe_core::json;
use sensorsafe_core::net::{EventedConfig, Response, Router, Server, ServerMode, Service};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn healthz_service() -> Arc<dyn Service> {
    let mut router = Router::new();
    router.get("/healthz", |_, _| Response::json(&json!({"status": "ok"})));
    Arc::new(router)
}

fn bench_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_keepalive_round_trip");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(400));

    let evented = |idle_timeout: Duration| EventedConfig {
        loops: 2,
        handler_threads: 4,
        idle_timeout,
        ..EventedConfig::default()
    };

    {
        let server = Server::bind_evented(
            "127.0.0.1:0",
            evented(Duration::from_secs(30)),
            healthz_service(),
        )
        .expect("evented server");
        let mut conn = open_soak_conns(&server.addr_string(), 1).expect("bench conn");
        group.bench_function("evented", |b| {
            b.iter(|| black_box(soak_round(&mut conn)).expect("round trip"))
        });
    }

    {
        let server = Server::bind_mode("127.0.0.1:0", ServerMode::ThreadPool, 4, healthz_service())
            .expect("thread-pool server");
        let mut conn = open_soak_conns(&server.addr_string(), 1).expect("bench conn");
        group.bench_function("thread_pool", |b| {
            b.iter(|| black_box(soak_round(&mut conn)).expect("round trip"))
        });
    }

    {
        // Same evented rig, but with 2,000 idle keep-alive connections
        // parked on it for the whole measurement. The idle timeout is
        // raised so none of them is reaped mid-bench.
        let server = Server::bind_evented(
            "127.0.0.1:0",
            evented(Duration::from_secs(600)),
            healthz_service(),
        )
        .expect("evented server");
        let _parked = open_soak_conns(&server.addr_string(), 2_000).expect("parked conns");
        let mut conn = open_soak_conns(&server.addr_string(), 1).expect("bench conn");
        group.bench_function("evented_2000_idle_parked", |b| {
            b.iter(|| black_box(soak_round(&mut conn)).expect("round trip"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_round_trip);
criterion_main!(benches);
