//! T1 — Table 1: rule-evaluation throughput per condition type.
//!
//! Measures the access-control engine's per-window decision latency for
//! each condition kind in isolation, for the combined Table 1 rule set,
//! and as rule-set size scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sensorsafe_bench::table1_rule_set;
use sensorsafe_core::policy::{
    evaluate, Action, Conditions, ConsumerCtx, ConsumerSelector, DependencyGraph,
    LocationCondition, PrivacyRule, TimeCondition, WindowCtx,
};
use sensorsafe_core::types::{
    ChannelId, ContextKind, ContextState, GeoPoint, Region, RepeatTime, Timestamp,
};
use std::hint::black_box;

fn window() -> WindowCtx {
    WindowCtx {
        time: Timestamp::from_civil(2011, 7, 4).plus_millis(10 * 3600 * 1000),
        location: Some(GeoPoint::ucla()),
        location_labels: vec!["UCLA".into()],
        contexts: vec![
            ContextState::on(ContextKind::Drive),
            ContextState::on(ContextKind::Stress),
            ContextState::off(ContextKind::Conversation),
        ],
    }
}

fn channels() -> Vec<ChannelId> {
    [
        "ecg",
        "respiration",
        "accel_mag",
        "audio_energy",
        "gps_lat",
        "gps_lon",
    ]
    .iter()
    .map(|c| ChannelId::new(*c))
    .collect()
}

fn per_condition_rules() -> Vec<(&'static str, PrivacyRule)> {
    vec![
        (
            "consumer",
            PrivacyRule {
                conditions: Conditions {
                    consumers: vec![ConsumerSelector::User("bob".into())],
                    ..Default::default()
                },
                action: Action::Allow,
            },
        ),
        (
            "location-label",
            PrivacyRule {
                conditions: Conditions {
                    location: Some(LocationCondition {
                        labels: vec!["UCLA".into()],
                        regions: vec![],
                    }),
                    ..Default::default()
                },
                action: Action::Allow,
            },
        ),
        (
            "location-region",
            PrivacyRule {
                conditions: Conditions {
                    location: Some(LocationCondition {
                        labels: vec![],
                        regions: vec![Region::around(GeoPoint::ucla(), 0.01)],
                    }),
                    ..Default::default()
                },
                action: Action::Allow,
            },
        ),
        (
            "time-repeat",
            PrivacyRule {
                conditions: Conditions {
                    time: Some(TimeCondition {
                        ranges: vec![],
                        repeats: vec![RepeatTime::weekdays_nine_to_six()],
                    }),
                    ..Default::default()
                },
                action: Action::Allow,
            },
        ),
        (
            "sensor",
            PrivacyRule {
                conditions: Conditions {
                    sensors: vec!["ecg".into()],
                    ..Default::default()
                },
                action: Action::Allow,
            },
        ),
        (
            "context",
            PrivacyRule {
                conditions: Conditions {
                    contexts: vec![ContextKind::Drive],
                    ..Default::default()
                },
                action: Action::Deny,
            },
        ),
    ]
}

fn bench_condition_types(c: &mut Criterion) {
    let graph = DependencyGraph::paper();
    let bob = ConsumerCtx::user("bob");
    let w = window();
    let chans = channels();
    let mut group = c.benchmark_group("t1_condition_types");
    for (name, rule) in per_condition_rules() {
        let rules = vec![rule];
        group.bench_function(name, |b| {
            b.iter(|| black_box(evaluate(black_box(&rules), &bob, &w, &chans, &graph)))
        });
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    let graph = DependencyGraph::paper();
    let bob = ConsumerCtx::user("bob");
    let w = window();
    let chans = channels();
    let rules = table1_rule_set();
    c.bench_function("t1_full_table1_rule_set", |b| {
        b.iter(|| black_box(evaluate(&rules, &bob, &w, &chans, &graph)))
    });
}

fn bench_rule_count_scaling(c: &mut Criterion) {
    let graph = DependencyGraph::paper();
    let bob = ConsumerCtx::user("bob");
    let w = window();
    let chans = channels();
    let mut group = c.benchmark_group("t1_rule_count_scaling");
    for n in [1usize, 8, 32, 128] {
        let rules: Vec<PrivacyRule> = (0..n)
            .map(|i| sensorsafe_bench::synthetic_rules(i, 2).pop().unwrap())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &rules, |b, rules| {
            b.iter(|| black_box(evaluate(rules, &bob, &w, &chans, &graph)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_condition_types,
    bench_full_table,
    bench_rule_count_scaling
);
criterion_main!(benches);
