//! F4 — Fig. 4: privacy-rule JSON parsing and serialization throughput
//! (the wire format every rule edit and broker sync pays for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::synthetic_rules;
use sensorsafe_core::policy::PrivacyRule;
use std::hint::black_box;

const FIG4: &str = r#"[{ 'Consumer': ['Bob'],
 'LocationLabel': ['UCLA'],
 'Action': 'Allow'
},
{ 'Consumer': ['Bob'],
 'LocationLabel': ['UCLA'],
 'RepeatTime': { 'Day': ['Mon', 'Tue', 'Wed', 'Thu', 'Fri'],
 'HourMin': ['9:00am', '6:00pm']},
 'Context': ['Conversation'],
 'Action': { 'Abstraction': { 'Stress': 'NotShared' } }
}]"#;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_fig4_document");
    group.throughput(Throughput::Bytes(FIG4.len() as u64));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(PrivacyRule::parse_rules(black_box(FIG4)).unwrap().len()))
    });
    let rules = PrivacyRule::parse_rules(FIG4).unwrap();
    group.bench_function("serialize", |b| {
        b.iter(|| {
            black_box(
                PrivacyRule::rules_to_json(black_box(&rules))
                    .to_string()
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_rule_set_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_parse_vs_rule_count");
    for n in [2usize, 16, 128] {
        let rules: Vec<PrivacyRule> = (0..n).flat_map(|i| synthetic_rules(i, 2)).take(n).collect();
        let text = PrivacyRule::rules_to_json(&rules).to_string();
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &text, |b, text| {
            b.iter(|| black_box(PrivacyRule::parse_rules(black_box(text)).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_rule_set_size);
criterion_main!(benches);
