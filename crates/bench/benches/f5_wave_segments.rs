//! F5 — Fig. 5's wave-segment representation vs per-sample tuples.
//!
//! The paper: "Storing the time series of sensor data as individual
//! tuples is inefficient both in terms of storage size and querying
//! time." This bench loads identical chest-band workloads into the
//! [`TupleStore`] baseline and the wave-segment store, then measures
//! range-query latency; the companion `report` binary prints the
//! storage-size comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sensorsafe_bench::{chest_packets, segment_store_with, tuple_store_with, DAY_START};
use sensorsafe_core::store::{MergePolicy, Query, TupleStore};
use sensorsafe_core::types::{TimeRange, Timestamp};
use std::hint::black_box;

/// One hour of 50 Hz chest data = 2812 packets.
const PACKETS: usize = 2812;

fn mid_range_query() -> Query {
    // A 5-minute window in the middle of the hour.
    let start = DAY_START + 25 * 60 * 1000;
    Query::all().in_time(TimeRange::new(
        Timestamp::from_millis(start),
        Timestamp::from_millis(start + 5 * 60 * 1000),
    ))
}

fn bench_query_latency(c: &mut Criterion) {
    let packets = chest_packets(PACKETS);
    let tuple_store: TupleStore = tuple_store_with(&packets);
    let merged = segment_store_with(&packets, MergePolicy::default());
    let unmerged = segment_store_with(&packets, MergePolicy::disabled());
    let query = mid_range_query();
    let samples_hit = 5 * 60 * 50u64;
    let mut group = c.benchmark_group("f5_range_query_5min_of_1h");
    group.throughput(Throughput::Elements(samples_hit));
    group.bench_function("tuple_baseline", |b| {
        b.iter(|| black_box(tuple_store.query(black_box(&query)).len()))
    });
    group.bench_function("wave_segments_unmerged_64", |b| {
        b.iter(|| black_box(unmerged.query(black_box(&query)).len()))
    });
    group.bench_function("wave_segments_merged", |b| {
        b.iter(|| black_box(merged.query(black_box(&query)).len()))
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let packets = chest_packets(256);
    let mut group = c.benchmark_group("f5_ingest_256_packets");
    group.sample_size(20);
    group.throughput(Throughput::Elements(256 * 64));
    group.bench_function("tuple_baseline", |b| {
        b.iter(|| black_box(tuple_store_with(&packets).len()))
    });
    group.bench_function("wave_segments_merged", |b| {
        b.iter(|| {
            black_box(
                segment_store_with(&packets, MergePolicy::default())
                    .stats()
                    .segments,
            )
        })
    });
    group.finish();
}

fn bench_segment_size_sweep(c: &mut Criterion) {
    // Query latency as a function of samples-per-segment (the paper's
    // "large enough number of samples" argument).
    let packets = chest_packets(PACKETS);
    let query = mid_range_query();
    let mut group = c.benchmark_group("f5_samples_per_segment_sweep");
    for cap in [64usize, 256, 1024, 4096, 16384] {
        let store = segment_store_with(
            &packets,
            MergePolicy {
                enabled: cap > 64,
                max_rows: cap,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(cap), &store, |b, store| {
            b.iter(|| black_box(store.query(black_box(&query)).len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_query_latency,
    bench_ingest,
    bench_segment_size_sweep
);
criterion_main!(benches);
