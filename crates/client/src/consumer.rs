//! The consumer application (Bob's workflow in §6).

use sensorsafe_datastore::{shared_view_from_json, SharedView};
use sensorsafe_json::{json, Value};
use sensorsafe_net::{Request, Transport};
use sensorsafe_store::Query;
use std::sync::Arc;

/// Resolves store addresses to transports.
pub type StoreTransports = Arc<dyn Fn(&str) -> Arc<dyn Transport> + Send + Sync>;

/// One entry of the consumer's access list, as returned by the broker.
#[derive(Debug, Clone, PartialEq)]
pub struct ContributorAccess {
    /// The contributor's name.
    pub contributor: String,
    /// Their data store's address.
    pub store_addr: String,
    /// The consumer's escrowed API key for that store.
    pub api_key: String,
}

/// Retry budget for failover-aware downloads (150 × 200 ms ≈ 30 s,
/// comfortably longer than the broker's detect-and-promote latency at
/// default scrape settings).
const DOWNLOAD_RETRIES: u32 = 150;
const DOWNLOAD_RETRY_DELAY: std::time::Duration = std::time::Duration::from_millis(200);

/// Why a single download attempt failed: retryable failures (transport
/// error, epoch fence) refresh the access list and try again; anything
/// the store actually answered (auth failure, bad query) is final.
enum DownloadError {
    Retryable(String),
    Fatal(String),
}

/// A data consumer's client: talks to the broker for discovery and to
/// data stores directly for data ("data consumers directly communicate
/// with remote data stores to download pertinent data", §4).
pub struct ConsumerApp {
    broker: Arc<dyn Transport>,
    broker_key: String,
    /// Resolves store addresses to transports (TCP in production, local
    /// in tests/benches).
    transports: StoreTransports,
}

impl ConsumerApp {
    /// A consumer holding `broker_key` on the broker.
    pub fn new(
        broker: Arc<dyn Transport>,
        broker_key: impl Into<String>,
        transports: StoreTransports,
    ) -> ConsumerApp {
        ConsumerApp {
            broker,
            broker_key: broker_key.into(),
            transports,
        }
    }

    fn post(&self, path: &str, body: &Value) -> Result<Value, String> {
        let resp = self
            .broker
            .round_trip(&Request::post_json(path, body))
            .map_err(|e| e.to_string())?;
        let payload = resp.json_body()?;
        if !resp.status.is_success() {
            return Err(format!(
                "{path} failed ({}): {}",
                resp.status.code(),
                payload["error"].as_str().unwrap_or("?")
            ));
        }
        Ok(payload)
    }

    /// Searches for contributors with suitable privacy rules (§5.2).
    /// `query` is the broker search-query JSON (see the broker API).
    pub fn search(&self, query: &Value) -> Result<Vec<String>, String> {
        let body = json!({"key": (self.broker_key.clone()), "query": (query.clone())});
        let payload = self.post("/api/search", &body)?;
        payload["contributors"]
            .as_string_list()
            .ok_or_else(|| "malformed search response".to_string())
    }

    /// Adds contributors to the account; the broker auto-registers this
    /// consumer at their stores and escrows the keys. Returns
    /// (added, errors).
    pub fn add_contributors(&self, names: &[&str]) -> Result<(Vec<String>, Vec<String>), String> {
        let body = json!({
            "key": (self.broker_key.clone()),
            "contributors": (Value::Array(names.iter().map(|n| Value::from(*n)).collect())),
        });
        let payload = self.post("/api/consumers/add", &body)?;
        let added = payload["added"].as_string_list().unwrap_or_default();
        let errors = payload["errors"].as_string_list().unwrap_or_default();
        Ok((added, errors))
    }

    /// Fetches the saved access list with escrowed keys.
    pub fn access_list(&self) -> Result<Vec<ContributorAccess>, String> {
        let body = json!({"key": (self.broker_key.clone())});
        let payload = self.post("/api/consumers/access", &body)?;
        let entries = payload["access"]
            .as_array()
            .ok_or("malformed access response")?;
        entries
            .iter()
            .map(|e| {
                Ok(ContributorAccess {
                    contributor: e["contributor"]
                        .as_str()
                        .ok_or("missing contributor")?
                        .to_string(),
                    store_addr: e["store_addr"]
                        .as_str()
                        .ok_or("missing store_addr")?
                        .to_string(),
                    api_key: e["api_key"].as_str().ok_or("missing api_key")?.to_string(),
                })
            })
            .collect()
    }

    /// Downloads one contributor's data **directly from their store**,
    /// through that contributor's privacy rules.
    ///
    /// Failover-aware: when the store is unreachable or answers with an
    /// epoch-fence rejection, the app refetches the access list from the
    /// broker (whose registry serves the *current* assignment — the
    /// promoted replica after a failover, holding the same escrowed key)
    /// and retries there. Other errors are returned immediately.
    pub fn download(
        &self,
        access: &ContributorAccess,
        query: &Query,
    ) -> Result<SharedView, String> {
        let first = match self.try_download(access, query) {
            Ok(view) => return Ok(view),
            Err(DownloadError::Fatal(e)) => return Err(e),
            Err(DownloadError::Retryable(e)) => e,
        };
        for attempt in 0..DOWNLOAD_RETRIES {
            if attempt > 0 {
                std::thread::sleep(DOWNLOAD_RETRY_DELAY);
            }
            let refreshed = self.access_list().ok().and_then(|list| {
                list.into_iter()
                    .find(|a| a.contributor == access.contributor)
            });
            let target = refreshed.as_ref().unwrap_or(access);
            match self.try_download(target, query) {
                Ok(view) => return Ok(view),
                Err(DownloadError::Fatal(e)) => return Err(e),
                Err(DownloadError::Retryable(_)) => {}
            }
        }
        Err(format!(
            "download from {} failed after retries: {first}",
            access.store_addr
        ))
    }

    fn try_download(
        &self,
        access: &ContributorAccess,
        query: &Query,
    ) -> Result<SharedView, DownloadError> {
        let transport = (self.transports)(&access.store_addr);
        let body = json!({
            "key": (access.api_key.clone()),
            "contributor": (access.contributor.clone()),
            "query": (query.to_json()),
        });
        let resp = match transport.round_trip(&Request::post_json("/api/query", &body)) {
            Ok(resp) => resp,
            Err(e) => return Err(DownloadError::Retryable(e.to_string())),
        };
        if sensorsafe_net::failover::is_fence_rejection(&resp) {
            return Err(DownloadError::Retryable("store fenced".to_string()));
        }
        if !resp.status.is_success() {
            return Err(DownloadError::Fatal(format!(
                "query failed: {}",
                resp.status.code()
            )));
        }
        resp.json_body()
            .and_then(|b| shared_view_from_json(&b))
            .map_err(DownloadError::Fatal)
    }

    /// The §6 end-to-end loop: fetch the access list and download every
    /// contributor's data for `query`. Returns (contributor, view) pairs.
    ///
    /// The whole loop runs under one trace context (rooted here unless
    /// the caller already established one), so the broker access-list
    /// call and every store download carry the same `trace_id` in their
    /// `X-SensorSafe-Trace` headers and can be correlated across the
    /// servers' `GET /traces` endpoints.
    pub fn download_all(&self, query: &Query) -> Result<Vec<(String, SharedView)>, String> {
        let _trace = match sensorsafe_obsv::trace::current_context() {
            None => Some(sensorsafe_obsv::trace::context_scope(
                sensorsafe_obsv::TraceContext::root(),
            )),
            Some(_) => None,
        };
        let mut out = Vec::new();
        for access in self.access_list()? {
            let view = self.download(&access, query)?;
            out.push((access.contributor, view));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ContributorDevice;
    use sensorsafe_broker::{BrokerConfig, BrokerService, TransportFactory};
    use sensorsafe_datastore::{DataStoreConfig, DataStoreService};
    use sensorsafe_net::{LocalTransport, Service, Status};
    use sensorsafe_sim::Scenario;
    use sensorsafe_types::Timestamp;

    /// A full in-process deployment: one store, one broker, Alice with
    /// data, rules, and Bob the consumer.
    struct World {
        store: DataStoreService,
        broker: BrokerService,
        bob_key: String,
        transports: StoreTransports,
    }

    fn world(alice_rules: Value) -> World {
        let (store, store_admin) = DataStoreService::new(DataStoreConfig::default());
        let store_for_factory = store.clone();
        let factory: TransportFactory = Arc::new(move |_addr: &str| {
            Arc::new(LocalTransport::new(Arc::new(store_for_factory.clone()))) as Arc<dyn Transport>
        });
        let (broker, broker_admin) = BrokerService::new(BrokerConfig {
            name: "broker".into(),
            transports: factory.clone(),
            ..BrokerConfig::default()
        });
        // Pair store.
        let resp = broker.handle(&Request::post_json(
            "/api/stores/register",
            &json!({"key": (broker_admin.to_hex()), "addr": "store-1",
                    "register_key": (store_admin.to_hex())}),
        ));
        let store_key = resp.json_body().unwrap()["store_key"]
            .as_str()
            .unwrap()
            .to_string();
        // Register Alice on the store + broker.
        let resp = store.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (store_admin.to_hex()), "name": "alice", "role": "contributor"}),
        ));
        let alice_key = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        broker.handle(&Request::post_json(
            "/api/contributors/register",
            &json!({"key": (store_key.clone()), "contributor": "alice", "store_addr": "store-1"}),
        ));
        // Alice's phone uploads her day.
        let store_transport: Arc<dyn Transport> =
            Arc::new(LocalTransport::new(Arc::new(store.clone())));
        let device = ContributorDevice::new(store_transport, alice_key.clone());
        let scenario = Scenario::alice_day(Timestamp::from_millis(1_311_500_000_000), 8, 1);
        device.run_scenario(&scenario).unwrap();
        // Alice's rules (set over the API so the broker mirror syncs).
        // Attach the broker link first.
        let broker_transport: Arc<dyn Transport> =
            Arc::new(LocalTransport::new(Arc::new(broker.clone())));
        store.attach_broker(sensorsafe_datastore::BrokerLink {
            transport: broker_transport,
            store_key,
            store_addr: "store-1".into(),
        });
        let resp = store.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": alice_key, "rules": alice_rules}),
        ));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(
            resp.json_body().unwrap()["broker_synced"].as_bool(),
            Some(true)
        );
        // Bob registers at the broker.
        let resp = broker.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (broker_admin.to_hex()), "name": "bob", "role": "consumer"}),
        ));
        let bob_key = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        let transports = factory;
        World {
            store,
            broker,
            bob_key,
            transports,
        }
    }

    fn app(world: &World) -> ConsumerApp {
        let broker_transport: Arc<dyn Transport> =
            Arc::new(LocalTransport::new(Arc::new(world.broker.clone())));
        ConsumerApp::new(
            broker_transport,
            world.bob_key.clone(),
            world.transports.clone(),
        )
    }

    #[test]
    fn bob_full_workflow() {
        let world = world(json!([{"Action": "Allow"}]));
        let bob = app(&world);
        // Search finds Alice.
        let hits = bob
            .search(&json!({"channels": ["ecg", "respiration"]}))
            .unwrap();
        assert_eq!(hits, ["alice"]);
        // Add her; download directly from the store.
        let (added, errors) = bob.add_contributors(&["alice"]).unwrap();
        assert_eq!(added, ["alice"]);
        assert!(errors.is_empty(), "{errors:?}");
        let results = bob.download_all(&Query::all()).unwrap();
        assert_eq!(results.len(), 1);
        let (name, view) = &results[0];
        assert_eq!(name, "alice");
        assert!(view.raw_samples() > 0);
    }

    #[test]
    fn enforcement_applies_on_download() {
        // Alice denies stress sources while driving (§6); Bob's download
        // must not contain commute ECG.
        let world = world(json!([
            {"Action": "Allow"},
            {"Context": ["Drive"], "Sensor": ["ecg", "respiration"], "Action": "Deny"},
        ]));
        let bob = app(&world);
        bob.add_contributors(&["alice"]).unwrap();
        let results = bob.download_all(&Query::all()).unwrap();
        let view = &results[0].1;
        assert!(view.raw_samples() > 0);
        // Find Alice's drive annotations via her own store state.
        let id = sensorsafe_types::ContributorId::new("alice");
        let drives: Vec<sensorsafe_types::TimeRange> = world
            .store
            .state()
            .with_contributor(&id, |a| {
                a.store
                    .annotations()
                    .iter()
                    .filter(|an| an.state_of(sensorsafe_types::ContextKind::Drive) == Some(true))
                    .map(|an| an.window)
                    .collect()
            })
            .unwrap();
        assert!(!drives.is_empty());
        for w in &view.windows {
            if let Some(seg) = &w.segment {
                if seg.channels().any(|c| c.as_str() == "ecg") {
                    let r = seg.time_range().unwrap();
                    assert!(!drives.iter().any(|d| d.overlaps(&r)), "commute ECG leaked");
                }
            }
        }
    }

    #[test]
    fn search_excludes_unsuitable_contributors() {
        // Bob studies stress while driving; Alice withholds it, so the
        // search must come back empty (the §6 outcome).
        let world = world(json!([
            {"Action": "Allow"},
            {"Context": ["Drive"], "Sensor": ["ecg", "respiration"], "Action": "Deny"},
        ]));
        let bob = app(&world);
        let hits = bob
            .search(&json!({
                "channels": ["ecg", "respiration"],
                "active_contexts": ["Drive"],
            }))
            .unwrap();
        assert!(hits.is_empty());
        // Without the driving requirement she matches.
        let hits = bob.search(&json!({"channels": ["accel_mag"]})).unwrap();
        assert_eq!(hits, ["alice"]);
    }

    #[test]
    fn download_all_spans_one_trace_across_broker_and_store() {
        let world = world(json!([{"Action": "Allow"}]));
        let bob = app(&world);
        bob.add_contributors(&["alice"]).unwrap();
        bob.download_all(&Query::all()).unwrap();
        // The access-list call (broker) and the query (store) were served
        // under the same ambient trace context.
        let broker_trace = world
            .broker
            .recent_traces()
            .into_iter()
            .rev()
            .find(|t| t.name == "POST /api/consumers/access")
            .expect("broker served the access-list call");
        let store_trace = world
            .store
            .recent_traces()
            .into_iter()
            .rev()
            .find(|t| t.name == "POST /api/query")
            .expect("store served the query");
        assert_ne!(broker_trace.trace_id, 0);
        assert_eq!(broker_trace.trace_id, store_trace.trace_id);
    }

    #[test]
    fn bad_broker_key_errors() {
        let world = world(json!([{"Action": "Allow"}]));
        let broker_transport: Arc<dyn Transport> =
            Arc::new(LocalTransport::new(Arc::new(world.broker.clone())));
        let evil = ConsumerApp::new(broker_transport, "0".repeat(64), world.transports.clone());
        assert!(evil.search(&json!({})).is_err());
        assert!(evil.access_list().is_err());
    }
}
