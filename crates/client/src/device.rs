//! The contributor's phone: data collection, inference, upload, and
//! §5.3 privacy-rule-aware collection.

use sensorsafe_inference::InferencePipeline;
use sensorsafe_json::{json, Value};
use sensorsafe_net::{Request, Transport};
use sensorsafe_policy::{
    evaluate, ConsumerCtx, ConsumerSelector, DependencyGraph, PrivacyRule, WindowCtx,
};
use sensorsafe_sim::Scenario;
use sensorsafe_types::{ChannelId, ContextAnnotation, TimeRange, WaveSegment};
use std::sync::Arc;

/// What the device decided to do with one context window of data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectionDecision {
    /// Sensors stayed off: no rule could share data at this place/time
    /// regardless of context.
    SensorsOff,
    /// Collected temporarily to infer context, then discarded: no rule
    /// shares data in the inferred context.
    Discarded,
    /// Collected and uploaded.
    Uploaded,
}

/// Per-run accounting (bench A3 reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceMetrics {
    /// Samples produced by sensors (collected at all).
    pub collected_samples: usize,
    /// Samples actually uploaded.
    pub uploaded_samples: usize,
    /// Samples collected temporarily then discarded on-device.
    pub discarded_samples: usize,
    /// Seconds the sensors were fully off.
    pub sensor_off_secs: u32,
    /// Seconds the sensors were on.
    pub sensor_on_secs: u32,
    /// Bytes sent to the data store (JSON payload sizes).
    pub uploaded_bytes: usize,
}

/// The contributor's phone + chest band.
pub struct ContributorDevice {
    store: Arc<dyn Transport>,
    api_key: String,
    /// §5.3's optional behaviour ("we provide privacy rule-aware data
    /// collection as optional functionality").
    pub rule_aware: bool,
    pipeline: InferencePipeline,
    graph: DependencyGraph,
}

impl ContributorDevice {
    /// A device uploading to `store` as the contributor owning
    /// `api_key`.
    pub fn new(store: Arc<dyn Transport>, api_key: impl Into<String>) -> ContributorDevice {
        ContributorDevice {
            store,
            api_key: api_key.into(),
            rule_aware: false,
            pipeline: InferencePipeline::default(),
            graph: DependencyGraph::paper(),
        }
    }

    /// Enables privacy-rule-aware collection.
    pub fn with_rule_aware(mut self, enabled: bool) -> ContributorDevice {
        self.rule_aware = enabled;
        self
    }

    /// Downloads the owner's rules from the data store ("smartphones …
    /// download the owner's privacy rules from the remote data stores").
    pub fn download_rules(&self) -> Result<Vec<PrivacyRule>, String> {
        let resp = self
            .store
            .round_trip(&Request::post_json(
                "/api/rules/get",
                &json!({"key": (self.api_key.clone())}),
            ))
            .map_err(|e| e.to_string())?;
        if !resp.status.is_success() {
            return Err(format!("rules/get failed: {}", resp.status.code()));
        }
        let body = resp.json_body()?;
        PrivacyRule::parse_rules(&body["rules"].to_string()).map_err(|e| e.to_string())
    }

    /// Would *any* consumer mentioned in `rules` receive anything for
    /// this window? The device cannot know future consumers, so it
    /// probes one synthetic consumer per selector appearing in the rules
    /// (plus an anonymous one for selector-free rules).
    fn would_share(
        &self,
        rules: &[PrivacyRule],
        window: &WindowCtx,
        channels: &[ChannelId],
    ) -> bool {
        let mut probes: Vec<ConsumerCtx> = vec![ConsumerCtx::default()];
        for rule in rules {
            for sel in &rule.conditions.consumers {
                let ctx = match sel {
                    ConsumerSelector::User(u) => ConsumerCtx::user(u.as_str()),
                    ConsumerSelector::Group(g) => ConsumerCtx {
                        id: None,
                        groups: vec![g.clone()],
                        studies: vec![],
                    },
                    ConsumerSelector::Study(s) => ConsumerCtx {
                        id: None,
                        groups: vec![],
                        studies: vec![s.clone()],
                    },
                };
                probes.push(ctx);
            }
        }
        probes
            .iter()
            .any(|probe| !evaluate(rules, probe, window, channels, &self.graph).shares_nothing())
    }

    /// Runs a full scenario: renders sensor data, infers context,
    /// applies rule-aware collection if enabled, uploads the rest.
    /// Returns the metrics and the per-episode decisions.
    pub fn run_scenario(
        &self,
        scenario: &Scenario,
    ) -> Result<(DeviceMetrics, Vec<CollectionDecision>), String> {
        let rendered = scenario.render();
        let all_segments = rendered.all_segments();
        let rules = if self.rule_aware {
            self.download_rules()?
        } else {
            Vec::new()
        };
        let mut metrics = DeviceMetrics::default();
        let mut decisions = Vec::with_capacity(scenario.episodes.len());

        // The device works episode by episode (each has constant place
        // and condition).
        let truth = scenario.ground_truth();
        for episode_truth in &truth {
            let window = episode_truth.window;
            let episode_segments: Vec<WaveSegment> = all_segments
                .iter()
                .filter_map(|s| s.slice_time(&window))
                .collect();
            let episode_samples: usize = episode_segments.iter().map(WaveSegment::len).sum();
            let secs = (window.duration_millis() / 1000) as u32;
            let channels: Vec<ChannelId> = episode_segments
                .iter()
                .flat_map(|s| s.channels().cloned())
                .collect();
            let location = episode_segments.iter().find_map(|s| s.meta().location);

            let decision = if self.rule_aware {
                // Pass 1 — could data be shared under *some* context at
                // this place and time? Enumerate every transport mode ×
                // binary-context assignment (contexts fully known, so no
                // conservative matching fires). Only if every assignment
                // shares nothing can the sensors stay off.
                let could_share = hypothetical_contexts().iter().any(|contexts| {
                    let ctx = WindowCtx {
                        time: window.start,
                        location,
                        location_labels: Vec::new(),
                        contexts: contexts.clone(),
                    };
                    self.would_share(&rules, &ctx, &channels)
                });
                if !could_share {
                    metrics.sensor_off_secs += secs;
                    decisions.push(CollectionDecision::SensorsOff);
                    continue;
                }
                // Pass 2 — collect temporarily, infer context, re-check.
                metrics.collected_samples += episode_samples;
                metrics.sensor_on_secs += secs;
                let inferred = self.pipeline.classify_window(&episode_segments, window);
                let ctx = WindowCtx {
                    time: window.start,
                    location,
                    location_labels: Vec::new(),
                    contexts: inferred.states.clone(),
                };
                if self.would_share(&rules, &ctx, &channels) {
                    CollectionDecision::Uploaded
                } else {
                    metrics.discarded_samples += episode_samples;
                    decisions.push(CollectionDecision::Discarded);
                    continue;
                }
            } else {
                metrics.collected_samples += episode_samples;
                metrics.sensor_on_secs += secs;
                CollectionDecision::Uploaded
            };

            // Upload this episode's packets plus its annotation. A fresh
            // random idempotency token per episode lets a failover-aware
            // transport safely re-send the request after an ambiguous
            // transport failure: the store dedupes on the token, so a
            // commit-but-lost-response retry cannot double-store.
            let annotations = self.annotate(&episode_segments, &window);
            let token = sensorsafe_auth::ApiKey::generate().to_hex();
            let payload = upload_payload(&self.api_key, &episode_segments, &annotations, &token);
            let body_len = payload.to_string().len();
            let resp = self
                .store
                .round_trip(&Request::post_json("/api/upload", &payload).idempotent())
                .map_err(|e| e.to_string())?;
            if !resp.status.is_success() {
                return Err(format!("upload failed: {}", resp.status.code()));
            }
            metrics.uploaded_samples += episode_samples;
            metrics.uploaded_bytes += body_len;
            decisions.push(decision);
        }
        Ok((metrics, decisions))
    }

    /// Runs the inference pipeline over one episode's segments.
    fn annotate(&self, segments: &[WaveSegment], window: &TimeRange) -> Vec<ContextAnnotation> {
        self.pipeline.annotate(segments, window.start, window.end)
    }
}

/// Every transport mode × binary-context assignment (5 × 2³ = 40
/// windows), each with fully known context states.
fn hypothetical_contexts() -> Vec<Vec<sensorsafe_types::ContextState>> {
    use sensorsafe_types::{ContextKind, ContextState};
    let mut out = Vec::with_capacity(40);
    for mode in ContextKind::TRANSPORT_MODES {
        for bits in 0..8u8 {
            let mut states = vec![
                ContextState::on(mode),
                ContextState {
                    kind: ContextKind::Moving,
                    active: mode != ContextKind::Still,
                },
                ContextState {
                    kind: ContextKind::Stress,
                    active: bits & 1 != 0,
                },
                ContextState {
                    kind: ContextKind::Conversation,
                    active: bits & 2 != 0,
                },
                ContextState {
                    kind: ContextKind::Smoking,
                    active: bits & 4 != 0,
                },
            ];
            // Mark the other transport modes explicitly inactive.
            for other in ContextKind::TRANSPORT_MODES {
                if other != mode {
                    states.push(ContextState::off(other));
                }
            }
            out.push(states);
        }
    }
    out
}

fn upload_payload(
    api_key: &str,
    segments: &[WaveSegment],
    annotations: &[ContextAnnotation],
    upload_token: &str,
) -> Value {
    json!({
        "key": api_key,
        "upload_token": upload_token,
        "segments": (Value::Array(segments.iter().map(WaveSegment::to_json).collect())),
        "annotations": (Value::Array(
            annotations
                .iter()
                .map(sensorsafe_datastore::annotation_to_json)
                .collect()
        )),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_datastore::{DataStoreConfig, DataStoreService};
    use sensorsafe_net::{LocalTransport, Service, Status};
    use sensorsafe_types::Timestamp;

    fn store_with_alice() -> (DataStoreService, Arc<dyn Transport>, String) {
        let (svc, admin) = DataStoreService::new(DataStoreConfig::default());
        let resp = svc.handle(&Request::post_json(
            "/api/register",
            &json!({"key": (admin.to_hex()), "name": "alice", "role": "contributor"}),
        ));
        let alice_key = resp.json_body().unwrap()["api_key"]
            .as_str()
            .unwrap()
            .to_string();
        let transport: Arc<dyn Transport> = Arc::new(LocalTransport::new(Arc::new(svc.clone())));
        (svc, transport, alice_key)
    }

    fn scenario() -> Scenario {
        Scenario::alice_day(Timestamp::from_millis(1_311_500_000_000), 21, 1)
    }

    fn set_rules(svc: &DataStoreService, key: &str, rules: Value) {
        let resp = svc.handle(&Request::post_json(
            "/api/rules/set",
            &json!({"key": key, "rules": rules}),
        ));
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn plain_device_uploads_everything() {
        let (svc, transport, key) = store_with_alice();
        let device = ContributorDevice::new(transport, key);
        let (metrics, decisions) = device.run_scenario(&scenario()).unwrap();
        assert_eq!(metrics.collected_samples, metrics.uploaded_samples);
        assert_eq!(metrics.discarded_samples, 0);
        assert_eq!(metrics.sensor_off_secs, 0);
        assert!(decisions.iter().all(|d| *d == CollectionDecision::Uploaded));
        // Data landed in the store.
        let id = sensorsafe_types::ContributorId::new("alice");
        let stats = svc
            .state()
            .with_contributor(&id, |a| a.store.stats())
            .unwrap();
        assert_eq!(stats.samples, metrics.uploaded_samples);
        assert!(stats.annotations > 0);
    }

    #[test]
    fn rule_aware_device_skips_unshareable_context() {
        let (svc, transport, key) = store_with_alice();
        // Alice's §6 rules: share all, but deny everything while driving.
        set_rules(
            &svc,
            &key,
            json!([
                {"Action": "Allow"},
                {"Context": ["Drive"], "Action": "Deny"},
            ]),
        );
        let device = ContributorDevice::new(transport, key).with_rule_aware(true);
        let (metrics, decisions) = device.run_scenario(&scenario()).unwrap();
        // The two 60 s commutes are collected temporarily (context must
        // be inferred) and then discarded.
        let discarded = decisions
            .iter()
            .filter(|d| **d == CollectionDecision::Discarded)
            .count();
        assert_eq!(discarded, 2, "{decisions:?}");
        assert_eq!(metrics.discarded_samples, 2 * 60 * (50 + 10 + 1));
        assert_eq!(
            metrics.uploaded_samples,
            metrics.collected_samples - metrics.discarded_samples
        );
        // Nothing from the drives reached the server.
        let id = sensorsafe_types::ContributorId::new("alice");
        let stats = svc
            .state()
            .with_contributor(&id, |a| a.store.stats())
            .unwrap();
        assert_eq!(stats.samples, metrics.uploaded_samples);
    }

    #[test]
    fn rule_aware_device_turns_sensors_off_when_nothing_shareable() {
        let (svc, transport, key) = store_with_alice();
        // No rules at all: deny-by-default means nothing is ever shared,
        // so the sensors never need to turn on.
        set_rules(&svc, &key, json!([]));
        let device = ContributorDevice::new(transport, key).with_rule_aware(true);
        let (metrics, decisions) = device.run_scenario(&scenario()).unwrap();
        assert_eq!(metrics.collected_samples, 0);
        assert_eq!(metrics.uploaded_samples, 0);
        assert_eq!(metrics.sensor_off_secs, 600);
        assert!(decisions
            .iter()
            .all(|d| *d == CollectionDecision::SensorsOff));
    }

    #[test]
    fn rule_aware_saves_versus_plain() {
        let (svc, transport, key) = store_with_alice();
        set_rules(
            &svc,
            &key,
            json!([
                {"Action": "Allow"},
                {"Context": ["Drive"], "Action": "Deny"},
                {"Context": ["Conversation"], "Action": "Deny"},
            ]),
        );
        let plain = ContributorDevice::new(transport.clone(), key.clone());
        let (plain_metrics, _) = plain.run_scenario(&scenario()).unwrap();
        let aware = ContributorDevice::new(transport, key).with_rule_aware(true);
        let (aware_metrics, _) = aware.run_scenario(&scenario()).unwrap();
        assert!(aware_metrics.uploaded_bytes < plain_metrics.uploaded_bytes);
        assert!(aware_metrics.uploaded_samples < plain_metrics.uploaded_samples);
        // 2 drives + 2 conversations = 4 minutes of 10 withheld.
        let expected = plain_metrics.uploaded_samples - 4 * 60 * (50 + 10 + 1);
        assert_eq!(aware_metrics.uploaded_samples, expected);
    }

    #[test]
    fn download_rules_roundtrip() {
        let (svc, transport, key) = store_with_alice();
        set_rules(
            &svc,
            &key,
            json!([{"Consumer": ["bob"], "Action": "Allow"}]),
        );
        let device = ContributorDevice::new(transport, key);
        let rules = device.download_rules().unwrap();
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn bad_key_fails_cleanly() {
        let (_svc, transport, _key) = store_with_alice();
        let device = ContributorDevice::new(transport, "0".repeat(64)).with_rule_aware(true);
        assert!(device.run_scenario(&scenario()).is_err());
    }
}
