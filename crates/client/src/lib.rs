//! Client-side components: the contributor's phone and the consumer's
//! application.
//!
//! * [`ContributorDevice`] — simulates the §6 smartphone + chest band:
//!   renders a [`sensorsafe_sim::Scenario`], annotates it with the
//!   inference pipeline, and uploads wave segments to the contributor's
//!   remote data store. With **privacy-rule-aware data collection**
//!   (§5.3) enabled, the device first downloads the owner's rules and
//!   skips collecting (or discards after temporary collection) data that
//!   no rule would ever share; [`DeviceMetrics`] quantifies the savings
//!   (bench A3).
//! * [`ConsumerApp`] — Bob's workflow from §6: search the broker for
//!   suitable contributors, add them (the broker escrows per-store API
//!   keys), then download each contributor's data **directly from their
//!   store** with the escrowed keys.

mod consumer;
mod device;

pub use consumer::{ConsumerApp, ContributorAccess, StoreTransports};
pub use device::{CollectionDecision, ContributorDevice, DeviceMetrics};
