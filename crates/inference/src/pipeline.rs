//! Threshold classifiers and the end-to-end annotation pipeline.
//!
//! Thresholds are calibrated against `sensorsafe-sim`'s signal tables
//! (documented in that crate): resting heart rate 70 bpm with +30 under
//! stress, breathing 15 br/min dropping to 7 deep breaths while smoking,
//! speech bursts ≈62 dB over ≤48 dB ambients, and mode-specific GPS
//! speeds (walk 1.4, run 3.5, bike 5.5, drive 15 m/s).

use crate::features::WindowFeatures;
use sensorsafe_types::{
    ChannelId, ContextAnnotation, ContextKind, ContextState, TimeRange, Timestamp, WaveSegment,
    CHAN_ACCEL_MAG, CHAN_AUDIO_ENERGY, CHAN_ECG, CHAN_GPS_LAT, CHAN_GPS_LON, CHAN_RESPIRATION,
};

/// Default inference window length.
pub const WINDOW_SECS: u32 = 20;

/// Transportation mode from GPS speed (primary) with an accelerometer
/// fallback when no fix is available (\[33\]).
pub fn classify_transport(f: &WindowFeatures) -> ContextKind {
    if f.speed_mps > 8.0 {
        ContextKind::Drive
    } else if f.speed_mps > 4.0 {
        ContextKind::Bike
    } else if f.speed_mps > 2.2 {
        ContextKind::Run
    } else if f.speed_mps > 0.7 {
        ContextKind::Walk
    } else if f.accel_var > 0.05 {
        ContextKind::Run
    } else if f.accel_var > 0.008 {
        ContextKind::Walk
    } else {
        ContextKind::Still
    }
}

/// Expected resting heart rate for a mode (the simulator's table).
fn baseline_hr(mode: ContextKind) -> f64 {
    70.0 + match mode {
        ContextKind::Walk => 10.0,
        ContextKind::Run => 40.0,
        ContextKind::Bike => 15.0,
        ContextKind::Drive => 5.0,
        _ => 0.0,
    }
}

/// Stress from heart-rate elevation over the activity-adjusted baseline
/// (\[31\] uses ECG+respiration; elevation is the dominant feature here).
pub fn classify_stress(f: &WindowFeatures, mode: ContextKind) -> bool {
    f.heart_rate_bpm > baseline_hr(mode) + 18.0
}

/// Smoking from deep (high-variance), slow respiration.
pub fn classify_smoking(f: &WindowFeatures) -> bool {
    f.breath_depth_var > 1.2 && f.breath_rate_bpm < 10.0
}

/// Conversation from loud *and bursty* microphone energy (steady road
/// noise is loud but not bursty).
pub fn classify_conversation(f: &WindowFeatures) -> bool {
    f.audio_mean > 45.0 && f.audio_var > 40.0
}

/// The end-to-end pipeline: slices uploaded segments into fixed windows,
/// extracts features, runs every classifier, and emits one annotation
/// per window.
#[derive(Debug, Clone, Copy)]
pub struct InferencePipeline {
    /// Window length in seconds.
    pub window_secs: u32,
}

impl Default for InferencePipeline {
    fn default() -> Self {
        InferencePipeline {
            window_secs: WINDOW_SECS,
        }
    }
}

impl InferencePipeline {
    fn collect_channel(
        segments: &[WaveSegment],
        channel: &ChannelId,
        window: &TimeRange,
    ) -> (Vec<f64>, f64) {
        let mut samples = Vec::new();
        let mut rate = 0.0;
        for seg in segments {
            let Some(sliced) = seg.slice_time(window) else {
                continue;
            };
            if let Some(values) = sliced.channel_values(channel) {
                if let sensorsafe_types::Timing::Uniform { interval_secs, .. } =
                    sliced.meta().timing
                {
                    rate = 1.0 / interval_secs;
                }
                samples.extend(values);
            }
        }
        (samples, rate)
    }

    fn collect_fixes(segments: &[WaveSegment], window: &TimeRange) -> Vec<(f64, f64)> {
        let lat_chan = ChannelId::new(CHAN_GPS_LAT);
        let lon_chan = ChannelId::new(CHAN_GPS_LON);
        let mut fixes = Vec::new();
        for seg in segments {
            let Some(sliced) = seg.slice_time(window) else {
                continue;
            };
            let (Some(lats), Some(lons)) = (
                sliced.channel_values(&lat_chan),
                sliced.channel_values(&lon_chan),
            ) else {
                continue;
            };
            fixes.extend(lats.into_iter().zip(lons));
        }
        fixes
    }

    /// Extracts the feature vector for one window from the uploaded
    /// segments.
    pub fn features(&self, segments: &[WaveSegment], window: &TimeRange) -> WindowFeatures {
        let (ecg, ecg_hz) = Self::collect_channel(segments, &ChannelId::new(CHAN_ECG), window);
        let (resp, resp_hz) =
            Self::collect_channel(segments, &ChannelId::new(CHAN_RESPIRATION), window);
        let (accel, _) = Self::collect_channel(segments, &ChannelId::new(CHAN_ACCEL_MAG), window);
        let (audio, _) =
            Self::collect_channel(segments, &ChannelId::new(CHAN_AUDIO_ENERGY), window);
        let fixes = Self::collect_fixes(segments, window);
        WindowFeatures::extract(
            &ecg,
            if ecg_hz > 0.0 { ecg_hz } else { 50.0 },
            &resp,
            if resp_hz > 0.0 { resp_hz } else { 25.0 },
            &accel,
            &audio,
            &fixes,
            1.0,
        )
    }

    /// Classifies one window into a full annotation.
    pub fn classify_window(
        &self,
        segments: &[WaveSegment],
        window: TimeRange,
    ) -> ContextAnnotation {
        let f = self.features(segments, &window);
        let mode = classify_transport(&f);
        let states = vec![
            ContextState {
                kind: mode,
                active: true,
            },
            ContextState {
                kind: ContextKind::Moving,
                active: mode != ContextKind::Still,
            },
            ContextState {
                kind: ContextKind::Stress,
                active: classify_stress(&f, mode),
            },
            ContextState {
                kind: ContextKind::Conversation,
                active: classify_conversation(&f),
            },
            ContextState {
                kind: ContextKind::Smoking,
                active: classify_smoking(&f),
            },
        ];
        ContextAnnotation::new(window, states)
    }

    /// Annotates a whole recording: tiles `[start, end)` with fixed
    /// windows (the final partial window is included) and classifies
    /// each.
    pub fn annotate(
        &self,
        segments: &[WaveSegment],
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<ContextAnnotation> {
        let window_ms = self.window_secs as i64 * 1000;
        let mut out = Vec::new();
        let mut cursor = start;
        while cursor < end {
            let window_end =
                Timestamp::from_millis((cursor.millis() + window_ms).min(end.millis()));
            out.push(self.classify_window(segments, TimeRange::new(cursor, window_end)));
            cursor = window_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorsafe_sim::{Scenario, PACKET_SAMPLES};

    fn alice() -> (Scenario, Vec<WaveSegment>) {
        let scenario = Scenario::alice_day(Timestamp::from_millis(1_311_500_000_000), 11, 1);
        let rendered = scenario.render();
        (scenario, rendered.all_segments())
    }

    #[test]
    fn classifier_units() {
        let rest = WindowFeatures {
            heart_rate_bpm: 72.0,
            breath_rate_bpm: 15.0,
            breath_depth_var: 0.5,
            accel_var: 0.0001,
            audio_mean: 32.0,
            audio_var: 3.0,
            speed_mps: 0.0,
        };
        assert_eq!(classify_transport(&rest), ContextKind::Still);
        assert!(!classify_stress(&rest, ContextKind::Still));
        assert!(!classify_smoking(&rest));
        assert!(!classify_conversation(&rest));

        let stressed_driver = WindowFeatures {
            heart_rate_bpm: 104.0,
            speed_mps: 14.0,
            audio_mean: 48.0,
            audio_var: 4.0,
            ..rest
        };
        assert_eq!(classify_transport(&stressed_driver), ContextKind::Drive);
        assert!(classify_stress(&stressed_driver, ContextKind::Drive));
        // Loud road noise is not conversation (not bursty).
        assert!(!classify_conversation(&stressed_driver));

        let runner = WindowFeatures {
            heart_rate_bpm: 112.0,
            speed_mps: 3.4,
            ..rest
        };
        assert_eq!(classify_transport(&runner), ContextKind::Run);
        // Elevated HR explained by running: not stress.
        assert!(!classify_stress(&runner, ContextKind::Run));

        let smoker = WindowFeatures {
            breath_rate_bpm: 7.0,
            breath_depth_var: 2.3,
            ..rest
        };
        assert!(classify_smoking(&smoker));

        let talker = WindowFeatures {
            audio_mean: 52.0,
            audio_var: 160.0,
            ..rest
        };
        assert!(classify_conversation(&talker));
    }

    #[test]
    fn accel_fallback_without_gps() {
        let no_gps = WindowFeatures {
            accel_var: 0.07,
            ..Default::default()
        };
        assert_eq!(classify_transport(&no_gps), ContextKind::Run);
        let walk = WindowFeatures {
            accel_var: 0.012,
            ..Default::default()
        };
        assert_eq!(classify_transport(&walk), ContextKind::Walk);
    }

    #[test]
    fn pipeline_recovers_alice_ground_truth() {
        let (scenario, segments) = alice();
        let pipeline = InferencePipeline::default();
        let end = scenario
            .start
            .plus_millis(scenario.duration_secs() as i64 * 1000);
        let annotations = pipeline.annotate(&segments, scenario.start, end);
        assert_eq!(annotations.len(), (600 / WINDOW_SECS) as usize);

        let truth = scenario.ground_truth();
        let mut correct = 0usize;
        let mut total = 0usize;
        for ann in &annotations {
            // Compare only windows fully inside one episode (boundary
            // windows legitimately mix conditions).
            let Some(episode_truth) = truth
                .iter()
                .find(|t| t.window.start <= ann.window.start && ann.window.end <= t.window.end)
            else {
                continue;
            };
            for kind in [
                ContextKind::Moving,
                ContextKind::Stress,
                ContextKind::Conversation,
                ContextKind::Smoking,
            ] {
                total += 1;
                if ann.state_of(kind) == episode_truth.state_of(kind) {
                    correct += 1;
                }
            }
            // Transport mode: compare the active mode.
            total += 1;
            if ann.transport_mode() == episode_truth.transport_mode() {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy >= 0.9,
            "inference accuracy {accuracy:.3} ({correct}/{total})"
        );
    }

    #[test]
    fn annotate_handles_partial_final_window() {
        let (scenario, segments) = alice();
        let pipeline = InferencePipeline { window_secs: 45 };
        let end = scenario.start.plus_millis(100_000); // 100 s
        let annotations = pipeline.annotate(&segments, scenario.start, end);
        assert_eq!(annotations.len(), 3); // 45 + 45 + 10
        assert_eq!(annotations[2].window.duration_millis(), 10_000);
    }

    #[test]
    fn empty_segments_yield_still_quiet() {
        let pipeline = InferencePipeline::default();
        let window = TimeRange::new(Timestamp::from_millis(0), Timestamp::from_millis(20_000));
        let ann = pipeline.classify_window(&[], window);
        assert_eq!(ann.transport_mode(), Some(ContextKind::Still));
        assert_eq!(ann.state_of(ContextKind::Stress), Some(false));
        assert_eq!(ann.state_of(ContextKind::Conversation), Some(false));
    }

    #[test]
    fn features_see_packetized_data() {
        // PACKET_SAMPLES-sized chunks must reassemble into full windows.
        let (scenario, segments) = alice();
        let pipeline = InferencePipeline::default();
        let window = TimeRange::new(
            scenario.start,
            scenario.start.plus_millis(WINDOW_SECS as i64 * 1000),
        );
        let f = pipeline.features(&segments, &window);
        // 20 s of 50 Hz chest data = 1000 samples spread over ≥15 packets.
        assert!(segments.len() > 15);
        let _ = PACKET_SAMPLES;
        assert!(f.heart_rate_bpm > 50.0, "hr {}", f.heart_rate_bpm);
        assert!(f.breath_rate_bpm > 8.0, "br {}", f.breath_rate_bpm);
    }
}
