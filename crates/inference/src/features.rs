//! Windowed feature extraction.

/// Mean of a sample window (0 for empty windows).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Population variance of a sample window (0 for empty windows).
pub fn variance(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let m = mean(samples);
    samples.iter().map(|s| (s - m).powi(2)).sum::<f64>() / samples.len() as f64
}

/// Rate (Hz) of threshold-crossing peaks in a window — the estimator for
/// heart rate (ECG spikes) and breathing rate (respiration zero-ups).
///
/// A peak is counted at each upward crossing of `threshold`; the rate is
/// peaks divided by the window duration.
pub fn dominant_peak_rate_hz(samples: &[f64], rate_hz: f64, threshold: f64) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let mut peaks = 0usize;
    let mut above = samples[0] > threshold;
    for &s in &samples[1..] {
        if s > threshold && !above {
            peaks += 1;
        }
        above = s > threshold;
    }
    let duration_secs = samples.len() as f64 / rate_hz;
    peaks as f64 / duration_secs
}

/// Mean ground speed from a window of GPS fixes (per-fix lat/lon pairs
/// at `fix_interval_secs` spacing), in m/s.
///
/// Computed from displacements over a multi-fix stride rather than
/// fix-to-fix deltas: per-fix GPS noise (~±3 m) would otherwise read as
/// ~3 m/s of phantom speed on a stationary wearer. Over an 8-fix stride
/// the same noise contributes <0.5 m/s while real motion accumulates
/// linearly.
pub fn speed_mps_from_fixes(fixes: &[(f64, f64)], fix_interval_secs: f64) -> f64 {
    if fixes.len() < 2 || fix_interval_secs <= 0.0 {
        return 0.0;
    }
    const M_PER_DEG_LAT: f64 = 111_320.0;
    let stride = 8.min(fixes.len() - 1);
    let mut total_mps = 0.0;
    let mut count = 0usize;
    for i in 0..fixes.len() - stride {
        let (lat0, lon0) = fixes[i];
        let (lat1, lon1) = fixes[i + stride];
        let dlat = (lat1 - lat0) * M_PER_DEG_LAT;
        let dlon = (lon1 - lon0) * M_PER_DEG_LAT * lat0.to_radians().cos();
        let dist = (dlat * dlat + dlon * dlon).sqrt();
        total_mps += dist / (stride as f64 * fix_interval_secs);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total_mps / count as f64
    }
}

/// The full feature vector extracted from one multi-sensor window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowFeatures {
    /// Heart rate estimate, beats/minute (from ECG peaks).
    pub heart_rate_bpm: f64,
    /// Breathing rate estimate, breaths/minute.
    pub breath_rate_bpm: f64,
    /// Respiration waveform variance (breath depth proxy).
    pub breath_depth_var: f64,
    /// Accelerometer magnitude variance.
    pub accel_var: f64,
    /// Mean microphone frame energy.
    pub audio_mean: f64,
    /// Microphone energy variance (speech burstiness).
    pub audio_var: f64,
    /// Mean GPS ground speed, m/s.
    pub speed_mps: f64,
}

impl WindowFeatures {
    /// Extracts features from raw windows. Any stream may be absent
    /// (empty slice); its features default to 0.
    #[allow(clippy::too_many_arguments)] // one argument pair per sensor stream
    pub fn extract(
        ecg: &[f64],
        ecg_hz: f64,
        resp: &[f64],
        resp_hz: f64,
        accel: &[f64],
        audio: &[f64],
        gps_fixes: &[(f64, f64)],
        gps_interval_secs: f64,
    ) -> WindowFeatures {
        WindowFeatures {
            heart_rate_bpm: dominant_peak_rate_hz(ecg, ecg_hz, 0.6) * 60.0,
            breath_rate_bpm: dominant_peak_rate_hz(resp, resp_hz, 0.0) * 60.0,
            breath_depth_var: variance(resp),
            accel_var: variance(accel),
            audio_mean: mean(audio),
            audio_var: variance(audio),
            speed_mps: speed_mps_from_fixes(gps_fixes, gps_interval_secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(variance(&[1.0, -1.0]), 1.0);
    }

    #[test]
    fn peak_rate_counts_crossings() {
        // A 2 Hz square-ish wave sampled at 20 Hz for 5 s: 10 peaks.
        let samples: Vec<f64> = (0..100)
            .map(|i| if (i / 5) % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rate = dominant_peak_rate_hz(&samples, 20.0, 0.0);
        assert!((rate - 2.0).abs() < 0.25, "rate {rate}");
    }

    #[test]
    fn peak_rate_edge_cases() {
        assert_eq!(dominant_peak_rate_hz(&[], 10.0, 0.0), 0.0);
        assert_eq!(dominant_peak_rate_hz(&[1.0], 10.0, 0.0), 0.0);
        // Constant above threshold: no crossings.
        assert_eq!(dominant_peak_rate_hz(&[1.0; 50], 10.0, 0.0), 0.0);
    }

    #[test]
    fn speed_from_fixes() {
        // Due-north motion: 0.0001° lat/fix ≈ 11.1 m/s at 1 fix/s.
        let fixes: Vec<(f64, f64)> = (0..10).map(|i| (34.0 + i as f64 * 1e-4, -118.0)).collect();
        let v = speed_mps_from_fixes(&fixes, 1.0);
        assert!((v - 11.13).abs() < 0.1, "speed {v}");
        assert_eq!(speed_mps_from_fixes(&fixes[..1], 1.0), 0.0);
        assert_eq!(speed_mps_from_fixes(&fixes, 0.0), 0.0);
        // Stationary.
        let still = vec![(34.0, -118.0); 10];
        assert_eq!(speed_mps_from_fixes(&still, 1.0), 0.0);
    }

    #[test]
    fn extract_with_missing_streams() {
        let f = WindowFeatures::extract(&[], 50.0, &[], 25.0, &[], &[], &[], 1.0);
        assert_eq!(f, WindowFeatures::default());
    }
}
