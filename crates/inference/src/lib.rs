//! Context inference: recovering behavioral contexts from raw sensor
//! windows.
//!
//! The paper relies on published inference pipelines — stress from
//! ECG/respiration \[31\], transportation mode from accelerometer + GPS
//! \[33\], conversation and smoking from respiration/microphone — to
//! annotate uploaded data with context. Those models are not available
//! offline, so this crate implements windowed feature extraction plus
//! threshold classifiers calibrated against `sensorsafe-sim`'s signal
//! parameterization (see DESIGN.md substitutions). What matters for the
//! SensorSafe architecture is that *a* context stream with the right
//! dependency structure exists and is accurate on the simulated data;
//! the classifier internals are deliberately simple and fully tested.
//!
//! The classifiers mirror the paper's dependency graph exactly:
//!
//! * [`classify_stress`] ← ECG (+ respiration rate)
//! * [`classify_smoking`] ← respiration
//! * [`classify_conversation`] ← microphone energy (+ respiration)
//! * [`classify_transport`] ← accelerometer magnitude + GPS speed

mod features;
mod pipeline;

pub use features::{dominant_peak_rate_hz, mean, speed_mps_from_fixes, variance, WindowFeatures};
pub use pipeline::{
    classify_conversation, classify_smoking, classify_stress, classify_transport,
    InferencePipeline, WINDOW_SECS,
};
