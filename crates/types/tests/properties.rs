//! Property-based tests for the core data model invariants.

use proptest::prelude::*;
use sensorsafe_types::{
    ChannelSpec, GeoPoint, RepeatTime, SegmentMeta, TimeOfDay, TimeRange, Timestamp, Timing,
    WaveSegment, Weekday,
};

fn arb_rows(cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e4..1e4f64, cols..=cols), 0..64)
}

fn uniform_meta(start: i64, interval_ms: u16) -> SegmentMeta {
    SegmentMeta {
        timing: Timing::Uniform {
            start: Timestamp::from_millis(start),
            interval_secs: (interval_ms.max(1)) as f64 / 1_000.0,
        },
        location: Some(GeoPoint::ucla()),
        format: vec![ChannelSpec::f64("a"), ChannelSpec::f64("b")],
    }
}

proptest! {
    /// Fig. 5 JSON codec round-trips exactly for f64 columns.
    #[test]
    fn wave_json_roundtrip(
        rows in arb_rows(2),
        start in -1_000_000_000i64..2_000_000_000_000,
        interval in 1u16..2_000,
    ) {
        let seg = WaveSegment::from_rows(uniform_meta(start, interval), &rows).unwrap();
        let back = WaveSegment::from_json(&seg.to_json()).unwrap();
        prop_assert_eq!(back, seg);
    }

    /// Slicing never invents samples and preserves per-sample values.
    #[test]
    fn wave_slice_subset(
        rows in arb_rows(2),
        start in 0i64..1_000_000,
        interval in 1u16..500,
        w_start in -1_000_000i64..2_000_000,
        w_len in 0i64..2_000_000,
    ) {
        let seg = WaveSegment::from_rows(uniform_meta(start, interval), &rows).unwrap();
        let window = TimeRange::new(
            Timestamp::from_millis(w_start),
            Timestamp::from_millis(w_start + w_len),
        );
        if let Some(sliced) = seg.slice_time(&window) {
            prop_assert!(sliced.len() <= seg.len());
            prop_assert!(!sliced.is_empty());
            for i in 0..sliced.len() {
                let t = sliced.time_at(i);
                prop_assert!(window.contains(t), "sample at {t:?} outside {window:?}");
                // The value must exist at the same instant in the source.
                let src_idx = (0..seg.len()).find(|&j| seg.time_at(j) == t);
                prop_assert!(src_idx.is_some());
                prop_assert_eq!(sliced.row(i), seg.row(src_idx.unwrap()));
            }
        } else {
            // No sample of the original lies in the window.
            for j in 0..seg.len() {
                prop_assert!(!window.contains(seg.time_at(j)));
            }
        }
    }

    /// Merging two consecutive segments preserves every sample and instant.
    #[test]
    fn wave_merge_preserves_samples(
        rows_a in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 2..=2), 1..32),
        rows_b in prop::collection::vec(prop::collection::vec(-1e3..1e3f64, 2..=2), 1..32),
        interval in 1u16..200,
    ) {
        let a = WaveSegment::from_rows(uniform_meta(0, interval), &rows_a).unwrap();
        let b_start = interval as i64 * rows_a.len() as i64;
        let b = WaveSegment::from_rows(uniform_meta(b_start, interval), &rows_b).unwrap();
        prop_assert!(a.can_merge(&b));
        let merged = a.merge(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        for i in 0..a.len() {
            prop_assert_eq!(merged.row(i), a.row(i));
            prop_assert_eq!(merged.time_at(i), a.time_at(i));
        }
        for i in 0..b.len() {
            prop_assert_eq!(merged.row(a.len() + i), b.row(i));
        }
    }

    /// Channel projection keeps row count and per-channel values.
    #[test]
    fn wave_projection(rows in arb_rows(2)) {
        let seg = WaveSegment::from_rows(uniform_meta(0, 10), &rows).unwrap();
        let only_a = seg.select_channels(&["a".into()]);
        if rows.is_empty() {
            // Projection of an empty segment still succeeds with 0 rows.
            prop_assert_eq!(only_a.as_ref().map(|s| s.len()), Some(0));
        } else {
            let only_a = only_a.unwrap();
            prop_assert_eq!(only_a.len(), seg.len());
            for i in 0..seg.len() {
                prop_assert_eq!(only_a.value(i, 0), seg.value(i, 0));
            }
        }
    }

    /// Weekday/time-of-day math is consistent with adding whole days.
    #[test]
    fn weekday_advances_daily(ms in -2_000_000_000_000i64..2_000_000_000_000) {
        let t = Timestamp::from_millis(ms);
        let tomorrow = t.plus_millis(24 * 3600 * 1000);
        let today_idx = Weekday::ALL.iter().position(|d| *d == t.weekday()).unwrap();
        let tomorrow_idx = Weekday::ALL.iter().position(|d| *d == tomorrow.weekday()).unwrap();
        prop_assert_eq!((today_idx + 1) % 7, tomorrow_idx);
        prop_assert_eq!(t.time_of_day(), tomorrow.time_of_day());
    }

    /// A repeat-time window contains an instant iff the instant's civil
    /// time is inside the window on a listed day (non-wrapping windows).
    #[test]
    fn repeat_time_model(
        ms in 0i64..2_000_000_000_000,
        from_h in 0u8..23,
        len_min in 1u16..600,
        day_mask in 1u8..127,
    ) {
        let days: Vec<Weekday> = Weekday::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| day_mask & (1 << i) != 0)
            .map(|(_, d)| *d)
            .collect();
        let from = TimeOfDay::new(from_h, 0);
        let to_minutes = (from.minutes() + len_min).min(24 * 60 - 1);
        let to = TimeOfDay::new((to_minutes / 60) as u8, (to_minutes % 60) as u8);
        prop_assume!(to > from);
        let rule = RepeatTime::new(days.clone(), from, to);
        let t = Timestamp::from_millis(ms);
        let expected = days.contains(&t.weekday())
            && t.time_of_day().minutes() >= from.minutes()
            && t.time_of_day().minutes() < to.minutes();
        prop_assert_eq!(rule.contains(t), expected);
    }

    /// TimeRange intersection is commutative and contained in both.
    #[test]
    fn range_intersection_properties(
        a_start in -1000i64..1000, a_len in 0i64..1000,
        b_start in -1000i64..1000, b_len in 0i64..1000,
    ) {
        let a = TimeRange::new(Timestamp(a_start), Timestamp(a_start + a_len));
        let b = TimeRange::new(Timestamp(b_start), Timestamp(b_start + b_len));
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(i.start >= a.start && i.end <= a.end);
            prop_assert!(i.start >= b.start && i.end <= b.end);
            prop_assert!(!i.is_empty());
            prop_assert!(a.overlaps(&b));
        } else {
            prop_assert!(!a.overlaps(&b));
        }
    }
}
