//! Locations: WGS-84 points and the map-drawn bounding-box regions used in
//! privacy-rule location conditions (Table 1: "Pre-defined Label, Region
//! Coordinates").

/// A WGS-84 coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Degrees north, −90..=90.
    pub latitude: f64,
    /// Degrees east, −180..=180.
    pub longitude: f64,
}

impl GeoPoint {
    /// Constructs a point, clamping to valid WGS-84 bounds.
    pub fn new(latitude: f64, longitude: f64) -> GeoPoint {
        GeoPoint {
            latitude: latitude.clamp(-90.0, 90.0),
            longitude: longitude.clamp(-180.0, 180.0),
        }
    }

    /// UCLA's campus coordinates, the paper's running example location.
    pub fn ucla() -> GeoPoint {
        GeoPoint::new(34.0722, -118.4441)
    }

    /// Great-circle distance in meters (haversine).
    pub fn distance_meters(&self, other: &GeoPoint) -> f64 {
        const EARTH_RADIUS_M: f64 = 6_371_000.0;
        let lat1 = self.latitude.to_radians();
        let lat2 = other.latitude.to_radians();
        let dlat = (other.latitude - self.latitude).to_radians();
        let dlon = (other.longitude - self.longitude).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Rounds both coordinates to `decimals` places — used by the location
    /// abstraction ladder to coarsen coordinates.
    pub fn rounded(&self, decimals: u32) -> GeoPoint {
        let factor = 10f64.powi(decimals as i32);
        GeoPoint {
            latitude: (self.latitude * factor).round() / factor,
            longitude: (self.longitude * factor).round() / factor,
        }
    }
}

/// An axis-aligned bounding box drawn on the map UI.
///
/// Longitude ranges that cross the antimeridian (west > east) are
/// supported: the box wraps around ±180°.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Southern edge (min latitude).
    pub south: f64,
    /// Northern edge (max latitude).
    pub north: f64,
    /// Western edge.
    pub west: f64,
    /// Eastern edge.
    pub east: f64,
}

impl Region {
    /// Constructs a region; panics if `south > north` (use the wrapped
    /// west/east order for antimeridian crossing, not swapped latitudes).
    pub fn new(south: f64, north: f64, west: f64, east: f64) -> Region {
        assert!(south <= north, "region south edge above north edge");
        Region {
            south,
            north,
            west,
            east,
        }
    }

    /// A box of `half_size_deg` degrees around a center point.
    pub fn around(center: GeoPoint, half_size_deg: f64) -> Region {
        Region::new(
            center.latitude - half_size_deg,
            center.latitude + half_size_deg,
            center.longitude - half_size_deg,
            center.longitude + half_size_deg,
        )
    }

    /// True if the point lies inside (edges inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        if p.latitude < self.south || p.latitude > self.north {
            return false;
        }
        if self.west <= self.east {
            p.longitude >= self.west && p.longitude <= self.east
        } else {
            // Wraps the antimeridian.
            p.longitude >= self.west || p.longitude <= self.east
        }
    }

    /// True if the two regions share any area (ignoring antimeridian wrap
    /// for the *other* region; used by the broker's search prefilter which
    /// only needs a conservative answer).
    pub fn intersects(&self, other: &Region) -> bool {
        if self.north < other.south || other.north < self.south {
            return false;
        }
        if self.west <= self.east && other.west <= other.east {
            self.west <= other.east && other.west <= self.east
        } else {
            // At least one wraps; be conservative.
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_clamping() {
        let p = GeoPoint::new(100.0, -200.0);
        assert_eq!(p.latitude, 90.0);
        assert_eq!(p.longitude, -180.0);
    }

    #[test]
    fn distance_known_pair() {
        // UCLA to USC is roughly 16–17 km.
        let ucla = GeoPoint::ucla();
        let usc = GeoPoint::new(34.0224, -118.2851);
        let d = ucla.distance_meters(&usc);
        assert!((14_000.0..19_000.0).contains(&d), "distance {d}");
        assert_eq!(ucla.distance_meters(&ucla), 0.0);
    }

    #[test]
    fn distance_symmetry() {
        let a = GeoPoint::new(10.0, 20.0);
        let b = GeoPoint::new(-5.0, 140.0);
        let ab = a.distance_meters(&b);
        let ba = b.distance_meters(&a);
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn rounding() {
        let p = GeoPoint::new(34.07223456, -118.44416789);
        let r = p.rounded(2);
        assert_eq!(r.latitude, 34.07);
        assert_eq!(r.longitude, -118.44);
        let r0 = p.rounded(0);
        assert_eq!(r0.latitude, 34.0);
        assert_eq!(r0.longitude, -118.0);
    }

    #[test]
    fn region_contains() {
        let r = Region::around(GeoPoint::ucla(), 0.01);
        assert!(r.contains(&GeoPoint::ucla()));
        assert!(!r.contains(&GeoPoint::new(34.2, -118.4441)));
        // Edges are inclusive.
        assert!(r.contains(&GeoPoint::new(r.north, -118.4441)));
    }

    #[test]
    fn region_antimeridian_wrap() {
        let fiji = Region::new(-20.0, -15.0, 177.0, -178.0);
        assert!(fiji.contains(&GeoPoint::new(-17.0, 179.0)));
        assert!(fiji.contains(&GeoPoint::new(-17.0, -179.0)));
        assert!(!fiji.contains(&GeoPoint::new(-17.0, 0.0)));
    }

    #[test]
    fn region_intersects() {
        let a = Region::new(0.0, 10.0, 0.0, 10.0);
        let b = Region::new(5.0, 15.0, 5.0, 15.0);
        let c = Region::new(11.0, 20.0, 0.0, 10.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (conservative prefilter).
        let d = Region::new(10.0, 20.0, 10.0, 20.0);
        assert!(a.intersects(&d));
    }

    #[test]
    #[should_panic(expected = "south edge")]
    fn region_rejects_inverted_latitude() {
        let _ = Region::new(10.0, 0.0, 0.0, 1.0);
    }
}
