//! Sensor channels.
//!
//! Table 1's sensor condition selects "Sensor Channel Name (e.g.
//! Accelerometer, ECG)". Channels are open-ended strings (the paper's
//! design consideration: "data storage should be able to store various
//! types of data"), with well-known constants for the sensors the paper
//! uses: ECG, respiration, skin temperature (BioHarness BT), accelerometer
//! magnitude, GPS latitude/longitude, and microphone energy.

/// A sensor channel name. Case-sensitive, non-empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(String);

/// ECG waveform samples (BioHarness chest band).
pub const CHAN_ECG: &str = "ecg";
/// Respiration (rib-cage expansion) waveform.
pub const CHAN_RESPIRATION: &str = "respiration";
/// Skin temperature, °C.
pub const CHAN_SKIN_TEMP: &str = "skin_temp";
/// Accelerometer magnitude, g.
pub const CHAN_ACCEL_MAG: &str = "accel_mag";
/// GPS latitude, degrees.
pub const CHAN_GPS_LAT: &str = "gps_lat";
/// GPS longitude, degrees.
pub const CHAN_GPS_LON: &str = "gps_lon";
/// Microphone frame energy (not raw audio), dB-ish scale.
pub const CHAN_AUDIO_ENERGY: &str = "audio_energy";

impl ChannelId {
    /// Creates a channel id; panics on empty names (catching config bugs
    /// early — channel names come from trusted code, not the network; the
    /// network-facing codec uses [`ChannelId::try_new`]).
    pub fn new(name: impl Into<String>) -> ChannelId {
        ChannelId::try_new(name).expect("channel name must be non-empty")
    }

    /// Fallible construction for network-facing decoders.
    pub fn try_new(name: impl Into<String>) -> Option<ChannelId> {
        let name = name.into();
        if name.is_empty() || name.len() > 128 {
            None
        } else {
            Some(ChannelId(name))
        }
    }

    /// The channel name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ChannelId {
    fn from(s: &str) -> Self {
        ChannelId::new(s)
    }
}

/// How a channel's values are encoded inside a wave-segment blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit float (default; GPS coordinates need the precision).
    F64,
    /// 32-bit float (waveforms: ECG, respiration, accel).
    F32,
    /// 16-bit signed integer (raw ADC counts, the Zephyr wire format).
    I16,
}

impl ValueKind {
    /// Bytes per sample value.
    pub fn width(self) -> usize {
        match self {
            ValueKind::F64 => 8,
            ValueKind::F32 => 4,
            ValueKind::I16 => 2,
        }
    }

    /// Wire name used in the wave-segment JSON `format` metadata.
    pub fn as_str(self) -> &'static str {
        match self {
            ValueKind::F64 => "f64",
            ValueKind::F32 => "f32",
            ValueKind::I16 => "i16",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<ValueKind> {
        match s {
            "f64" => Some(ValueKind::F64),
            "f32" => Some(ValueKind::F32),
            "i16" => Some(ValueKind::I16),
            _ => None,
        }
    }
}

/// One column of a wave segment's tuple format: a channel and its
/// encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChannelSpec {
    /// Which channel this column carries.
    pub channel: ChannelId,
    /// Value encoding in the blob.
    pub kind: ValueKind,
}

impl ChannelSpec {
    /// An `f32` column (the common waveform case).
    pub fn f32(channel: impl Into<ChannelId>) -> ChannelSpec {
        ChannelSpec {
            channel: channel.into(),
            kind: ValueKind::F32,
        }
    }

    /// An `f64` column.
    pub fn f64(channel: impl Into<ChannelId>) -> ChannelSpec {
        ChannelSpec {
            channel: channel.into(),
            kind: ValueKind::F64,
        }
    }

    /// An `i16` column.
    pub fn i16(channel: impl Into<ChannelId>) -> ChannelSpec {
        ChannelSpec {
            channel: channel.into(),
            kind: ValueKind::I16,
        }
    }
}

impl From<&str> for ChannelSpec {
    /// Bare channel names default to `f32`.
    fn from(s: &str) -> Self {
        ChannelSpec::f32(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_id_construction() {
        let c = ChannelId::new(CHAN_ECG);
        assert_eq!(c.as_str(), "ecg");
        assert_eq!(c.to_string(), "ecg");
        assert!(ChannelId::try_new("").is_none());
        assert!(ChannelId::try_new("x".repeat(129)).is_none());
        assert!(ChannelId::try_new("x".repeat(128)).is_some());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_channel_panics() {
        let _ = ChannelId::new("");
    }

    #[test]
    fn value_kind_widths_and_names() {
        for kind in [ValueKind::F64, ValueKind::F32, ValueKind::I16] {
            assert_eq!(ValueKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ValueKind::F64.width(), 8);
        assert_eq!(ValueKind::F32.width(), 4);
        assert_eq!(ValueKind::I16.width(), 2);
        assert_eq!(ValueKind::parse("u8"), None);
    }

    #[test]
    fn spec_constructors() {
        let s = ChannelSpec::i16(CHAN_ECG);
        assert_eq!(s.kind, ValueKind::I16);
        assert_eq!(s.channel.as_str(), "ecg");
        let from_str: ChannelSpec = "respiration".into();
        assert_eq!(from_str.kind, ValueKind::F32);
    }

    #[test]
    fn channel_ordering_is_stable() {
        let mut v = [ChannelId::new("b"), ChannelId::new("a")];
        v.sort();
        assert_eq!(v[0].as_str(), "a");
    }
}
