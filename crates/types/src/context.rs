//! Behavioral contexts (Table 1).
//!
//! The paper's context condition draws on "available context from sensors
//! (e.g., Moving, Not Moving, Still, Walk, Run, Bike, Drive, Stress,
//! Conversation, Smoke)". Contexts are *inferences* over raw sensor data;
//! the sensor↔context dependency information lives in
//! `sensorsafe-policy::deps`, while this module defines the vocabulary and
//! the annotation records that the inference pipeline attaches to uploaded
//! data.

use crate::time::TimeRange;

/// A kind of behavioral context the paper's applications infer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContextKind {
    /// Transportation-mode family (accelerometer + GPS, \[33\]).
    Still,
    /// Walking.
    Walk,
    /// Running.
    Run,
    /// Biking.
    Bike,
    /// Driving — Alice's sensitive context in §6.
    Drive,
    /// Coarse activity: any movement at all.
    Moving,
    /// Psychological stress (ECG + respiration, \[31\]).
    Stress,
    /// In-conversation (microphone + respiration).
    Conversation,
    /// Smoking (respiration).
    Smoking,
}

impl ContextKind {
    /// Every context kind, in a stable order.
    pub const ALL: [ContextKind; 9] = [
        ContextKind::Still,
        ContextKind::Walk,
        ContextKind::Run,
        ContextKind::Bike,
        ContextKind::Drive,
        ContextKind::Moving,
        ContextKind::Stress,
        ContextKind::Conversation,
        ContextKind::Smoking,
    ];

    /// The transportation modes (the paper's activity ladder level
    /// "Still/Walk/Run/Bike/Drive").
    pub const TRANSPORT_MODES: [ContextKind; 5] = [
        ContextKind::Still,
        ContextKind::Walk,
        ContextKind::Run,
        ContextKind::Bike,
        ContextKind::Drive,
    ];

    /// Wire name used in rule JSON and annotations (matches Table 1's
    /// spelling, e.g. `"Drive"`, `"Conversation"`, `"Smoke"`).
    pub fn as_str(self) -> &'static str {
        match self {
            ContextKind::Still => "Still",
            ContextKind::Walk => "Walk",
            ContextKind::Run => "Run",
            ContextKind::Bike => "Bike",
            ContextKind::Drive => "Drive",
            ContextKind::Moving => "Moving",
            ContextKind::Stress => "Stress",
            ContextKind::Conversation => "Conversation",
            ContextKind::Smoking => "Smoke",
        }
    }

    /// Parses a wire name; accepts both `"Smoke"` (Table 1's context
    /// condition list) and `"Smoking"` (Table 1's abstraction table).
    pub fn parse(s: &str) -> Option<ContextKind> {
        match s {
            "Still" => Some(ContextKind::Still),
            "Walk" => Some(ContextKind::Walk),
            "Run" => Some(ContextKind::Run),
            "Bike" => Some(ContextKind::Bike),
            "Drive" => Some(ContextKind::Drive),
            "Moving" => Some(ContextKind::Moving),
            "Stress" => Some(ContextKind::Stress),
            "Conversation" => Some(ContextKind::Conversation),
            "Smoke" | "Smoking" => Some(ContextKind::Smoking),
            _ => None,
        }
    }

    /// True for the mutually exclusive transportation modes.
    pub fn is_transport_mode(self) -> bool {
        ContextKind::TRANSPORT_MODES.contains(&self)
    }
}

impl std::fmt::Display for ContextKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A context kind together with whether it is active.
///
/// Transportation modes are exclusive (exactly one is active at a time);
/// binary contexts (Stress, Conversation, Smoking, Moving) are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextState {
    /// Which context.
    pub kind: ContextKind,
    /// Whether the contributor is currently in this context.
    pub active: bool,
}

impl ContextState {
    /// An active context.
    pub fn on(kind: ContextKind) -> ContextState {
        ContextState { kind, active: true }
    }

    /// An inactive context.
    pub fn off(kind: ContextKind) -> ContextState {
        ContextState {
            kind,
            active: false,
        }
    }
}

/// A time window labeled with inferred context states.
///
/// The behavioral-study pipeline (§6) annotates uploaded sensor data with
/// context; a `ContextAnnotation` is the storage form of one inference
/// window. Windows for the same contributor may overlap (different
/// classifiers use different window lengths).
#[derive(Debug, Clone, PartialEq)]
pub struct ContextAnnotation {
    /// The window the inference covers.
    pub window: TimeRange,
    /// Inferred states; kinds not listed are "unknown" for this window.
    pub states: Vec<ContextState>,
}

impl ContextAnnotation {
    /// Creates an annotation.
    pub fn new(window: TimeRange, states: Vec<ContextState>) -> ContextAnnotation {
        ContextAnnotation { window, states }
    }

    /// Whether `kind` is active in this window; `None` if not annotated.
    pub fn state_of(&self, kind: ContextKind) -> Option<bool> {
        self.states
            .iter()
            .find(|s| s.kind == kind)
            .map(|s| s.active)
    }

    /// The active transportation mode, if one is annotated.
    pub fn transport_mode(&self) -> Option<ContextKind> {
        self.states
            .iter()
            .find(|s| s.active && s.kind.is_transport_mode())
            .map(|s| s.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{TimeRange, Timestamp};

    #[test]
    fn wire_names_roundtrip() {
        for k in ContextKind::ALL {
            assert_eq!(ContextKind::parse(k.as_str()), Some(k), "{k}");
        }
        assert_eq!(ContextKind::parse("Smoking"), Some(ContextKind::Smoking));
        assert_eq!(ContextKind::parse("Sleeping"), None);
    }

    #[test]
    fn transport_mode_classification() {
        assert!(ContextKind::Drive.is_transport_mode());
        assert!(!ContextKind::Stress.is_transport_mode());
        assert_eq!(ContextKind::TRANSPORT_MODES.len(), 5);
    }

    #[test]
    fn annotation_lookup() {
        let window = TimeRange::new(Timestamp(0), Timestamp(60_000));
        let ann = ContextAnnotation::new(
            window,
            vec![
                ContextState::on(ContextKind::Drive),
                ContextState::on(ContextKind::Stress),
                ContextState::off(ContextKind::Conversation),
            ],
        );
        assert_eq!(ann.state_of(ContextKind::Drive), Some(true));
        assert_eq!(ann.state_of(ContextKind::Conversation), Some(false));
        assert_eq!(ann.state_of(ContextKind::Smoking), None);
        assert_eq!(ann.transport_mode(), Some(ContextKind::Drive));
    }

    #[test]
    fn transport_mode_absent_when_inactive() {
        let window = TimeRange::new(Timestamp(0), Timestamp(1));
        let ann = ContextAnnotation::new(window, vec![ContextState::off(ContextKind::Walk)]);
        assert_eq!(ann.transport_mode(), None);
    }
}
