//! Time: millisecond-epoch timestamps, half-open ranges, and the paper's
//! repeated-time privacy-rule condition.
//!
//! The paper's Table 1 time conditions are either a continuous range
//! ("from Feb. 2011 to Mar. 2011") or a repeated window ("3–6pm on every
//! Wednesday"). Repeated windows need a civil-time view of a timestamp
//! (weekday, hour, minute); we derive that from the epoch directly rather
//! than pulling in a date-time crate. All civil math is in UTC — the
//! simulator and the rules agree on the zone, which is what matters for
//! reproducing the paper's semantics.

/// Milliseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

pub(crate) const MS_PER_SEC: i64 = 1_000;
pub(crate) const MS_PER_MIN: i64 = 60 * MS_PER_SEC;
pub(crate) const MS_PER_HOUR: i64 = 60 * MS_PER_MIN;
pub(crate) const MS_PER_DAY: i64 = 24 * MS_PER_HOUR;

impl Timestamp {
    /// Constructs from milliseconds since the epoch.
    pub fn from_millis(ms: i64) -> Self {
        Timestamp(ms)
    }

    /// The raw millisecond value.
    pub fn millis(self) -> i64 {
        self.0
    }

    /// Adds a (possibly fractional) number of seconds.
    pub fn plus_secs_f64(self, secs: f64) -> Timestamp {
        Timestamp(self.0 + (secs * 1_000.0).round() as i64)
    }

    /// Adds whole milliseconds.
    pub fn plus_millis(self, ms: i64) -> Timestamp {
        Timestamp(self.0 + ms)
    }

    /// Difference `self - other` in milliseconds.
    pub fn delta_millis(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }

    /// The weekday of this instant (UTC). The Unix epoch (1970-01-01) was
    /// a Thursday.
    pub fn weekday(self) -> Weekday {
        let days = self.0.div_euclid(MS_PER_DAY);
        // Thursday is day 0 of the epoch; index into a Mon-based week.
        let idx = (days + 3).rem_euclid(7); // 0 = Monday
        Weekday::from_index(idx as u8).expect("rem_euclid(7) is in 0..7")
    }

    /// The time of day (UTC) of this instant.
    pub fn time_of_day(self) -> TimeOfDay {
        let ms = self.0.rem_euclid(MS_PER_DAY);
        TimeOfDay {
            hour: (ms / MS_PER_HOUR) as u8,
            minute: ((ms % MS_PER_HOUR) / MS_PER_MIN) as u8,
        }
    }

    /// Truncates to midnight (UTC) of the same day.
    pub fn start_of_day(self) -> Timestamp {
        Timestamp(self.0.div_euclid(MS_PER_DAY) * MS_PER_DAY)
    }

    /// Truncates to a multiple of `granularity_ms` — the time-abstraction
    /// ladder of Table 1(b) (hour / day / month / year buckets).
    pub fn truncate_to(self, granularity_ms: i64) -> Timestamp {
        assert!(granularity_ms > 0, "granularity must be positive");
        Timestamp(self.0.div_euclid(granularity_ms) * granularity_ms)
    }

    /// The proleptic-Gregorian civil date (year, month 1..=12, day 1..=31)
    /// of this instant in UTC. Uses Howard Hinnant's `civil_from_days`
    /// algorithm.
    pub fn civil_date(self) -> (i32, u8, u8) {
        let z = self.0.div_euclid(MS_PER_DAY) + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // day of era [0, 146096]
        let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// Midnight UTC of the given civil date (`days_from_civil`).
    pub fn from_civil(year: i32, month: u8, day: u8) -> Timestamp {
        assert!((1..=12).contains(&month), "month out of range");
        assert!((1..=31).contains(&day), "day out of range");
        let y = if month <= 2 {
            year as i64 - 1
        } else {
            year as i64
        };
        let era = y.div_euclid(400);
        let yoe = y.rem_euclid(400);
        let mp = if month > 2 {
            month as i64 - 3
        } else {
            month as i64 + 9
        };
        let doy = (153 * mp + 2) / 5 + day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        let days = era * 146_097 + doe - 719_468;
        Timestamp(days * MS_PER_DAY)
    }

    /// Truncates to the first instant of this instant's UTC month.
    pub fn start_of_month(self) -> Timestamp {
        let (y, m, _) = self.civil_date();
        Timestamp::from_civil(y, m, 1)
    }

    /// Truncates to the first instant of this instant's UTC year.
    pub fn start_of_year(self) -> Timestamp {
        let (y, _, _) = self.civil_date();
        Timestamp::from_civil(y, 1, 1)
    }
}

/// A day of the week (paper's repeat-time "Day" attribute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday
    Mon,
    /// Tuesday
    Tue,
    /// Wednesday
    Wed,
    /// Thursday
    Thu,
    /// Friday
    Fri,
    /// Saturday
    Sat,
    /// Sunday
    Sun,
}

impl Weekday {
    /// All weekdays Monday-first.
    pub const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Monday–Friday, the paper's Fig. 4 "Weekdays".
    pub const WORKDAYS: [Weekday; 5] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
    ];

    /// From a Monday-based index 0..7.
    pub fn from_index(idx: u8) -> Option<Weekday> {
        Weekday::ALL.get(idx as usize).copied()
    }

    /// The three-letter wire name used in rule JSON (`"Mon"`, … Fig. 4).
    pub fn as_str(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<Weekday> {
        Weekday::ALL.iter().copied().find(|d| d.as_str() == s)
    }
}

/// A wall-clock time of day (UTC), minute resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeOfDay {
    /// 0..24
    pub hour: u8,
    /// 0..60
    pub minute: u8,
}

impl TimeOfDay {
    /// Constructs, panicking on out-of-range components.
    pub fn new(hour: u8, minute: u8) -> TimeOfDay {
        assert!(hour < 24 && minute < 60, "invalid time of day");
        TimeOfDay { hour, minute }
    }

    /// Minutes since midnight.
    pub fn minutes(self) -> u16 {
        self.hour as u16 * 60 + self.minute as u16
    }

    /// Parses `"9:00am"` / `"6:00pm"` / `"18:30"` (the paper's rule JSON
    /// uses the am/pm form, the web UI the 24-hour form).
    pub fn parse(s: &str) -> Option<TimeOfDay> {
        let lower = s.trim().to_ascii_lowercase();
        let (body, pm) = if let Some(stripped) = lower.strip_suffix("am") {
            (stripped.trim_end(), Some(false))
        } else if let Some(stripped) = lower.strip_suffix("pm") {
            (stripped.trim_end(), Some(true))
        } else {
            (lower.as_str(), None)
        };
        let (h, m) = match body.split_once(':') {
            Some((h, m)) => (h.parse::<u8>().ok()?, m.parse::<u8>().ok()?),
            None => (body.parse::<u8>().ok()?, 0),
        };
        let hour = match pm {
            None => h,
            Some(is_pm) => {
                if h == 0 || h > 12 {
                    return None;
                }
                match (h, is_pm) {
                    (12, false) => 0,
                    (12, true) => 12,
                    (h, false) => h,
                    (h, true) => h + 12,
                }
            }
        };
        if hour >= 24 || m >= 60 {
            return None;
        }
        Some(TimeOfDay::new(hour, m))
    }

    /// Renders in am/pm wire form (`"9:00am"`).
    pub fn to_wire(self) -> String {
        let (h12, suffix) = match self.hour {
            0 => (12, "am"),
            h @ 1..=11 => (h, "am"),
            12 => (12, "pm"),
            h => (h - 12, "pm"),
        };
        format!("{}:{:02}{}", h12, self.minute, suffix)
    }
}

/// A half-open time range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive start.
    pub start: Timestamp,
    /// Exclusive end.
    pub end: Timestamp,
}

impl TimeRange {
    /// Constructs; panics if `end < start` (empty ranges are allowed).
    pub fn new(start: Timestamp, end: Timestamp) -> TimeRange {
        assert!(end >= start, "time range end before start");
        TimeRange { start, end }
    }

    /// Range covering all of time.
    pub fn all() -> TimeRange {
        TimeRange {
            start: Timestamp(i64::MIN),
            end: Timestamp(i64::MAX),
        }
    }

    /// Duration in milliseconds.
    pub fn duration_millis(&self) -> i64 {
        self.end.0 - self.start.0
    }

    /// True if the instant falls inside the range.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// True if the two ranges share any instant.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The overlapping part of two ranges, if any.
    pub fn intersect(&self, other: &TimeRange) -> Option<TimeRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(TimeRange { start, end })
    }

    /// True for zero-duration ranges.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The paper's repeated-time condition: a set of weekdays and a daily
/// `[from, to)` window ("3-6pm on every Wednesday"; Fig. 4 uses
/// `{'Day': ['Mon',...], 'HourMin': ['9:00am','6:00pm']}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatTime {
    /// Weekdays the window applies to. Empty means every day.
    pub days: Vec<Weekday>,
    /// Daily window start (inclusive).
    pub from: TimeOfDay,
    /// Daily window end (exclusive). If `to <= from` the window wraps past
    /// midnight (e.g. 10pm–6am); the weekday test applies to the day the
    /// window *started*.
    pub to: TimeOfDay,
}

impl RepeatTime {
    /// A window on specific days.
    pub fn new(days: Vec<Weekday>, from: TimeOfDay, to: TimeOfDay) -> RepeatTime {
        RepeatTime { days, from, to }
    }

    /// The paper's Fig. 4 window: weekdays 9am–6pm.
    pub fn weekdays_nine_to_six() -> RepeatTime {
        RepeatTime::new(
            Weekday::WORKDAYS.to_vec(),
            TimeOfDay::new(9, 0),
            TimeOfDay::new(18, 0),
        )
    }

    fn day_matches(&self, day: Weekday) -> bool {
        self.days.is_empty() || self.days.contains(&day)
    }

    /// True if the instant falls inside the repeated window.
    pub fn contains(&self, t: Timestamp) -> bool {
        let tod = t.time_of_day().minutes();
        let from = self.from.minutes();
        let to = self.to.minutes();
        if from < to {
            self.day_matches(t.weekday()) && tod >= from && tod < to
        } else if from > to {
            // Wrapping window: [from, midnight) belongs to today,
            // [midnight, to) belongs to yesterday's window.
            if tod >= from {
                self.day_matches(t.weekday())
            } else if tod < to {
                let prev =
                    Weekday::from_index(((t.weekday() as u8) + 6) % 7).expect("mod 7 in range");
                self.day_matches(prev)
            } else {
                false
            }
        } else {
            false // zero-length window
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2011-07-24 (a Sunday) 19:26:38.327 UTC.
    const PAPER_TS: i64 = 1_311_535_598_327;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(Timestamp(0).weekday(), Weekday::Thu);
        assert_eq!(Timestamp(MS_PER_DAY).weekday(), Weekday::Fri);
        assert_eq!(Timestamp(-1).weekday(), Weekday::Wed);
        assert_eq!(Timestamp(-MS_PER_DAY).weekday(), Weekday::Wed);
    }

    #[test]
    fn paper_timestamp_civil_time() {
        let t = Timestamp(PAPER_TS);
        assert_eq!(t.weekday(), Weekday::Sun);
        assert_eq!(t.time_of_day(), TimeOfDay::new(19, 26));
    }

    #[test]
    fn time_of_day_and_start_of_day() {
        let t = Timestamp(MS_PER_DAY * 10 + MS_PER_HOUR * 13 + MS_PER_MIN * 45 + 500);
        assert_eq!(t.time_of_day(), TimeOfDay::new(13, 45));
        assert_eq!(t.start_of_day(), Timestamp(MS_PER_DAY * 10));
        assert_eq!(Timestamp(-1).start_of_day(), Timestamp(-MS_PER_DAY));
    }

    #[test]
    fn truncate_to_buckets() {
        let t = Timestamp(MS_PER_HOUR * 5 + 123_456);
        assert_eq!(t.truncate_to(MS_PER_HOUR), Timestamp(MS_PER_HOUR * 5));
        assert_eq!(t.truncate_to(MS_PER_DAY), Timestamp(0));
        assert_eq!(
            Timestamp(-1).truncate_to(MS_PER_DAY),
            Timestamp(-MS_PER_DAY)
        );
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn truncate_rejects_zero() {
        let _ = Timestamp(0).truncate_to(0);
    }

    #[test]
    fn weekday_wire_names() {
        for d in Weekday::ALL {
            assert_eq!(Weekday::parse(d.as_str()), Some(d));
        }
        assert_eq!(Weekday::parse("Monday"), None);
    }

    #[test]
    fn time_of_day_parsing() {
        assert_eq!(TimeOfDay::parse("9:00am"), Some(TimeOfDay::new(9, 0)));
        assert_eq!(TimeOfDay::parse("6:00pm"), Some(TimeOfDay::new(18, 0)));
        assert_eq!(TimeOfDay::parse("12:00am"), Some(TimeOfDay::new(0, 0)));
        assert_eq!(TimeOfDay::parse("12:30pm"), Some(TimeOfDay::new(12, 30)));
        assert_eq!(TimeOfDay::parse("18:30"), Some(TimeOfDay::new(18, 30)));
        assert_eq!(TimeOfDay::parse("7pm"), Some(TimeOfDay::new(19, 0)));
        assert_eq!(TimeOfDay::parse("0:05"), Some(TimeOfDay::new(0, 5)));
        assert_eq!(TimeOfDay::parse("25:00"), None);
        assert_eq!(TimeOfDay::parse("13:00pm"), None);
        assert_eq!(TimeOfDay::parse("0:00pm"), None);
        assert_eq!(TimeOfDay::parse("nonsense"), None);
        assert_eq!(TimeOfDay::parse("9:60"), None);
    }

    #[test]
    fn time_of_day_wire_roundtrip() {
        for (h, m) in [
            (0, 0),
            (0, 5),
            (9, 0),
            (11, 59),
            (12, 0),
            (12, 1),
            (18, 0),
            (23, 59),
        ] {
            let tod = TimeOfDay::new(h, m);
            assert_eq!(TimeOfDay::parse(&tod.to_wire()), Some(tod), "{tod:?}");
        }
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = TimeRange::new(Timestamp(10), Timestamp(20));
        assert!(r.contains(Timestamp(10)));
        assert!(r.contains(Timestamp(19)));
        assert!(!r.contains(Timestamp(20)));
        assert!(!r.contains(Timestamp(9)));
        let s = TimeRange::new(Timestamp(19), Timestamp(30));
        assert!(r.overlaps(&s));
        assert_eq!(
            r.intersect(&s),
            Some(TimeRange::new(Timestamp(19), Timestamp(20)))
        );
        let t = TimeRange::new(Timestamp(20), Timestamp(30));
        assert!(!r.overlaps(&t)); // half-open: touching ranges don't overlap
        assert_eq!(r.intersect(&t), None);
    }

    #[test]
    fn empty_range() {
        let e = TimeRange::new(Timestamp(5), Timestamp(5));
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp(5)));
    }

    #[test]
    fn repeat_time_weekday_window() {
        let r = RepeatTime::weekdays_nine_to_six();
        // PAPER_TS is Sunday 18:06 — outside.
        assert!(!r.contains(Timestamp(PAPER_TS)));
        // Move to Monday 10:00.
        let monday_ten = Timestamp(PAPER_TS)
            .start_of_day()
            .plus_millis(MS_PER_DAY + 10 * MS_PER_HOUR);
        assert_eq!(monday_ten.weekday(), Weekday::Mon);
        assert!(r.contains(monday_ten));
        // Monday 08:59 — before the window.
        let early = monday_ten.plus_millis(-(MS_PER_HOUR + MS_PER_MIN));
        assert!(!r.contains(early));
        // Monday 18:00 — window end is exclusive.
        let at_six = monday_ten.plus_millis(8 * MS_PER_HOUR);
        assert!(!r.contains(at_six));
    }

    #[test]
    fn repeat_time_empty_days_means_every_day() {
        let r = RepeatTime::new(vec![], TimeOfDay::new(0, 0), TimeOfDay::new(23, 59));
        assert!(r.contains(Timestamp(PAPER_TS))); // Sunday
        assert!(r.contains(Timestamp(0))); // Thursday
    }

    #[test]
    fn repeat_time_wrapping_window() {
        // 10pm–6am starting on Fridays (i.e. Friday night into Saturday
        // morning).
        let r = RepeatTime::new(
            vec![Weekday::Fri],
            TimeOfDay::new(22, 0),
            TimeOfDay::new(6, 0),
        );
        // Epoch day 1 is Friday.
        let friday = Timestamp(MS_PER_DAY);
        assert!(r.contains(friday.plus_millis(23 * MS_PER_HOUR))); // Fri 23:00
        assert!(r.contains(friday.plus_millis(24 * MS_PER_HOUR + 3 * MS_PER_HOUR))); // Sat 03:00
        assert!(!r.contains(friday.plus_millis(24 * MS_PER_HOUR + 7 * MS_PER_HOUR))); // Sat 07:00
        assert!(!r.contains(friday.plus_millis(12 * MS_PER_HOUR))); // Fri noon
                                                                    // Thursday 23:00 — right day-of-week boundary: window starts
                                                                    // Friday, so Thursday night is out.
        assert!(!r.contains(Timestamp(23 * MS_PER_HOUR)));
    }

    #[test]
    fn repeat_time_zero_window_matches_nothing() {
        let r = RepeatTime::new(vec![], TimeOfDay::new(9, 0), TimeOfDay::new(9, 0));
        assert!(!r.contains(Timestamp(9 * MS_PER_HOUR)));
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(Timestamp(0).civil_date(), (1970, 1, 1));
        assert_eq!(Timestamp(PAPER_TS).civil_date(), (2011, 7, 24));
        assert_eq!(Timestamp(-MS_PER_DAY).civil_date(), (1969, 12, 31));
        // Leap day 2000-02-29.
        let leap = Timestamp::from_civil(2000, 2, 29);
        assert_eq!(leap.civil_date(), (2000, 2, 29));
        assert_eq!(leap.plus_millis(MS_PER_DAY).civil_date(), (2000, 3, 1));
        // 1900 is not a leap year.
        let feb28_1900 = Timestamp::from_civil(1900, 2, 28);
        assert_eq!(
            feb28_1900.plus_millis(MS_PER_DAY).civil_date(),
            (1900, 3, 1)
        );
    }

    #[test]
    fn civil_roundtrip_range() {
        // Round-trip every 37th day across ±50 years.
        let mut day = -18_263i64; // ~1920
        while day < 18_263 {
            let t = Timestamp(day * MS_PER_DAY);
            let (y, m, d) = t.civil_date();
            assert_eq!(Timestamp::from_civil(y, m, d), t, "day {day}");
            day += 37;
        }
    }

    #[test]
    fn start_of_month_and_year() {
        let t = Timestamp(PAPER_TS);
        assert_eq!(t.start_of_month().civil_date(), (2011, 7, 1));
        assert_eq!(t.start_of_year().civil_date(), (2011, 1, 1));
        assert_eq!(t.start_of_month().time_of_day(), TimeOfDay::new(0, 0));
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn from_civil_rejects_bad_month() {
        let _ = Timestamp::from_civil(2020, 13, 1);
    }

    #[test]
    fn plus_secs_rounds() {
        assert_eq!(Timestamp(0).plus_secs_f64(0.02), Timestamp(20));
        assert_eq!(Timestamp(0).plus_secs_f64(1.0 / 3.0), Timestamp(333));
        assert_eq!(Timestamp(100).plus_secs_f64(-0.05), Timestamp(50));
    }
}
