//! Core data model for SensorSafe.
//!
//! This crate defines the vocabulary shared by every other SensorSafe
//! crate:
//!
//! * [`Timestamp`], [`TimeRange`], [`RepeatTime`] — millisecond-epoch time,
//!   half-open ranges, and the paper's "repeated time" (3–6pm every
//!   Wednesday) conditions, including a from-scratch civil-time
//!   (weekday / hour-of-day) conversion.
//! * [`GeoPoint`], [`Region`] — WGS-84 coordinates and the bounding-box
//!   regions contributors draw on the map UI.
//! * [`ChannelId`], [`ChannelSpec`], well-known channels — sensor channel
//!   naming ("Sensor Channel Name (e.g. Accelerometer, ECG)", Table 1).
//! * [`ContextKind`], [`ContextState`], [`ContextAnnotation`] — the
//!   behavioral contexts of Table 1 (Still/Walk/Run/Bike/Drive, Moving,
//!   Stress, Conversation, Smoking) and their attachment to time windows.
//! * [`WaveSegment`] — the paper's compact time-series representation
//!   (Fig. 5): metadata plus a binary value blob, with uniform-interval
//!   and per-sample-timestamp modes, JSON codec, and merge support.

mod channel;
mod context;
mod ids;
mod location;
mod time;
mod wave;

pub use channel::{
    ChannelId, ChannelSpec, ValueKind, CHAN_ACCEL_MAG, CHAN_AUDIO_ENERGY, CHAN_ECG, CHAN_GPS_LAT,
    CHAN_GPS_LON, CHAN_RESPIRATION, CHAN_SKIN_TEMP,
};
pub use context::{ContextAnnotation, ContextKind, ContextState};
pub use ids::{ConsumerId, ContributorId, GroupId, StoreAddr, StudyId};
pub use location::{GeoPoint, Region};
pub use time::{RepeatTime, TimeOfDay, TimeRange, Timestamp, Weekday};
pub use wave::{SegmentMeta, Timing, WaveError, WaveSegment};
