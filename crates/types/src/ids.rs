//! Identity newtypes for the actors and servers in the architecture.
//!
//! The paper identifies data contributors and consumers by "unique user
//! name", groups consumers into groups and studies (Table 1's consumer
//! condition attributes), and locates each contributor's remote data store
//! by IP address held at the broker.

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(String);

        impl $name {
            /// Creates an id; panics on an empty string.
            pub fn new(s: impl Into<String>) -> Self {
                let s = s.into();
                assert!(!s.is_empty(), concat!(stringify!($name), " must be non-empty"));
                Self(s)
            }

            /// The string form.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }
    };
}

string_id! {
    /// A data contributor's unique user name (e.g. `"alice"`).
    ContributorId
}

string_id! {
    /// A data consumer's unique user name (e.g. `"bob"`).
    ConsumerId
}

string_id! {
    /// A named group of consumers (Table 1 "Group Name").
    GroupId
}

string_id! {
    /// A named study enrolling consumers (Table 1 "Study Name").
    StudyId
}

/// The network address of a remote data store, as the broker records it
/// ("the IP address of the associated remote data store", §5.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreAddr(String);

impl StoreAddr {
    /// Creates an address like `"127.0.0.1:7001"` or an in-process handle
    /// name. No validation beyond non-emptiness: the transport layer
    /// interprets it.
    pub fn new(s: impl Into<String>) -> StoreAddr {
        let s = s.into();
        assert!(!s.is_empty(), "store address must be non-empty");
        StoreAddr(s)
    }

    /// The string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for StoreAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for StoreAddr {
    fn from(s: &str) -> Self {
        StoreAddr::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_construction_and_display() {
        let c = ContributorId::new("alice");
        assert_eq!(c.as_str(), "alice");
        assert_eq!(c.to_string(), "alice");
        assert_eq!(ContributorId::from("alice"), c);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_id_panics() {
        let _ = ConsumerId::new("");
    }

    #[test]
    fn ids_are_distinct_types() {
        // Purely a compile-time property; this test documents intent.
        let g = GroupId::new("researchers");
        let s = StudyId::new("stress-study");
        assert_eq!(g.as_str(), "researchers");
        assert_eq!(s.as_str(), "stress-study");
    }

    #[test]
    fn store_addr() {
        let a = StoreAddr::new("127.0.0.1:7001");
        assert_eq!(a.to_string(), "127.0.0.1:7001");
    }
}
