//! Wave segments: the paper's compact time-series representation (Fig. 5).
//!
//! "A continuous stream of sensor data is divided into many segments,
//! called wave segments ... A wave segment consists of a sensor value blob
//! and additional metadata describing the value blob. The metadata
//! includes a start time, a sampling interval, a location, and a format of
//! tuples in the value blob."
//!
//! A [`WaveSegment`] stores its samples row-major in a [`bytes::Bytes`]
//! blob: one tuple per sample, one column per [`ChannelSpec`]. Two timing
//! modes mirror the paper:
//!
//! * [`Timing::Uniform`] — a start time and a sampling interval, the
//!   common case for periodically sampled sensors;
//! * [`Timing::PerSample`] — an explicit timestamp per sample, "necessary
//!   to represent sampling schemes such as adaptive, compressive, and
//!   episodic".

use crate::channel::{ChannelId, ChannelSpec, ValueKind};
use crate::location::GeoPoint;
use crate::time::{TimeRange, Timestamp};
use bytes::{Bytes, BytesMut};
use sensorsafe_json::{json, Map, Value};

/// Errors constructing or decoding wave segments.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveError {
    /// A row had the wrong number of columns.
    RowWidth {
        /// Expected column count (the format width).
        expected: usize,
        /// Actual column count supplied.
        actual: usize,
    },
    /// Per-sample timestamp count didn't match the row count.
    TimestampCount,
    /// Per-sample timestamps went backwards.
    TimestampsNotMonotonic,
    /// The blob length is not a multiple of the tuple width.
    BlobMisaligned,
    /// A JSON document was missing or mistyped a field.
    Json(String),
    /// Sampling interval must be positive and finite.
    BadInterval,
    /// The format (channel list) was empty.
    EmptyFormat,
}

impl std::fmt::Display for WaveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveError::RowWidth { expected, actual } => {
                write!(f, "row has {actual} values, format has {expected} channels")
            }
            WaveError::TimestampCount => write!(f, "timestamp count differs from row count"),
            WaveError::TimestampsNotMonotonic => write!(f, "timestamps must be non-decreasing"),
            WaveError::BlobMisaligned => write!(f, "blob length not a multiple of tuple width"),
            WaveError::Json(msg) => write!(f, "invalid wave-segment JSON: {msg}"),
            WaveError::BadInterval => write!(f, "sampling interval must be positive and finite"),
            WaveError::EmptyFormat => write!(f, "wave segment needs at least one channel"),
        }
    }
}

impl std::error::Error for WaveError {}

/// How sample instants are represented.
#[derive(Debug, Clone, PartialEq)]
pub enum Timing {
    /// Samples at `start + i * interval`.
    Uniform {
        /// Time of sample 0.
        start: Timestamp,
        /// Seconds between samples (e.g. `0.02` for 50 Hz).
        interval_secs: f64,
    },
    /// An explicit, non-decreasing timestamp per sample.
    PerSample(Vec<Timestamp>),
}

/// Metadata describing a wave segment's blob (Fig. 5's header).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentMeta {
    /// Sample timing.
    pub timing: Timing,
    /// Where the samples were taken, if known. Mobile traces with a moving
    /// location carry GPS as data channels instead (paper: "for mobile
    /// sensors, time and location stamps are stored in the value blob as
    /// additional sensor channels").
    pub location: Option<GeoPoint>,
    /// Tuple format: one column per channel.
    pub format: Vec<ChannelSpec>,
}

/// A compact, immutable segment of multi-channel time-series data.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveSegment {
    meta: SegmentMeta,
    /// Row-major encoded tuples; cheap to clone and slice (ref-counted).
    blob: Bytes,
    rows: usize,
}

impl WaveSegment {
    /// Builds a segment from `rows` of `f64` values (one inner slice per
    /// sample, one value per format column). Values are narrowed to each
    /// column's [`ValueKind`].
    pub fn from_rows(meta: SegmentMeta, rows: &[Vec<f64>]) -> Result<WaveSegment, WaveError> {
        if meta.format.is_empty() {
            return Err(WaveError::EmptyFormat);
        }
        if let Timing::Uniform { interval_secs, .. } = meta.timing {
            if !(interval_secs.is_finite() && interval_secs > 0.0) {
                return Err(WaveError::BadInterval);
            }
        }
        if let Timing::PerSample(stamps) = &meta.timing {
            if stamps.len() != rows.len() {
                return Err(WaveError::TimestampCount);
            }
            if stamps.windows(2).any(|w| w[1] < w[0]) {
                return Err(WaveError::TimestampsNotMonotonic);
            }
        }
        let width = tuple_width(&meta.format);
        let mut blob = BytesMut::with_capacity(width * rows.len());
        for row in rows {
            if row.len() != meta.format.len() {
                return Err(WaveError::RowWidth {
                    expected: meta.format.len(),
                    actual: row.len(),
                });
            }
            for (value, spec) in row.iter().zip(&meta.format) {
                encode_value(&mut blob, *value, spec.kind);
            }
        }
        Ok(WaveSegment {
            meta,
            blob: blob.freeze(),
            rows: rows.len(),
        })
    }

    /// Reassembles a segment from an already-encoded blob (the storage
    /// engine's read path). Validates alignment and timing invariants.
    pub fn from_blob(meta: SegmentMeta, blob: Bytes) -> Result<WaveSegment, WaveError> {
        if meta.format.is_empty() {
            return Err(WaveError::EmptyFormat);
        }
        let width = tuple_width(&meta.format);
        if !blob.len().is_multiple_of(width) {
            return Err(WaveError::BlobMisaligned);
        }
        let rows = blob.len() / width;
        if let Timing::PerSample(stamps) = &meta.timing {
            if stamps.len() != rows {
                return Err(WaveError::TimestampCount);
            }
            if stamps.windows(2).any(|w| w[1] < w[0]) {
                return Err(WaveError::TimestampsNotMonotonic);
            }
        }
        if let Timing::Uniform { interval_secs, .. } = meta.timing {
            if !(interval_secs.is_finite() && interval_secs > 0.0) {
                return Err(WaveError::BadInterval);
            }
        }
        Ok(WaveSegment { meta, blob, rows })
    }

    /// The segment metadata.
    pub fn meta(&self) -> &SegmentMeta {
        &self.meta
    }

    /// The raw encoded blob.
    pub fn blob(&self) -> &Bytes {
        &self.blob
    }

    /// Number of samples (tuples).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Bytes per tuple.
    pub fn tuple_width(&self) -> usize {
        tuple_width(&self.meta.format)
    }

    /// Approximate in-memory footprint in bytes (blob + timestamps).
    pub fn approx_bytes(&self) -> usize {
        let stamps = match &self.meta.timing {
            Timing::Uniform { .. } => 16,
            Timing::PerSample(v) => v.len() * 8,
        };
        self.blob.len() + stamps + std::mem::size_of::<SegmentMeta>()
    }

    /// The instant of sample `i`.
    pub fn time_at(&self, i: usize) -> Timestamp {
        assert!(i < self.rows, "sample index out of range");
        match &self.meta.timing {
            Timing::Uniform {
                start,
                interval_secs,
            } => start.plus_secs_f64(*interval_secs * i as f64),
            Timing::PerSample(stamps) => stamps[i],
        }
    }

    /// The instant of the first sample; `None` for empty segments.
    pub fn start_time(&self) -> Option<Timestamp> {
        (self.rows > 0).then(|| self.time_at(0))
    }

    /// The half-open time extent `[first, last + interval)`; per-sample
    /// segments use `last + 1ms` as the exclusive end.
    pub fn time_range(&self) -> Option<TimeRange> {
        if self.rows == 0 {
            return None;
        }
        let start = self.time_at(0);
        let end = match &self.meta.timing {
            Timing::Uniform {
                start,
                interval_secs,
            } => start.plus_secs_f64(*interval_secs * self.rows as f64),
            Timing::PerSample(stamps) => stamps[self.rows - 1].plus_millis(1),
        };
        Some(TimeRange::new(start, end))
    }

    /// Reads the value at `(row, col)` as `f64`.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows, "row out of range");
        assert!(col < self.meta.format.len(), "column out of range");
        let width = self.tuple_width();
        let mut offset = row * width;
        for spec in &self.meta.format[..col] {
            offset += spec.kind.width();
        }
        decode_value(&self.blob[offset..], self.meta.format[col].kind)
    }

    /// One sample as a `Vec<f64>`.
    pub fn row(&self, row: usize) -> Vec<f64> {
        (0..self.meta.format.len())
            .map(|c| self.value(row, c))
            .collect()
    }

    /// Column index of `channel`, if present.
    pub fn column_of(&self, channel: &ChannelId) -> Option<usize> {
        self.meta.format.iter().position(|s| &s.channel == channel)
    }

    /// All values of one channel.
    pub fn channel_values(&self, channel: &ChannelId) -> Option<Vec<f64>> {
        let col = self.column_of(channel)?;
        Some((0..self.rows).map(|r| self.value(r, col)).collect())
    }

    /// The channels carried by this segment, in column order.
    pub fn channels(&self) -> impl Iterator<Item = &ChannelId> {
        self.meta.format.iter().map(|s| &s.channel)
    }

    /// Projects the segment onto a subset of channels (used by rule
    /// enforcement to suppress columns). Returns `None` if no requested
    /// channel is present.
    pub fn select_channels(&self, keep: &[ChannelId]) -> Option<WaveSegment> {
        let cols: Vec<usize> = self
            .meta
            .format
            .iter()
            .enumerate()
            .filter(|(_, s)| keep.contains(&s.channel))
            .map(|(i, _)| i)
            .collect();
        if cols.is_empty() {
            return None;
        }
        if cols.len() == self.meta.format.len() {
            return Some(self.clone());
        }
        let format: Vec<ChannelSpec> = cols.iter().map(|&i| self.meta.format[i].clone()).collect();
        let rows: Vec<Vec<f64>> = (0..self.rows)
            .map(|r| cols.iter().map(|&c| self.value(r, c)).collect())
            .collect();
        let meta = SegmentMeta {
            timing: self.meta.timing.clone(),
            location: self.meta.location,
            format,
        };
        Some(WaveSegment::from_rows(meta, &rows).expect("projection preserves invariants"))
    }

    /// Restricts the segment to samples inside `range`. Returns `None` if
    /// no sample falls inside. Uniform timing is preserved (the slice
    /// start shifts); per-sample timestamps are subset.
    pub fn slice_time(&self, range: &TimeRange) -> Option<WaveSegment> {
        if self.rows == 0 {
            return None;
        }
        match &self.meta.timing {
            Timing::Uniform {
                start,
                interval_secs,
            } => {
                let interval_ms = interval_secs * 1_000.0;
                // Saturating arithmetic: `TimeRange::all()` uses i64 extremes.
                // First index with time >= range.start.
                let lo_f = range.start.millis().saturating_sub(start.millis()) as f64 / interval_ms;
                let lo = lo_f.ceil().max(0.0) as usize;
                // First index with time >= range.end (exclusive bound).
                let hi_f = range.end.millis().saturating_sub(start.millis()) as f64 / interval_ms;
                let hi = (hi_f.ceil().max(0.0).min(self.rows as f64)) as usize;
                if lo >= hi {
                    return None;
                }
                let width = self.tuple_width();
                let meta = SegmentMeta {
                    timing: Timing::Uniform {
                        start: start.plus_secs_f64(interval_secs * lo as f64),
                        interval_secs: *interval_secs,
                    },
                    location: self.meta.location,
                    format: self.meta.format.clone(),
                };
                let blob = self.blob.slice(lo * width..hi * width);
                Some(WaveSegment {
                    meta,
                    blob,
                    rows: hi - lo,
                })
            }
            Timing::PerSample(stamps) => {
                let lo = stamps.partition_point(|t| *t < range.start);
                let hi = stamps.partition_point(|t| *t < range.end);
                if lo >= hi {
                    return None;
                }
                let width = self.tuple_width();
                let meta = SegmentMeta {
                    timing: Timing::PerSample(stamps[lo..hi].to_vec()),
                    location: self.meta.location,
                    format: self.meta.format.clone(),
                };
                let blob = self.blob.slice(lo * width..hi * width);
                Some(WaveSegment {
                    meta,
                    blob,
                    rows: hi - lo,
                })
            }
        }
    }

    /// Whether `next` can be appended to `self` to form one segment
    /// (§5.1's merge optimization): both uniform, same interval, same
    /// format, same location, and `next` starts within half an interval of
    /// where `self`'s sampling would place its next sample.
    pub fn can_merge(&self, next: &WaveSegment) -> bool {
        let (
            Timing::Uniform {
                start: s1,
                interval_secs: i1,
            },
            Timing::Uniform {
                start: s2,
                interval_secs: i2,
            },
        ) = (&self.meta.timing, &next.meta.timing)
        else {
            return false;
        };
        if self.rows == 0 || next.rows == 0 {
            return false;
        }
        if (i1 - i2).abs() > f64::EPSILON * i1.abs() {
            return false;
        }
        if self.meta.format != next.meta.format {
            return false;
        }
        if !location_eq(self.meta.location, next.meta.location) {
            return false;
        }
        let expected_next = s1.plus_secs_f64(i1 * self.rows as f64);
        let tolerance_ms = (i1 * 500.0).max(1.0); // half an interval
        (s2.millis() - expected_next.millis()).abs() as f64 <= tolerance_ms
    }

    /// Concatenates `next` onto `self`. Call [`WaveSegment::can_merge`]
    /// first; panics if the segments are incompatible.
    pub fn merge(&self, next: &WaveSegment) -> WaveSegment {
        assert!(self.can_merge(next), "segments are not mergeable");
        let mut blob = BytesMut::with_capacity(self.blob.len() + next.blob.len());
        blob.extend_from_slice(&self.blob);
        blob.extend_from_slice(&next.blob);
        WaveSegment {
            meta: self.meta.clone(),
            blob: blob.freeze(),
            rows: self.rows + next.rows,
        }
    }

    /// Serializes to the Fig. 5 JSON form.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        if let Some(loc) = self.meta.location {
            obj.insert(
                "location".into(),
                json!({"latitude": (loc.latitude), "longitude": (loc.longitude)}),
            );
        }
        match &self.meta.timing {
            Timing::Uniform {
                start,
                interval_secs,
            } => {
                obj.insert("start_time".into(), Value::from(start.millis()));
                obj.insert("sampling_interval".into(), Value::from(*interval_secs));
            }
            Timing::PerSample(stamps) => {
                obj.insert(
                    "timestamps".into(),
                    Value::Array(stamps.iter().map(|t| Value::from(t.millis())).collect()),
                );
            }
        }
        obj.insert(
            "format".into(),
            Value::Array(
                self.meta
                    .format
                    .iter()
                    .map(|s| {
                        json!({
                            "channel": (s.channel.as_str()),
                            "kind": (s.kind.as_str()),
                        })
                    })
                    .collect(),
            ),
        );
        let data: Vec<Value> = (0..self.rows)
            .map(|r| Value::Array(self.row(r).into_iter().map(Value::from).collect()))
            .collect();
        obj.insert("data".into(), Value::Array(data));
        Value::Object(obj)
    }

    /// Parses the Fig. 5 JSON form. Accepts `format` entries as either
    /// `{"channel": ..., "kind": ...}` objects or bare channel-name
    /// strings (defaulting to `f32`, matching the paper's figure which
    /// lists only names).
    pub fn from_json(value: &Value) -> Result<WaveSegment, WaveError> {
        let err = |msg: &str| WaveError::Json(msg.to_string());
        let obj = value.as_object().ok_or_else(|| err("expected object"))?;
        let format_json = obj
            .get("format")
            .and_then(Value::as_array)
            .ok_or_else(|| err("missing format array"))?;
        let mut format = Vec::with_capacity(format_json.len());
        for entry in format_json {
            let spec = match entry {
                Value::String(name) => ChannelSpec::f32(
                    ChannelId::try_new(name.clone()).ok_or_else(|| err("bad channel name"))?,
                ),
                Value::Object(_) => {
                    let name = entry
                        .get("channel")
                        .and_then(Value::as_str)
                        .ok_or_else(|| err("format entry missing channel"))?;
                    let kind = entry
                        .get("kind")
                        .and_then(Value::as_str)
                        .and_then(ValueKind::parse)
                        .unwrap_or(ValueKind::F32);
                    ChannelSpec {
                        channel: ChannelId::try_new(name).ok_or_else(|| err("bad channel name"))?,
                        kind,
                    }
                }
                _ => return Err(err("format entry must be string or object")),
            };
            format.push(spec);
        }
        let timing = if let Some(stamps) = obj.get("timestamps").and_then(Value::as_array) {
            let parsed: Option<Vec<Timestamp>> = stamps
                .iter()
                .map(|v| v.as_i64().map(Timestamp::from_millis))
                .collect();
            Timing::PerSample(parsed.ok_or_else(|| err("non-integer timestamp"))?)
        } else {
            let start = obj
                .get("start_time")
                .and_then(Value::as_i64)
                .ok_or_else(|| err("missing start_time"))?;
            let interval = obj
                .get("sampling_interval")
                .and_then(Value::as_f64)
                .ok_or_else(|| err("missing sampling_interval"))?;
            Timing::Uniform {
                start: Timestamp::from_millis(start),
                interval_secs: interval,
            }
        };
        let location = match obj.get("location") {
            Some(loc) => {
                let lat = loc
                    .get("latitude")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| err("location missing latitude"))?;
                let lon = loc
                    .get("longitude")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| err("location missing longitude"))?;
                Some(GeoPoint::new(lat, lon))
            }
            None => None,
        };
        let data = obj
            .get("data")
            .and_then(Value::as_array)
            .ok_or_else(|| err("missing data array"))?;
        let mut rows = Vec::with_capacity(data.len());
        for row in data {
            let cells = row.as_array().ok_or_else(|| err("data row not an array"))?;
            let parsed: Option<Vec<f64>> = cells.iter().map(Value::as_f64).collect();
            rows.push(parsed.ok_or_else(|| err("non-numeric sample value"))?);
        }
        WaveSegment::from_rows(
            SegmentMeta {
                timing,
                location,
                format,
            },
            &rows,
        )
    }
}

fn tuple_width(format: &[ChannelSpec]) -> usize {
    format.iter().map(|s| s.kind.width()).sum()
}

fn location_eq(a: Option<GeoPoint>, b: Option<GeoPoint>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => a == b,
        _ => false,
    }
}

fn encode_value(out: &mut BytesMut, value: f64, kind: ValueKind) {
    match kind {
        ValueKind::F64 => out.extend_from_slice(&value.to_le_bytes()),
        ValueKind::F32 => out.extend_from_slice(&(value as f32).to_le_bytes()),
        ValueKind::I16 => {
            let clamped = value.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16;
            out.extend_from_slice(&clamped.to_le_bytes());
        }
    }
}

fn decode_value(bytes: &[u8], kind: ValueKind) -> f64 {
    match kind {
        ValueKind::F64 => f64::from_le_bytes(bytes[..8].try_into().expect("blob aligned")),
        ValueKind::F32 => f32::from_le_bytes(bytes[..4].try_into().expect("blob aligned")) as f64,
        ValueKind::I16 => i16::from_le_bytes(bytes[..2].try_into().expect("blob aligned")) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{CHAN_ECG, CHAN_RESPIRATION};

    fn ecg_rip_meta(start_ms: i64, hz: f64) -> SegmentMeta {
        SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp::from_millis(start_ms),
                interval_secs: 1.0 / hz,
            },
            location: Some(GeoPoint::ucla()),
            format: vec![
                ChannelSpec::i16(CHAN_ECG),
                ChannelSpec::f32(CHAN_RESPIRATION),
            ],
        }
    }

    fn sample_segment() -> WaveSegment {
        let rows = vec![vec![512.0, 301.5], vec![518.0, 300.25], vec![530.0, 298.0]];
        WaveSegment::from_rows(ecg_rip_meta(1_311_535_598_327, 50.0), &rows).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let seg = sample_segment();
        assert_eq!(seg.len(), 3);
        assert!(!seg.is_empty());
        assert_eq!(seg.tuple_width(), 2 + 4);
        assert_eq!(seg.value(0, 0), 512.0);
        assert_eq!(seg.value(1, 1), 300.25);
        assert_eq!(seg.row(2), vec![530.0, 298.0]);
    }

    #[test]
    fn i16_rounding_and_clamping() {
        let meta = SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp(0),
                interval_secs: 1.0,
            },
            location: None,
            format: vec![ChannelSpec::i16(CHAN_ECG)],
        };
        let seg =
            WaveSegment::from_rows(meta, &[vec![1.6], vec![-1.6], vec![1e9], vec![-1e9]]).unwrap();
        assert_eq!(seg.value(0, 0), 2.0);
        assert_eq!(seg.value(1, 0), -2.0);
        assert_eq!(seg.value(2, 0), i16::MAX as f64);
        assert_eq!(seg.value(3, 0), i16::MIN as f64);
    }

    #[test]
    fn timing_uniform() {
        let seg = sample_segment();
        assert_eq!(seg.time_at(0), Timestamp(1_311_535_598_327));
        assert_eq!(seg.time_at(1), Timestamp(1_311_535_598_347));
        assert_eq!(seg.time_at(2), Timestamp(1_311_535_598_367));
        let range = seg.time_range().unwrap();
        assert_eq!(range.start, Timestamp(1_311_535_598_327));
        assert_eq!(range.end, Timestamp(1_311_535_598_387));
    }

    #[test]
    fn timing_per_sample() {
        let meta = SegmentMeta {
            timing: Timing::PerSample(vec![Timestamp(10), Timestamp(15), Timestamp(100)]),
            location: None,
            format: vec![ChannelSpec::f32("x")],
        };
        let seg = WaveSegment::from_rows(meta, &[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(seg.time_at(2), Timestamp(100));
        assert_eq!(
            seg.time_range().unwrap(),
            TimeRange::new(Timestamp(10), Timestamp(101))
        );
    }

    #[test]
    fn invariant_violations() {
        let meta = ecg_rip_meta(0, 50.0);
        assert_eq!(
            WaveSegment::from_rows(meta.clone(), &[vec![1.0]]),
            Err(WaveError::RowWidth {
                expected: 2,
                actual: 1
            })
        );
        let bad_stamp_meta = SegmentMeta {
            timing: Timing::PerSample(vec![Timestamp(5), Timestamp(3)]),
            location: None,
            format: vec![ChannelSpec::f32("x")],
        };
        assert_eq!(
            WaveSegment::from_rows(bad_stamp_meta, &[vec![1.0], vec![2.0]]),
            Err(WaveError::TimestampsNotMonotonic)
        );
        let count_meta = SegmentMeta {
            timing: Timing::PerSample(vec![Timestamp(5)]),
            location: None,
            format: vec![ChannelSpec::f32("x")],
        };
        assert_eq!(
            WaveSegment::from_rows(count_meta, &[vec![1.0], vec![2.0]]),
            Err(WaveError::TimestampCount)
        );
        let zero_interval = SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp(0),
                interval_secs: 0.0,
            },
            location: None,
            format: vec![ChannelSpec::f32("x")],
        };
        assert_eq!(
            WaveSegment::from_rows(zero_interval, &[vec![1.0]]),
            Err(WaveError::BadInterval)
        );
        let empty_format = SegmentMeta {
            timing: Timing::Uniform {
                start: Timestamp(0),
                interval_secs: 1.0,
            },
            location: None,
            format: vec![],
        };
        assert_eq!(
            WaveSegment::from_rows(empty_format, &[]),
            Err(WaveError::EmptyFormat)
        );
    }

    #[test]
    fn from_blob_alignment_check() {
        let meta = ecg_rip_meta(0, 50.0);
        let blob = Bytes::from(vec![0u8; 7]); // width is 6
        assert_eq!(
            WaveSegment::from_blob(meta.clone(), blob),
            Err(WaveError::BlobMisaligned)
        );
        let good = WaveSegment::from_blob(meta, Bytes::from(vec![0u8; 12])).unwrap();
        assert_eq!(good.len(), 2);
    }

    #[test]
    fn channel_selection() {
        let seg = sample_segment();
        let only_ecg = seg.select_channels(&[ChannelId::new(CHAN_ECG)]).unwrap();
        assert_eq!(only_ecg.meta().format.len(), 1);
        assert_eq!(only_ecg.len(), 3);
        assert_eq!(only_ecg.value(2, 0), 530.0);
        // Selecting everything returns an identical segment.
        let both = seg
            .select_channels(&[ChannelId::new(CHAN_ECG), ChannelId::new(CHAN_RESPIRATION)])
            .unwrap();
        assert_eq!(both, seg);
        // Selecting nothing present returns None.
        assert!(seg.select_channels(&[ChannelId::new("gps_lat")]).is_none());
    }

    #[test]
    fn channel_values_lookup() {
        let seg = sample_segment();
        assert_eq!(
            seg.channel_values(&ChannelId::new(CHAN_ECG)).unwrap(),
            vec![512.0, 518.0, 530.0]
        );
        assert!(seg.channel_values(&ChannelId::new("missing")).is_none());
        let names: Vec<&str> = seg.channels().map(|c| c.as_str()).collect();
        assert_eq!(names, ["ecg", "respiration"]);
    }

    #[test]
    fn slice_time_uniform() {
        let seg = sample_segment(); // samples at 327, 347, 367 (+1311535598000)
        let base = 1_311_535_598_000;
        // Window covering only the middle sample.
        let mid = seg
            .slice_time(&TimeRange::new(
                Timestamp(base + 340),
                Timestamp(base + 360),
            ))
            .unwrap();
        assert_eq!(mid.len(), 1);
        assert_eq!(mid.value(0, 0), 518.0);
        assert_eq!(mid.time_at(0), Timestamp(base + 347));
        // Window covering everything.
        let all = seg.slice_time(&TimeRange::all()).unwrap();
        assert_eq!(all.len(), 3);
        // Window before the data.
        assert!(seg
            .slice_time(&TimeRange::new(Timestamp(0), Timestamp(base)))
            .is_none());
        // Exclusive end: window ending exactly at a sample's time excludes it.
        let upto = seg
            .slice_time(&TimeRange::new(Timestamp(base), Timestamp(base + 347)))
            .unwrap();
        assert_eq!(upto.len(), 1);
    }

    #[test]
    fn slice_time_per_sample() {
        let meta = SegmentMeta {
            timing: Timing::PerSample(vec![Timestamp(10), Timestamp(20), Timestamp(30)]),
            location: None,
            format: vec![ChannelSpec::f64("x")],
        };
        let seg = WaveSegment::from_rows(meta, &[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let mid = seg
            .slice_time(&TimeRange::new(Timestamp(15), Timestamp(30)))
            .unwrap();
        assert_eq!(mid.len(), 1);
        assert_eq!(mid.value(0, 0), 2.0);
        assert_eq!(mid.time_at(0), Timestamp(20));
    }

    #[test]
    fn merge_consecutive_segments() {
        // The Zephyr case: two 64-sample packets back to back.
        let hz = 50.0;
        let rows_a: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64, 0.0]).collect();
        let rows_b: Vec<Vec<f64>> = (64..128).map(|i| vec![i as f64, 0.0]).collect();
        let a = WaveSegment::from_rows(ecg_rip_meta(0, hz), &rows_a).unwrap();
        let b = WaveSegment::from_rows(ecg_rip_meta(64 * 20, hz), &rows_b).unwrap();
        assert!(a.can_merge(&b));
        let merged = a.merge(&b);
        assert_eq!(merged.len(), 128);
        assert_eq!(merged.value(127, 0), 127.0);
        assert_eq!(merged.time_at(127), Timestamp(127 * 20));
    }

    #[test]
    fn merge_tolerates_jitter_within_half_interval() {
        let hz = 50.0; // 20ms interval
        let a = WaveSegment::from_rows(ecg_rip_meta(0, hz), &[vec![1.0, 0.0]]).unwrap();
        let on_time = WaveSegment::from_rows(ecg_rip_meta(20, hz), &[vec![2.0, 0.0]]).unwrap();
        let jittered = WaveSegment::from_rows(ecg_rip_meta(28, hz), &[vec![2.0, 0.0]]).unwrap();
        let late = WaveSegment::from_rows(ecg_rip_meta(45, hz), &[vec![2.0, 0.0]]).unwrap();
        assert!(a.can_merge(&on_time));
        assert!(a.can_merge(&jittered));
        assert!(!a.can_merge(&late));
    }

    #[test]
    fn merge_rejects_mismatches() {
        let a = WaveSegment::from_rows(ecg_rip_meta(0, 50.0), &[vec![1.0, 0.0]]).unwrap();
        // Different interval.
        let slow = WaveSegment::from_rows(ecg_rip_meta(20, 25.0), &[vec![2.0, 0.0]]).unwrap();
        assert!(!a.can_merge(&slow));
        // Different location.
        let mut meta = ecg_rip_meta(20, 50.0);
        meta.location = None;
        let elsewhere = WaveSegment::from_rows(meta, &[vec![2.0, 0.0]]).unwrap();
        assert!(!a.can_merge(&elsewhere));
        // Different format.
        let mut meta = ecg_rip_meta(20, 50.0);
        meta.format = vec![
            ChannelSpec::f32(CHAN_ECG),
            ChannelSpec::f32(CHAN_RESPIRATION),
        ];
        let other_fmt = WaveSegment::from_rows(meta, &[vec![2.0, 0.0]]).unwrap();
        assert!(!a.can_merge(&other_fmt));
        // Gap (not consecutive).
        let gap = WaveSegment::from_rows(ecg_rip_meta(500, 50.0), &[vec![2.0, 0.0]]).unwrap();
        assert!(!a.can_merge(&gap));
        // Overlap going backwards.
        let overlap = WaveSegment::from_rows(ecg_rip_meta(-40, 50.0), &[vec![2.0, 0.0]]).unwrap();
        assert!(!a.can_merge(&overlap));
    }

    #[test]
    #[should_panic(expected = "not mergeable")]
    fn merge_panics_on_incompatible() {
        let a = WaveSegment::from_rows(ecg_rip_meta(0, 50.0), &[vec![1.0, 0.0]]).unwrap();
        let b = WaveSegment::from_rows(ecg_rip_meta(900, 50.0), &[vec![2.0, 0.0]]).unwrap();
        let _ = a.merge(&b);
    }

    #[test]
    fn json_roundtrip_uniform() {
        let seg = sample_segment();
        let v = seg.to_json();
        assert_eq!(v["start_time"].as_i64(), Some(1_311_535_598_327));
        assert_eq!(v["sampling_interval"].as_f64(), Some(0.02));
        assert_eq!(v["format"][0]["channel"].as_str(), Some("ecg"));
        let back = WaveSegment::from_json(&v).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn json_roundtrip_per_sample() {
        let meta = SegmentMeta {
            timing: Timing::PerSample(vec![Timestamp(1), Timestamp(5)]),
            location: None,
            format: vec![ChannelSpec::f64("x")],
        };
        let seg = WaveSegment::from_rows(meta, &[vec![0.5], vec![-0.5]]).unwrap();
        let back = WaveSegment::from_json(&seg.to_json()).unwrap();
        assert_eq!(back, seg);
    }

    #[test]
    fn json_accepts_bare_channel_names() {
        let v = sensorsafe_json::parse(
            r#"{
                "start_time": 0,
                "sampling_interval": 0.5,
                "format": ["ecg", "respiration"],
                "data": [[1, 2], [3, 4]]
            }"#,
        )
        .unwrap();
        let seg = WaveSegment::from_json(&v).unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.meta().format[0].kind, ValueKind::F32);
        assert_eq!(seg.value(1, 1), 4.0);
    }

    #[test]
    fn json_rejects_malformed() {
        for bad in [
            r#"{"sampling_interval": 0.5, "format": ["x"], "data": []}"#, // no start_time
            r#"{"start_time": 0, "sampling_interval": 0.5, "data": []}"#, // no format
            r#"{"start_time": 0, "sampling_interval": 0.5, "format": ["x"]}"#, // no data
            r#"{"start_time": 0, "sampling_interval": 0.5, "format": ["x"], "data": [["a"]]}"#,
            r#"{"start_time": 0, "sampling_interval": 0.5, "format": [7], "data": []}"#,
            r#"{"start_time": 0, "sampling_interval": 0.5, "format": ["x"], "data": [[1, 2]]}"#,
            r#"{"start_time": 0, "sampling_interval": 0.5, "format": ["x"], "data": [[1]], "location": {"latitude": 1}}"#,
            r#"[1, 2]"#,
        ] {
            let v = sensorsafe_json::parse(bad).unwrap();
            assert!(WaveSegment::from_json(&v).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let small = sample_segment();
        let rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64, 0.0]).collect();
        let big = WaveSegment::from_rows(ecg_rip_meta(0, 50.0), &rows).unwrap();
        // 1000 rows × 6-byte tuples dominate the fixed metadata overhead.
        assert!(big.approx_bytes() >= 6_000);
        assert!(big.approx_bytes() > small.approx_bytes() * 20);
    }

    #[test]
    fn empty_segment() {
        let seg = WaveSegment::from_rows(ecg_rip_meta(0, 50.0), &[]).unwrap();
        assert!(seg.is_empty());
        assert!(seg.start_time().is_none());
        assert!(seg.time_range().is_none());
        assert!(seg.slice_time(&TimeRange::all()).is_none());
    }
}
