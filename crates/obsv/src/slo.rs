//! Service-level objectives and burn-rate evaluation.
//!
//! An SLO says "over this window, at least `target` of events must be
//! good" (or, for ratio objectives, "this ratio must stay under
//! `target`"). The *burn rate* is how fast the error budget is being
//! consumed: a burn rate of 1.0 spends exactly the budget the objective
//! allows; 10.0 spends it ten times too fast. Alerting on burn rate
//! rather than raw error counts makes one threshold meaningful across
//! objectives with very different targets — the standard SRE framing.
//!
//! This module is deliberately pure: an [`Objective`] turns a windowed
//! [`Measurement`] (produced elsewhere, e.g. from [`crate::timeseries`]
//! deltas) into an [`Evaluation`]. No clocks, no storage — fully
//! deterministic under test.

/// How an objective interprets its measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// `good / total` must stay **at or above** `target` (e.g.
    /// availability 0.999, or "99% of requests under 250 ms").
    GoodFraction,
    /// `good / total` must stay **at or below** `target` (e.g. the WAL
    /// fsync-per-upload ratio staying under the coalescing budget).
    MaxRatio,
}

/// One configurable service-level objective.
#[derive(Clone, Debug)]
pub struct Objective {
    /// Short identifier surfaced in `/fleet` and metric labels.
    pub name: String,
    /// How the measurement is interpreted.
    pub kind: ObjectiveKind,
    /// The objective itself: minimum good fraction, or maximum ratio.
    pub target: f64,
    /// Rolling window the measurement must cover, in seconds.
    pub window_secs: f64,
    /// Burn rate at or above which the objective alerts.
    pub alert_burn: f64,
}

impl Objective {
    /// A good-events-over-total objective (availability-style).
    pub fn good_fraction(name: &str, target: f64, window_secs: f64, alert_burn: f64) -> Objective {
        assert!(
            (0.0..1.0).contains(&target),
            "good-fraction target must be in [0, 1): {target}"
        );
        Objective {
            name: name.to_string(),
            kind: ObjectiveKind::GoodFraction,
            target,
            window_secs,
            alert_burn,
        }
    }

    /// A bounded-ratio objective (numerator over denominator ≤ target).
    pub fn max_ratio(name: &str, target: f64, window_secs: f64, alert_burn: f64) -> Objective {
        assert!(target > 0.0, "max-ratio target must be positive: {target}");
        Objective {
            name: name.to_string(),
            kind: ObjectiveKind::MaxRatio,
            target,
            window_secs,
            alert_burn,
        }
    }

    /// Evaluates the objective against a windowed measurement.
    ///
    /// An empty window (`total <= 0`) evaluates to burn rate 0 and never
    /// alerts — no evidence is not bad evidence.
    pub fn evaluate(&self, m: &Measurement) -> Evaluation {
        let burn_rate = if m.total <= 0.0 {
            0.0
        } else {
            match self.kind {
                ObjectiveKind::GoodFraction => {
                    let bad = (1.0 - m.good / m.total).max(0.0);
                    let budget = 1.0 - self.target;
                    bad / budget
                }
                ObjectiveKind::MaxRatio => (m.good / m.total) / self.target,
            }
        };
        Evaluation {
            objective: self.name.clone(),
            burn_rate,
            alerting: m.total > 0.0 && burn_rate >= self.alert_burn,
            good: m.good,
            total: m.total,
        }
    }
}

/// A windowed measurement feeding an objective.
///
/// For [`ObjectiveKind::GoodFraction`], `good` counts good events and
/// `total` all events. For [`ObjectiveKind::MaxRatio`], `good` is the
/// numerator and `total` the denominator of the bounded ratio.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Good events, or the ratio numerator.
    pub good: f64,
    /// Total events, or the ratio denominator.
    pub total: f64,
}

/// The outcome of evaluating one objective over one window.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Name of the evaluated objective.
    pub objective: String,
    /// Error-budget consumption rate (1.0 = exactly on budget).
    pub burn_rate: f64,
    /// True when the burn rate reached the objective's alert threshold.
    pub alerting: bool,
    /// The measurement's good-event count (or ratio numerator).
    pub good: f64,
    /// The measurement's total-event count (or ratio denominator).
    pub total: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_burn_rate() {
        let slo = Objective::good_fraction("availability", 0.99, 300.0, 2.0);
        // 1% bad on a 1% budget: burn exactly 1.0, below the 2.0 alert.
        let eval = slo.evaluate(&Measurement {
            good: 99.0,
            total: 100.0,
        });
        assert!((eval.burn_rate - 1.0).abs() < 1e-9);
        assert!(!eval.alerting);
        // 10% bad: burn 10, alerting.
        let eval = slo.evaluate(&Measurement {
            good: 90.0,
            total: 100.0,
        });
        assert!((eval.burn_rate - 10.0).abs() < 1e-9);
        assert!(eval.alerting);
    }

    #[test]
    fn perfect_service_has_zero_burn() {
        let slo = Objective::good_fraction("availability", 0.999, 300.0, 1.0);
        let eval = slo.evaluate(&Measurement {
            good: 50.0,
            total: 50.0,
        });
        assert_eq!(eval.burn_rate, 0.0);
        assert!(!eval.alerting);
    }

    #[test]
    fn empty_window_never_alerts() {
        let slo = Objective::good_fraction("availability", 0.99, 300.0, 0.0);
        let eval = slo.evaluate(&Measurement {
            good: 0.0,
            total: 0.0,
        });
        assert_eq!(eval.burn_rate, 0.0);
        assert!(
            !eval.alerting,
            "alert_burn 0 must still not fire on an empty window"
        );
    }

    #[test]
    fn max_ratio_burn() {
        let slo = Objective::max_ratio("wal_fsync_ratio", 0.5, 300.0, 1.5);
        // ratio 0.25 on a 0.5 budget: burn 0.5
        let eval = slo.evaluate(&Measurement {
            good: 25.0,
            total: 100.0,
        });
        assert!((eval.burn_rate - 0.5).abs() < 1e-9);
        assert!(!eval.alerting);
        // ratio 1.0: burn 2.0, alerting
        let eval = slo.evaluate(&Measurement {
            good: 100.0,
            total: 100.0,
        });
        assert!((eval.burn_rate - 2.0).abs() < 1e-9);
        assert!(eval.alerting);
    }

    #[test]
    fn good_above_total_clamps_to_zero_bad() {
        let slo = Objective::good_fraction("availability", 0.9, 60.0, 1.0);
        let eval = slo.evaluate(&Measurement {
            good: 101.0,
            total: 100.0,
        });
        assert_eq!(eval.burn_rate, 0.0);
    }
}
