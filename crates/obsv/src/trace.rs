//! Request tracing: spans with timed phases in a bounded ring buffer.
//!
//! A server begins a span per request ([`TraceRecorder::begin`]); code deeper
//! in the stack marks phase boundaries with the free function [`phase`]
//! without needing the span threaded through its signature (the active span
//! stack lives in thread-local storage — correct here because a request is
//! served start-to-finish on one worker thread). When the guard drops, the
//! finished trace lands in the recorder's ring buffer, where
//! [`TraceRecorder::recent_traces`] reads it back, newest last.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One timed phase inside a span.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    pub name: &'static str,
    pub elapsed: Duration,
}

/// A finished request trace.
#[derive(Clone, Debug)]
pub struct Trace {
    pub span_id: u64,
    /// E.g. `"POST /api/query"`.
    pub name: String,
    pub phases: Vec<Phase>,
    pub total: Duration,
    /// Wall-clock completion time (ms since the Unix epoch).
    pub completed_unix_ms: u64,
}

struct ActiveSpan {
    phases: Vec<Phase>,
    last_mark: Instant,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
}

/// Marks the end of the current phase of the innermost active span. A no-op
/// when no span is active (e.g. library code running outside a server).
pub fn phase(name: &'static str) {
    SPAN_STACK.with(|stack| {
        if let Some(span) = stack.borrow_mut().last_mut() {
            let now = Instant::now();
            span.phases.push(Phase {
                name,
                elapsed: now - span.last_mark,
            });
            span.last_mark = now;
        }
    });
}

/// Bounded collector of finished traces.
pub struct TraceRecorder {
    ring: Mutex<VecDeque<Trace>>,
    capacity: usize,
    next_span_id: AtomicU64,
    enabled: AtomicBool,
}

impl TraceRecorder {
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(TraceRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            next_span_id: AtomicU64::new(1),
            enabled: AtomicBool::new(true),
        })
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Starts a span; drop the guard to record the trace. While the guard is
    /// alive, [`phase`] calls on this thread attribute time to it.
    pub fn begin(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard { state: None };
        }
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push(ActiveSpan {
                phases: Vec::with_capacity(4),
                last_mark: started,
            })
        });
        SpanGuard {
            state: Some(SpanState {
                recorder: self.clone(),
                name: name.into(),
                span_id,
                started,
            }),
        }
    }

    /// Finished traces, oldest first, newest last.
    pub fn recent_traces(&self) -> Vec<Trace> {
        self.ring.lock().iter().cloned().collect()
    }

    fn record(&self, trace: Trace) {
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

struct SpanState {
    recorder: Arc<TraceRecorder>,
    name: String,
    span_id: u64,
    started: Instant,
}

/// RAII guard for an active span.
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let active = SPAN_STACK.with(|stack| stack.borrow_mut().pop());
        let Some(active) = active else { return };
        let completed_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        state.recorder.record(Trace {
            span_id: state.span_id,
            name: state.name,
            phases: active.phases,
            total: state.started.elapsed(),
            completed_unix_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_phases_in_order() {
        let recorder = TraceRecorder::new(8);
        {
            let _span = recorder.begin("POST /api/query");
            phase("auth");
            phase("policy_eval");
            phase("store_query");
            phase("serialize");
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 1);
        let names: Vec<&str> = traces[0].phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["auth", "policy_eval", "store_query", "serialize"]);
        assert!(traces[0].total >= traces[0].phases.iter().map(|p| p.elapsed).sum());
        assert_eq!(traces[0].name, "POST /api/query");
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let recorder = TraceRecorder::new(4);
        for i in 0..10 {
            let _span = recorder.begin(format!("req {i}"));
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0].name, "req 6");
        assert_eq!(traces[3].name, "req 9");
        // Span ids keep increasing even as old traces fall off.
        assert!(traces.windows(2).all(|w| w[0].span_id < w[1].span_id));
    }

    #[test]
    fn nested_spans_attribute_phases_to_innermost() {
        let recorder = TraceRecorder::new(8);
        {
            let _outer = recorder.begin("outer");
            phase("outer_before");
            {
                let _inner = recorder.begin("inner");
                phase("inner_work");
            }
            phase("outer_after");
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name, "inner");
        assert_eq!(traces[0].phases.len(), 1);
        let outer_names: Vec<&str> = traces[1].phases.iter().map(|p| p.name).collect();
        assert_eq!(outer_names, ["outer_before", "outer_after"]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = TraceRecorder::new(8);
        recorder.set_enabled(false);
        {
            let _span = recorder.begin("dropped");
            phase("ignored");
        }
        assert!(recorder.recent_traces().is_empty());
    }

    #[test]
    fn orphan_phase_is_a_noop() {
        phase("no active span");
    }
}
