//! Request tracing: spans with timed phases in a bounded ring buffer,
//! linked across processes by a propagated [`TraceContext`].
//!
//! A server begins a span per request ([`TraceRecorder::begin_ctx`], fed
//! from the `X-SensorSafe-Trace` header when present); code deeper in the
//! stack marks phase boundaries with the free function [`phase`] without
//! needing the span threaded through its signature (the active span stack
//! lives in thread-local storage — correct here because a request is served
//! start-to-finish on one worker thread). When the guard drops, the finished
//! trace lands in the recorder's ring buffer, where
//! [`TraceRecorder::recent_traces`] reads it back, newest last.
//!
//! Propagation: every span carries a `trace_id` (constant across the whole
//! request tree) and a `parent_span_id`. [`current_context`] exposes the
//! innermost active span as a context for outbound calls — the net client
//! serializes it into the trace header, so a datastore's call to the broker
//! shows up broker-side as a child of the datastore span. Clients that
//! originate a request tree open an ambient [`context_scope`] instead of a
//! span.
//!
//! Slow-request capture: traces whose total exceeds a configurable
//! threshold ([`TraceRecorder::set_slow_threshold`]) are additionally
//! pinned in a separate, smaller ring (so a flood of fast requests cannot
//! evict the interesting ones), counted in
//! `sensorsafe_slow_requests_total`, and logged as one JSON line on stderr
//! with their trace id and phase breakdown.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How many slow traces are pinned independently of the main ring.
const SLOW_RING_CAPACITY: usize = 64;

/// One timed phase inside a span.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    pub name: &'static str,
    pub elapsed: Duration,
}

/// The cross-process position of a request: which request tree it belongs
/// to and which span is its parent. Serialized into the
/// `X-SensorSafe-Trace` header as `<trace_id>-<parent_span_id>`, both
/// 16-digit lowercase hex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole request tree; identical in every span it
    /// touches, on every server.
    pub trace_id: u64,
    /// The span id of the caller's span (a server span's parent), or a
    /// synthetic client-side id for a tree opened by [`TraceContext::root`].
    pub parent_span_id: u64,
}

impl TraceContext {
    /// A fresh root context for a client originating a request tree: a new
    /// trace id plus a synthetic client-side span id, so every server span
    /// in the tree has a real parent to point at.
    pub fn root() -> TraceContext {
        TraceContext {
            trace_id: next_id(),
            parent_span_id: next_id(),
        }
    }

    /// The `X-SensorSafe-Trace` header value for this context.
    pub fn header_value(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.parent_span_id)
    }

    /// Parses a header value produced by [`TraceContext::header_value`].
    /// Returns `None` for anything malformed (propagation is best-effort;
    /// a bad header must never fail the request).
    pub fn parse(value: &str) -> Option<TraceContext> {
        let (trace, parent) = value.trim().split_once('-')?;
        Some(TraceContext {
            trace_id: u64::from_str_radix(trace, 16).ok()?,
            parent_span_id: u64::from_str_radix(parent, 16).ok()?,
        })
    }
}

/// A finished request trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The request tree this span belongs to.
    pub trace_id: u64,
    pub span_id: u64,
    /// The caller's span id; 0 for a root span with no known caller.
    pub parent_span_id: u64,
    /// E.g. `"POST /api/query"`.
    pub name: String,
    pub phases: Vec<Phase>,
    pub total: Duration,
    /// Wall-clock completion time (ms since the Unix epoch).
    pub completed_unix_ms: u64,
}

struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    phases: Vec<Phase>,
    last_mark: Instant,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<ActiveSpan>> = const { RefCell::new(Vec::new()) };
    static CONTEXT_STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// Span ids come from one process-wide counter seeded from the wall clock,
/// so ids stay strictly increasing within a process (the trace rings rely
/// on that for ordering) and collide across processes only by accident of
/// a shared nanosecond boot time.
fn next_id() -> u64 {
    static NEXT_ID: OnceLock<AtomicU64> = OnceLock::new();
    let counter = NEXT_ID.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // splitmix64 finalizer spreads consecutive boot times across the
        // id space; the low bits stay a plain counter afterwards.
        let mut seed = nanos.wrapping_add(0x9e37_79b9_7f4a_7c15);
        seed = (seed ^ (seed >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        seed = (seed ^ (seed >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        AtomicU64::new((seed ^ (seed >> 31)) | 1)
    });
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Marks the end of the current phase of the innermost active span. A no-op
/// when no span is active (e.g. library code running outside a server).
pub fn phase(name: &'static str) {
    SPAN_STACK.with(|stack| {
        if let Some(span) = stack.borrow_mut().last_mut() {
            let now = Instant::now();
            let elapsed = now - span.last_mark;
            span.phases.push(Phase { name, elapsed });
            span.last_mark = now;
            crate::prof::record_phase(name, elapsed);
        }
    });
}

/// The context an outbound call made *right now* should carry: the
/// innermost active span if any (the callee becomes its child), else the
/// innermost ambient [`context_scope`], else `None`.
pub fn current_context() -> Option<TraceContext> {
    let from_span = SPAN_STACK.with(|stack| {
        stack.borrow().last().map(|span| TraceContext {
            trace_id: span.trace_id,
            parent_span_id: span.span_id,
        })
    });
    from_span.or_else(|| CONTEXT_STACK.with(|stack| stack.borrow().last().copied()))
}

/// RAII guard for an ambient trace context (see [`context_scope`]).
pub struct ContextScope {
    _private: (),
}

impl Drop for ContextScope {
    fn drop(&mut self) {
        CONTEXT_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Installs `ctx` as this thread's ambient trace context: outbound calls
/// made while the guard lives (and outside any active span) propagate it.
/// This is how a *client* — which records no spans itself — stamps a whole
/// multi-server workflow with one trace id.
pub fn context_scope(ctx: TraceContext) -> ContextScope {
    CONTEXT_STACK.with(|stack| stack.borrow_mut().push(ctx));
    ContextScope { _private: () }
}

/// Bounded collector of finished traces.
pub struct TraceRecorder {
    ring: Mutex<VecDeque<Trace>>,
    slow_ring: Mutex<VecDeque<Trace>>,
    capacity: usize,
    enabled: AtomicBool,
    slow_threshold_nanos: AtomicU64,
}

impl TraceRecorder {
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(TraceRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            slow_ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            enabled: AtomicBool::new(true),
            slow_threshold_nanos: AtomicU64::new(0),
        })
    }

    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Requests slower than `threshold` are pinned in the slow ring,
    /// counted, and logged; `None` disables capture (the default).
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map(|d| d.as_nanos().max(1) as u64).unwrap_or(0);
        self.slow_threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Starts a root-or-inherited span: shorthand for
    /// [`TraceRecorder::begin_ctx`] with no explicit context.
    pub fn begin(self: &Arc<Self>, name: impl Into<String>) -> SpanGuard {
        self.begin_ctx(name, None)
    }

    /// Starts a span; drop the guard to record the trace. While the guard is
    /// alive, [`phase`] calls on this thread attribute time to it.
    ///
    /// Parentage: an explicit `ctx` (extracted from an incoming trace
    /// header) wins; otherwise the thread's [`current_context`] (an
    /// enclosing span or ambient scope) is inherited; otherwise the span
    /// roots a fresh trace with `parent_span_id` 0.
    pub fn begin_ctx(
        self: &Arc<Self>,
        name: impl Into<String>,
        ctx: Option<TraceContext>,
    ) -> SpanGuard {
        if !self.enabled.load(Ordering::Relaxed) {
            return SpanGuard { state: None };
        }
        let (trace_id, parent_span_id) = match ctx.or_else(current_context) {
            Some(ctx) => (ctx.trace_id, ctx.parent_span_id),
            None => (next_id(), 0),
        };
        let span_id = next_id();
        let name = name.into();
        // Mirror the span as a profiling frame so the wall-clock sampler
        // attributes this thread's time to the request while it is active.
        let prof = crate::prof::enter(&name);
        let started = Instant::now();
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().push(ActiveSpan {
                trace_id,
                span_id,
                phases: Vec::with_capacity(4),
                last_mark: started,
            })
        });
        SpanGuard {
            state: Some(SpanState {
                recorder: self.clone(),
                name,
                trace_id,
                span_id,
                parent_span_id,
                started,
                _prof: prof,
            }),
        }
    }

    /// Finished traces, oldest first, newest last.
    pub fn recent_traces(&self) -> Vec<Trace> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Traces that exceeded the slow threshold, oldest first, newest last.
    /// Kept separately so fast traffic cannot evict them.
    pub fn recent_slow_traces(&self) -> Vec<Trace> {
        self.slow_ring.lock().iter().cloned().collect()
    }

    fn record(&self, trace: Trace) {
        let threshold = self.slow_threshold_nanos.load(Ordering::Relaxed);
        if threshold > 0 && trace.total.as_nanos() as u64 >= threshold {
            crate::global()
                .counter(
                    "sensorsafe_slow_requests_total",
                    "Requests slower than the recorder's slow threshold.",
                    &[],
                )
                .inc();
            eprintln!("{}", slow_request_json(&trace));
            let mut slow = self.slow_ring.lock();
            if slow.len() == SLOW_RING_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(trace.clone());
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }
}

/// Resolves the effective slow-request threshold: the
/// `SENSORSAFE_SLOW_REQ_MS` environment variable overrides the configured
/// value at startup (a parseable millisecond count; `0` disables capture),
/// anything unset or malformed falls back to `configured`. Lets operators
/// retune capture on a deployed binary without a config change.
pub fn slow_threshold_from_env(configured: Option<Duration>) -> Option<Duration> {
    match std::env::var("SENSORSAFE_SLOW_REQ_MS") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => configured,
        },
        Err(_) => configured,
    }
}

/// One structured log line for a slow request (obsv has no JSON dependency,
/// and the fields — hex ids, static phase names, a route pattern — need
/// only string escaping). Each phase carries its share of the total
/// (`pct`), and `unattributed_ms` is the tail no [`phase`] call claimed —
/// the first place to look when a slow request's phases all look fast.
fn slow_request_json(trace: &Trace) -> String {
    let total_ms = trace.total.as_secs_f64() * 1e3;
    let mut phases = String::new();
    let mut attributed_ms = 0.0;
    for (i, p) in trace.phases.iter().enumerate() {
        if i > 0 {
            phases.push(',');
        }
        let phase_ms = p.elapsed.as_secs_f64() * 1e3;
        attributed_ms += phase_ms;
        let pct = if total_ms > 0.0 {
            (phase_ms / total_ms * 100.0).min(100.0)
        } else {
            0.0
        };
        phases.push_str(&format!(
            "{{\"name\":\"{}\",\"ms\":{:.3},\"pct\":{:.1}}}",
            escape_json(p.name),
            phase_ms,
            pct
        ));
    }
    format!(
        "{{\"slow_request\":{{\"name\":\"{}\",\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_span_id\":\"{:016x}\",\"total_ms\":{:.3},\"completed_unix_ms\":{},\"unattributed_ms\":{:.3},\"phases\":[{}]}}}}",
        escape_json(&trace.name),
        trace.trace_id,
        trace.span_id,
        trace.parent_span_id,
        total_ms,
        trace.completed_unix_ms,
        (total_ms - attributed_ms).max(0.0),
        phases
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct SpanState {
    recorder: Arc<TraceRecorder>,
    name: String,
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
    started: Instant,
    /// Closes the mirrored profiling frame when the span ends.
    _prof: crate::prof::ProfGuard,
}

/// RAII guard for an active span.
pub struct SpanGuard {
    state: Option<SpanState>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let active = SPAN_STACK.with(|stack| stack.borrow_mut().pop());
        let Some(active) = active else { return };
        let completed_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        state.recorder.record(Trace {
            trace_id: state.trace_id,
            span_id: state.span_id,
            parent_span_id: state.parent_span_id,
            name: state.name,
            phases: active.phases,
            total: state.started.elapsed(),
            completed_unix_ms,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_header_value() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_0042_0001,
            parent_span_id: 0x0123_4567_89ab_cdef,
        };
        assert_eq!(TraceContext::parse(&ctx.header_value()), Some(ctx));
        // Surrounding whitespace is tolerated (header values get trimmed
        // unevenly by proxies).
        assert_eq!(
            TraceContext::parse(&format!("  {}\t", ctx.header_value())),
            Some(ctx)
        );
        // Short hex is still valid hex — ids are not zero-padded on parse.
        assert_eq!(
            TraceContext::parse("a-b"),
            Some(TraceContext {
                trace_id: 0xa,
                parent_span_id: 0xb,
            })
        );
    }

    #[test]
    fn parse_rejects_malformed_headers() {
        for bad in [
            "",                                  // empty
            "deadbeef",                          // wrong field count: no separator
            "-",                                 // separator only
            "-deadbeef",                         // empty trace id
            "deadbeef-",                         // empty parent id
            "a-b-c",                             // wrong field count: 3 fields
            "xyz-0123456789abcdef",              // malformed hex (trace)
            "0123456789abcdef-ghij",             // malformed hex (parent)
            "0x12-0x34",                         // hex prefix is not hex
            " 12 34-56",                         // embedded whitespace
            "ffffffffffffffff1-0",               // oversized: 17 digits overflows u64
            "0-fffffffffffffffff",               // oversized parent
            "白鵬翔-0123456789abcdef",           // non-ASCII
            "0123456789abcdef—0123456789abcdef", // em-dash, not a hyphen
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn span_with_unparseable_context_roots_fresh_trace() {
        // The server path: Request::trace_context() yields None for a bad
        // header, and begin_ctx(name, None) must root a brand-new trace
        // rather than erroring or inheriting stale state.
        let recorder = TraceRecorder::new(8);
        {
            let _span = recorder.begin_ctx("GET /healthz".to_string(), None);
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 1);
        assert_ne!(traces[0].trace_id, 0);
        assert_eq!(traces[0].parent_span_id, 0, "root span has no parent");
    }

    #[test]
    fn span_records_phases_in_order() {
        let recorder = TraceRecorder::new(8);
        {
            let _span = recorder.begin("POST /api/query");
            phase("auth");
            phase("policy_eval");
            phase("store_query");
            phase("serialize");
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 1);
        let names: Vec<&str> = traces[0].phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["auth", "policy_eval", "store_query", "serialize"]);
        assert!(traces[0].total >= traces[0].phases.iter().map(|p| p.elapsed).sum());
        assert_eq!(traces[0].name, "POST /api/query");
        // A span begun with no context roots its own trace.
        assert_ne!(traces[0].trace_id, 0);
        assert_eq!(traces[0].parent_span_id, 0);
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let recorder = TraceRecorder::new(4);
        for i in 0..10 {
            let _span = recorder.begin(format!("req {i}"));
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 4);
        assert_eq!(traces[0].name, "req 6");
        assert_eq!(traces[3].name, "req 9");
        // Span ids keep increasing even as old traces fall off.
        assert!(traces.windows(2).all(|w| w[0].span_id < w[1].span_id));
    }

    #[test]
    fn nested_spans_attribute_phases_to_innermost() {
        let recorder = TraceRecorder::new(8);
        {
            let _outer = recorder.begin("outer");
            phase("outer_before");
            {
                let _inner = recorder.begin("inner");
                phase("inner_work");
            }
            phase("outer_after");
        }
        let traces = recorder.recent_traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].name, "inner");
        assert_eq!(traces[0].phases.len(), 1);
        let outer_names: Vec<&str> = traces[1].phases.iter().map(|p| p.name).collect();
        assert_eq!(outer_names, ["outer_before", "outer_after"]);
        // Parent/child structure survives into the flat ring: the inner
        // span points at the outer one and shares its trace.
        let (inner, outer) = (&traces[0], &traces[1]);
        assert_eq!(inner.parent_span_id, outer.span_id);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(outer.parent_span_id, 0);
        assert_ne!(inner.span_id, outer.span_id);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = TraceRecorder::new(8);
        recorder.set_enabled(false);
        {
            let _span = recorder.begin("dropped");
            phase("ignored");
        }
        assert!(recorder.recent_traces().is_empty());
    }

    #[test]
    fn orphan_phase_is_a_noop() {
        phase("no active span");
    }

    #[test]
    fn context_header_roundtrips() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            parent_span_id: 42,
        };
        assert_eq!(ctx.header_value(), "0123456789abcdef-000000000000002a");
        assert_eq!(TraceContext::parse(&ctx.header_value()), Some(ctx));
        assert_eq!(TraceContext::parse(""), None);
        assert_eq!(TraceContext::parse("deadbeef"), None);
        assert_eq!(TraceContext::parse("xyz-123"), None);
        assert_eq!(TraceContext::parse("12-34-56"), None);
    }

    #[test]
    fn explicit_context_sets_trace_and_parent() {
        let recorder = TraceRecorder::new(8);
        let ctx = TraceContext {
            trace_id: 7777,
            parent_span_id: 8888,
        };
        {
            let _span = recorder.begin_ctx("POST /api/sync", Some(ctx));
        }
        let trace = &recorder.recent_traces()[0];
        assert_eq!(trace.trace_id, 7777);
        assert_eq!(trace.parent_span_id, 8888);
        assert_ne!(trace.span_id, 8888);
    }

    #[test]
    fn ambient_scope_feeds_spans_and_outbound_context() {
        assert_eq!(current_context(), None);
        let ctx = TraceContext::root();
        let recorder = TraceRecorder::new(8);
        {
            let _scope = context_scope(ctx);
            // A client thread with no active span propagates the scope.
            assert_eq!(current_context(), Some(ctx));
            {
                let _span = recorder.begin("inside scope");
                // With a span active, outbound calls become its children.
                let outbound = current_context().unwrap();
                assert_eq!(outbound.trace_id, ctx.trace_id);
                assert_ne!(outbound.parent_span_id, ctx.parent_span_id);
            }
        }
        assert_eq!(current_context(), None);
        let trace = &recorder.recent_traces()[0];
        assert_eq!(trace.trace_id, ctx.trace_id);
        assert_eq!(trace.parent_span_id, ctx.parent_span_id);
    }

    #[test]
    fn slow_requests_are_pinned_counted_and_survive_fast_floods() {
        let recorder = TraceRecorder::new(4);
        recorder.set_slow_threshold(Some(Duration::from_millis(1)));
        let before = crate::global()
            .counter(
                "sensorsafe_slow_requests_total",
                "Requests slower than the recorder's slow threshold.",
                &[],
            )
            .get();
        {
            let _span = recorder.begin("GET /slow");
            std::thread::sleep(Duration::from_millis(5));
            phase("sleepy");
        }
        // Fast traffic evicts the slow trace from the main ring...
        for i in 0..10 {
            let _span = recorder.begin(format!("GET /fast/{i}"));
        }
        assert!(recorder
            .recent_traces()
            .iter()
            .all(|t| t.name != "GET /slow"));
        // ...but not from the slow ring, and the counter moved.
        let slow = recorder.recent_slow_traces();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].name, "GET /slow");
        assert_eq!(slow[0].phases[0].name, "sleepy");
        let after = crate::global()
            .counter(
                "sensorsafe_slow_requests_total",
                "Requests slower than the recorder's slow threshold.",
                &[],
            )
            .get();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn slow_request_json_is_well_formed() {
        let trace = Trace {
            trace_id: 0xab,
            span_id: 2,
            parent_span_id: 3,
            name: "GET /\"odd\"".into(),
            phases: vec![Phase {
                name: "auth",
                elapsed: Duration::from_micros(1500),
            }],
            total: Duration::from_millis(12),
            completed_unix_ms: 99,
        };
        let line = slow_request_json(&trace);
        assert!(line.starts_with("{\"slow_request\":{"));
        assert!(line.contains("\"trace_id\":\"00000000000000ab\""));
        assert!(line.contains("\"name\":\"GET /\\\"odd\\\"\""));
        // Phase breakdown carries both absolute time and share of total.
        assert!(line.contains("\"phases\":[{\"name\":\"auth\",\"ms\":1.500,\"pct\":12.5}]"));
        // 12ms total − 1.5ms attributed = 10.5ms unexplained.
        assert!(line.contains("\"unattributed_ms\":10.500"));
    }

    #[test]
    fn slow_threshold_env_override() {
        let configured = Some(Duration::from_millis(250));
        // Unset: configured value passes through.
        std::env::remove_var("SENSORSAFE_SLOW_REQ_MS");
        assert_eq!(slow_threshold_from_env(configured), configured);
        assert_eq!(slow_threshold_from_env(None), None);
        // Set: env wins over config.
        std::env::set_var("SENSORSAFE_SLOW_REQ_MS", "40");
        assert_eq!(
            slow_threshold_from_env(configured),
            Some(Duration::from_millis(40))
        );
        assert_eq!(
            slow_threshold_from_env(None),
            Some(Duration::from_millis(40))
        );
        // Zero disables capture outright.
        std::env::set_var("SENSORSAFE_SLOW_REQ_MS", "0");
        assert_eq!(slow_threshold_from_env(configured), None);
        // Garbage falls back to the configured value.
        std::env::set_var("SENSORSAFE_SLOW_REQ_MS", "soon");
        assert_eq!(slow_threshold_from_env(configured), configured);
        std::env::remove_var("SENSORSAFE_SLOW_REQ_MS");
    }
}
