//! Fixed-capacity time-series retention for scraped fleet metrics.
//!
//! The broker's fleet scraper polls every registered store's `/metrics`
//! and needs to keep *recent history* — enough to compute deltas, rates,
//! and windowed quantiles for SLO burn-rate evaluation — without letting
//! memory grow with uptime or fleet size. This module provides:
//!
//! * [`SeriesRing`] — a fixed-capacity ring buffer of `(time, value)`
//!   samples. All storage is allocated at construction; [`SeriesRing::push`]
//!   never allocates, so the scrape hot path is allocation-free.
//! * [`SeriesTable`] — a bounded map of named series (one ring per
//!   `(store, family)` key). New keys allocate once; keys past the
//!   configured cap are dropped and counted rather than admitted, so a
//!   misbehaving store cannot balloon the broker's retention.
//! * [`histogram_quantile`] — quantile interpolation over windowed
//!   cumulative-bucket increases, the standard way to turn scraped
//!   histogram counters into a latency percentile.
//!
//! Timestamps are plain `f64` seconds on a caller-chosen monotonic clock
//! (the broker uses seconds since service start). Keeping the clock out of
//! this module makes every computation deterministic under test.

use std::collections::BTreeMap;

/// One retained observation: a value at a point in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Seconds on the caller's monotonic clock.
    pub at_secs: f64,
    /// The sampled value (counter reading, gauge level, …).
    pub value: f64,
}

/// A fixed-capacity ring buffer of time-ordered samples.
///
/// Pushing past capacity overwrites the oldest sample. The buffer is
/// fully allocated up front; `push` is allocation-free.
#[derive(Debug)]
pub struct SeriesRing {
    samples: Vec<Sample>,
    head: usize,
    len: usize,
}

impl SeriesRing {
    /// Creates a ring retaining at most `capacity` samples (must be > 0).
    pub fn new(capacity: usize) -> SeriesRing {
        assert!(capacity > 0, "SeriesRing capacity must be positive");
        SeriesRing {
            samples: vec![
                Sample {
                    at_secs: 0.0,
                    value: 0.0
                };
                capacity
            ],
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.samples.len()
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a sample, overwriting the oldest when full. Never allocates.
    pub fn push(&mut self, at_secs: f64, value: f64) {
        let cap = self.samples.len();
        self.samples[self.head] = Sample { at_secs, value };
        self.head = (self.head + 1) % cap;
        if self.len < cap {
            self.len += 1;
        }
    }

    /// Adds `delta` to the latest sample when it sits exactly at
    /// `at_secs`, else pushes a fresh `(at_secs, delta)` sample. This is
    /// the time-*bucketed* update: callers quantize timestamps to a bucket
    /// boundary and every event inside a bucket accumulates into one
    /// sample, so a ring of N samples retains N buckets of history rather
    /// than N raw events.
    pub fn accumulate(&mut self, at_secs: f64, delta: f64) {
        if self.len > 0 {
            let cap = self.samples.len();
            let last = (self.head + cap - 1) % cap;
            if self.samples[last].at_secs == at_secs {
                self.samples[last].value += delta;
                return;
            }
        }
        self.push(at_secs, delta);
    }

    /// Samples in chronological order, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        let cap = self.samples.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.samples[(start + i) % cap])
    }

    /// The most recently pushed sample.
    pub fn latest(&self) -> Option<Sample> {
        if self.len == 0 {
            return None;
        }
        let cap = self.samples.len();
        Some(self.samples[(self.head + cap - 1) % cap])
    }

    /// Samples with `at_secs >= now_secs - window_secs`, oldest first.
    pub fn window(&self, now_secs: f64, window_secs: f64) -> impl Iterator<Item = Sample> + '_ {
        let cutoff = now_secs - window_secs;
        self.iter().filter(move |s| s.at_secs >= cutoff)
    }

    /// Number of samples inside the window.
    pub fn window_count(&self, now_secs: f64, window_secs: f64) -> usize {
        self.window(now_secs, window_secs).count()
    }

    /// Sum of sample values inside the window.
    pub fn window_sum(&self, now_secs: f64, window_secs: f64) -> f64 {
        self.window(now_secs, window_secs).map(|s| s.value).sum()
    }

    /// Mean of sample values inside the window, `None` when empty.
    pub fn window_mean(&self, now_secs: f64, window_secs: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in self.window(now_secs, window_secs) {
            sum += s.value;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Counter increase over the window, tolerant of counter resets.
    ///
    /// Sums positive increments between consecutive samples; a decrease is
    /// treated as a process restart (the counter restarted from zero), so
    /// the new reading counts as the whole increment. Needs ≥ 2 samples in
    /// the window to report anything.
    pub fn delta(&self, now_secs: f64, window_secs: f64) -> Option<f64> {
        let mut prev: Option<Sample> = None;
        let mut total = 0.0;
        let mut pairs = 0usize;
        for s in self.window(now_secs, window_secs) {
            if let Some(p) = prev {
                total += if s.value >= p.value {
                    s.value - p.value
                } else {
                    s.value
                };
                pairs += 1;
            }
            prev = Some(s);
        }
        if pairs == 0 {
            None
        } else {
            Some(total)
        }
    }

    /// Per-second rate of a counter over the window (delta / elapsed).
    pub fn rate(&self, now_secs: f64, window_secs: f64) -> Option<f64> {
        let mut first: Option<Sample> = None;
        let mut last: Option<Sample> = None;
        for s in self.window(now_secs, window_secs) {
            if first.is_none() {
                first = Some(s);
            }
            last = Some(s);
        }
        let (first, last) = (first?, last?);
        let elapsed = last.at_secs - first.at_secs;
        if elapsed <= 0.0 {
            return None;
        }
        Some(self.delta(now_secs, window_secs)? / elapsed)
    }

    /// Windowed quantile of sample *values* (for gauges), `q` in `[0, 1]`.
    ///
    /// `scratch` is the caller-owned sort buffer, reused across
    /// evaluations so the steady state allocates nothing.
    pub fn windowed_quantile(
        &self,
        now_secs: f64,
        window_secs: f64,
        q: f64,
        scratch: &mut Vec<f64>,
    ) -> Option<f64> {
        scratch.clear();
        scratch.extend(self.window(now_secs, window_secs).map(|s| s.value));
        if scratch.is_empty() {
            return None;
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (q.clamp(0.0, 1.0) * (scratch.len() - 1) as f64).round() as usize;
        Some(scratch[rank.min(scratch.len() - 1)])
    }
}

/// Interpolated quantile from windowed histogram-bucket increases.
///
/// `buckets` is `(upper_bound, cumulative_increase)` sorted by bound, one
/// entry per `le` bucket *including* `+Inf` (`f64::INFINITY`). The
/// increases are cumulative, Prometheus-style: each bucket counts every
/// event at or below its bound. Returns `None` when no events landed in
/// the window. Events above the largest finite bound report that bound —
/// the same convention as the in-process histogram snapshot.
pub fn histogram_quantile(buckets: &[(f64, f64)], q: f64) -> Option<f64> {
    let total = buckets.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * total;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0.0;
    let mut largest_finite = 0.0f64;
    for &(bound, _) in buckets {
        if bound.is_finite() {
            largest_finite = largest_finite.max(bound);
        }
    }
    for &(bound, cum) in buckets {
        if cum >= target {
            if !bound.is_finite() {
                return Some(largest_finite);
            }
            let in_bucket = cum - prev_cum;
            if in_bucket <= 0.0 {
                return Some(bound);
            }
            let frac = (target - prev_cum) / in_bucket;
            return Some(prev_bound + (bound - prev_bound) * frac.clamp(0.0, 1.0));
        }
        prev_bound = bound;
        prev_cum = cum;
    }
    Some(largest_finite)
}

/// A bounded collection of named [`SeriesRing`]s.
///
/// Keys are caller-chosen canonical series identifiers (the broker uses
/// `store-addr|family` strings). The first push for a key allocates its
/// ring; once `max_series` distinct keys exist, pushes for *new* keys are
/// dropped and counted, so retention memory is hard-bounded.
#[derive(Debug)]
pub struct SeriesTable {
    ring_capacity: usize,
    max_series: usize,
    series: BTreeMap<String, SeriesRing>,
    dropped: u64,
}

impl SeriesTable {
    /// Creates a table of at most `max_series` rings, each retaining
    /// `ring_capacity` samples.
    pub fn new(ring_capacity: usize, max_series: usize) -> SeriesTable {
        SeriesTable {
            ring_capacity,
            max_series,
            series: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// Pushes a sample into the named series, creating the ring on first
    /// sight. Returns `false` (and counts the drop) when the key is new
    /// but the table is at its series cap.
    pub fn push(&mut self, key: &str, at_secs: f64, value: f64) -> bool {
        if let Some(ring) = self.series.get_mut(key) {
            ring.push(at_secs, value);
            return true;
        }
        if self.series.len() >= self.max_series {
            self.dropped += 1;
            return false;
        }
        let mut ring = SeriesRing::new(self.ring_capacity);
        ring.push(at_secs, value);
        self.series.insert(key.to_string(), ring);
        true
    }

    /// Accumulates `delta` into the named series' bucket at `at_secs`
    /// (see [`SeriesRing::accumulate`]), creating the ring on first sight.
    /// Returns `false` (and counts the drop) when the key is new but the
    /// table is at its series cap.
    pub fn accumulate(&mut self, key: &str, at_secs: f64, delta: f64) -> bool {
        if let Some(ring) = self.series.get_mut(key) {
            ring.accumulate(at_secs, delta);
            return true;
        }
        if self.series.len() >= self.max_series {
            self.dropped += 1;
            return false;
        }
        let mut ring = SeriesRing::new(self.ring_capacity);
        ring.push(at_secs, delta);
        self.series.insert(key.to_string(), ring);
        true
    }

    /// The ring for `key`, if any samples were admitted.
    pub fn get(&self, key: &str) -> Option<&SeriesRing> {
        self.series.get(key)
    }

    /// Iterates `(key, ring)` pairs whose key starts with `prefix`.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a SeriesRing)> + 'a {
        self.series
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, r)| (k.as_str(), r))
    }

    /// Number of distinct series currently retained.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Pushes refused because the series cap was reached.
    pub fn dropped_series_pushes(&self) -> u64 {
        self.dropped
    }

    /// Removes every series whose key starts with `prefix` (used when a
    /// store is deregistered).
    pub fn remove_prefix(&mut self, prefix: &str) {
        self.series.retain(|k, _| !k.starts_with(prefix));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut ring = SeriesRing::new(3);
        for i in 0..5 {
            ring.push(i as f64, (i * 10) as f64);
        }
        let got: Vec<Sample> = ring.iter().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(
            got[0],
            Sample {
                at_secs: 2.0,
                value: 20.0
            }
        );
        assert_eq!(
            got[2],
            Sample {
                at_secs: 4.0,
                value: 40.0
            }
        );
        assert_eq!(ring.latest().unwrap().value, 40.0);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn accumulate_merges_same_bucket_and_advances_on_new_buckets() {
        let mut ring = SeriesRing::new(4);
        ring.accumulate(60.0, 1.0);
        ring.accumulate(60.0, 2.0);
        ring.accumulate(120.0, 5.0);
        let got: Vec<Sample> = ring.iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].value, 3.0);
        assert_eq!(got[1].value, 5.0);
        // Going back in time never merges into an older bucket: a fresh
        // sample is appended (time only moves forward for callers).
        ring.accumulate(60.0, 1.0);
        assert_eq!(ring.iter().count(), 3);

        let mut table = SeriesTable::new(4, 1);
        assert!(table.accumulate("a|x", 60.0, 1.0));
        assert!(table.accumulate("a|x", 60.0, 1.0));
        assert_eq!(table.get("a|x").unwrap().latest().unwrap().value, 2.0);
        // Series cap still applies to new keys.
        assert!(!table.accumulate("b|x", 60.0, 1.0));
        assert_eq!(table.dropped_series_pushes(), 1);
    }

    #[test]
    fn delta_and_rate_over_window() {
        let mut ring = SeriesRing::new(16);
        ring.push(0.0, 100.0); // outside the 10s window at now=12
        ring.push(4.0, 110.0);
        ring.push(8.0, 140.0);
        ring.push(12.0, 150.0);
        assert_eq!(ring.delta(12.0, 10.0), Some(40.0));
        assert!((ring.rate(12.0, 10.0).unwrap() - 5.0).abs() < 1e-9);
        // one sample in window -> no delta
        assert_eq!(ring.delta(12.0, 0.5), None);
    }

    #[test]
    fn delta_survives_counter_reset() {
        let mut ring = SeriesRing::new(8);
        ring.push(0.0, 90.0);
        ring.push(1.0, 100.0);
        ring.push(2.0, 5.0); // process restarted: counter reset to ~0
        ring.push(3.0, 9.0);
        // 10 (0->1) + 5 (reset, count the new reading) + 4 (2->3)
        assert_eq!(ring.delta(3.0, 10.0), Some(19.0));
    }

    #[test]
    fn windowed_quantile_reuses_scratch() {
        let mut ring = SeriesRing::new(8);
        for (i, v) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
            ring.push(i as f64, *v);
        }
        let mut scratch = Vec::new();
        assert_eq!(
            ring.windowed_quantile(4.0, 100.0, 0.5, &mut scratch),
            Some(5.0)
        );
        assert_eq!(
            ring.windowed_quantile(4.0, 100.0, 1.0, &mut scratch),
            Some(9.0)
        );
        assert_eq!(
            ring.windowed_quantile(4.0, 0.5, 0.5, &mut scratch),
            Some(7.0)
        );
        assert_eq!(ring.windowed_quantile(4.0, -1.0, 0.5, &mut scratch), None);
    }

    #[test]
    fn histogram_quantile_interpolates() {
        // 10 events <= 0.01, 30 <= 0.1 (20 in bucket), 40 total (10 above).
        let buckets = [(0.01, 10.0), (0.1, 30.0), (f64::INFINITY, 40.0)];
        let p50 = histogram_quantile(&buckets, 0.5).unwrap();
        assert!(p50 > 0.01 && p50 <= 0.1, "{p50}");
        // p99 lands above the largest finite bound -> reports that bound.
        assert_eq!(histogram_quantile(&buckets, 0.99), Some(0.1));
        assert_eq!(histogram_quantile(&[], 0.5), None);
        assert_eq!(
            histogram_quantile(&[(0.1, 0.0), (f64::INFINITY, 0.0)], 0.5),
            None
        );
    }

    #[test]
    fn table_caps_distinct_series() {
        let mut table = SeriesTable::new(4, 2);
        assert!(table.push("store-1|up", 0.0, 1.0));
        assert!(table.push("store-2|up", 0.0, 1.0));
        assert!(!table.push("store-3|up", 0.0, 1.0));
        // existing keys still accept samples at the cap
        assert!(table.push("store-1|up", 1.0, 0.0));
        assert_eq!(table.series_count(), 2);
        assert_eq!(table.dropped_series_pushes(), 1);
        assert_eq!(table.get("store-1|up").unwrap().len(), 2);
        let keys: Vec<&str> = table.with_prefix("store-1|").map(|(k, _)| k).collect();
        assert_eq!(keys, ["store-1|up"]);
        table.remove_prefix("store-1|");
        assert_eq!(table.series_count(), 1);
    }
}
