//! Sharing-awareness plane: streaming privacy-decision analytics.
//!
//! SensorSafe's end goal is not just *enforcing* privacy rules but keeping
//! contributors aware of what is shared, with whom, and under which rule
//! (the paper's §6 walkthroughs are a contributor inspecting and adjusting
//! their sharing posture). Counters answer "how many", the ledger answers
//! "exactly when" — this module answers *"what does my sharing posture
//! look like"*:
//!
//! * per-contributor rollups of (consumer × outcome) counters,
//! * per-rule hit counts + last-hit timestamps keyed by `rule_epoch`, so
//!   hits attribute to the rule set that was live when they happened (an
//!   epoch bump snapshots the old attribution instead of smearing it),
//! * suppressed-channel totals,
//! * a time-bucketed decision trend per contributor and outcome (reusing
//!   [`crate::timeseries::SeriesTable`]),
//! * derived posture findings: **dead rules** (rules in the current set
//!   that have never matched since their epoch went live) and
//!   **baseline-only flows** (consumers whose every decision carried an
//!   empty `matched_rules` — data shared or denied purely by the default
//!   baseline, a posture worth surfacing to the contributor).
//!
//! The plane is fed from the same [`crate::audit::record_decision`] path
//! that feeds the ledger: the datastore request handler installs an
//! [`awareness_scope`] next to the ledger scope, and every decision updates
//! the live aggregates with *the same record* that is appended to the
//! chain. That shared feed is what makes the numbers **verifiable**:
//! [`AwarenessAggregates::rebuild`] replays any decision-record stream
//! (e.g. a hash-chain-verified `FileLedger`) into a fresh aggregate
//! structure, and [`AwarenessAggregates::encode`] is a canonical byte
//! serialization — live and rebuilt aggregates must be byte-identical, so
//! a contributor (or operator) can check the dashboard against the
//! tamper-evident chain. Everything an aggregate contains is a pure
//! deterministic function of the record stream; live-only metadata (the
//! contributor's *current* rule-set epoch and size, needed for dead-rule
//! findings) lives beside the aggregates in [`AwarenessPlane`], never
//! inside them.

use crate::audit::Outcome;
use crate::global;
use crate::ledger::DecisionRecord;
use crate::timeseries::SeriesTable;
use parking_lot::Mutex;
use sensorsafe_auth::Sha256;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Width of one trend bucket. Decisions inside the same bucket accumulate
/// into one sample, so the trend ring retains `TREND_RING_BUCKETS` buckets
/// of history rather than that many raw events.
pub const TREND_BUCKET_SECS: u64 = 60;

/// Buckets of trend history retained per (contributor, outcome) series.
pub const TREND_RING_BUCKETS: usize = 256;

/// Hard cap on distinct trend series (contributor × outcome keys); new
/// keys past the cap are dropped and counted, exactly like the fleet
/// scraper's retention.
pub const MAX_TREND_SERIES: usize = 4096;

/// Rule-hit attribution epochs retained per contributor. Rule churn bumps
/// the epoch; keeping the newest few snapshots bounds memory while still
/// letting a contributor compare the current rule set's hits against the
/// previous ones. Retention is deterministic (smallest epochs evicted
/// first) so a ledger replay reproduces it exactly.
pub const MAX_EPOCHS_RETAINED: usize = 4;

/// Metric family: enforcement decisions by outcome alone. The existing
/// `sensorsafe_policy_decisions_total` keys on (consumer, decision); this
/// family is the low-cardinality fleet-facing view the broker's scraper
/// aggregates into decisions/sec and denial ratio.
pub const FAMILY_OUTCOMES: &str = "sensorsafe_policy_decision_outcomes_total";

/// Metric family: total rule hits (one per matched rule per decision).
pub const FAMILY_RULE_HITS: &str = "sensorsafe_policy_rule_hits_total";

/// Metric family: decisions that matched no rule at all — the outcome came
/// purely from the default baseline.
pub const FAMILY_BASELINE: &str = "sensorsafe_policy_baseline_decisions_total";

/// Metric family (gauge): rules in current rule sets that have never
/// matched since their epoch went live, summed over contributors.
pub const FAMILY_DEAD_RULES: &str = "sensorsafe_policy_dead_rules";

/// Per-(consumer or contributor) decision counts, split by outcome, plus
/// how many of them were baseline-only (empty `matched_rules`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Decisions released at full fidelity.
    pub allowed: u64,
    /// Decisions released behavior-abstracted.
    pub abstracted: u64,
    /// Decisions refused outright.
    pub denied: u64,
    /// Decisions (of any outcome) that matched no rule.
    pub baseline: u64,
}

impl OutcomeCounts {
    /// Total decisions across all outcomes.
    pub fn total(&self) -> u64 {
        self.allowed + self.abstracted + self.denied
    }

    fn count(&mut self, outcome: Outcome, baseline: bool) {
        match outcome {
            Outcome::Allowed => self.allowed += 1,
            Outcome::Abstracted => self.abstracted += 1,
            Outcome::Denied => self.denied += 1,
        }
        if baseline {
            self.baseline += 1;
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.allowed.to_le_bytes());
        out.extend_from_slice(&self.abstracted.to_le_bytes());
        out.extend_from_slice(&self.denied.to_le_bytes());
        out.extend_from_slice(&self.baseline.to_le_bytes());
    }
}

/// Hit statistics for one rule under one attribution epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleHit {
    /// Decisions this rule matched.
    pub hits: u64,
    /// `unix_ms` of the newest decision it matched.
    pub last_unix_ms: u64,
}

/// Everything the plane knows about one contributor's decision stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContributorAggregates {
    /// Decision counts per consumer.
    pub consumers: BTreeMap<String, OutcomeCounts>,
    /// Rule hits keyed by (rule epoch → rule index). Only the newest
    /// [`MAX_EPOCHS_RETAINED`] epochs are retained.
    pub rule_hits: BTreeMap<u64, BTreeMap<u32, RuleHit>>,
    /// Decision counts across all consumers.
    pub outcomes: OutcomeCounts,
    /// Channels withheld by the dependency-closure rule, totalled.
    pub suppressed_channels: u64,
    /// `unix_ms` of the newest decision observed.
    pub last_unix_ms: u64,
}

/// The deterministic aggregate state: a pure function of the decision
/// record stream (record `seq` is ignored, so live observations — whose
/// seq is assigned later by the ledger — and replayed ledger records
/// aggregate identically).
#[derive(Debug)]
pub struct AwarenessAggregates {
    contributors: BTreeMap<String, ContributorAggregates>,
    trend: SeriesTable,
    total: OutcomeCounts,
}

impl Default for AwarenessAggregates {
    fn default() -> AwarenessAggregates {
        AwarenessAggregates::new()
    }
}

impl Clone for AwarenessAggregates {
    fn clone(&self) -> AwarenessAggregates {
        let mut copy = AwarenessAggregates::new();
        copy.contributors = self.contributors.clone();
        copy.total = self.total;
        for (key, ring) in self.trend.with_prefix("") {
            for sample in ring.iter() {
                copy.trend.push(key, sample.at_secs, sample.value);
            }
        }
        copy
    }
}

impl PartialEq for AwarenessAggregates {
    /// Byte-identical equality: two aggregates are equal exactly when
    /// their canonical encodings are.
    fn eq(&self, other: &AwarenessAggregates) -> bool {
        self.encode() == other.encode()
    }
}

impl AwarenessAggregates {
    /// An empty aggregate state.
    pub fn new() -> AwarenessAggregates {
        AwarenessAggregates {
            contributors: BTreeMap::new(),
            trend: SeriesTable::new(TREND_RING_BUCKETS, MAX_TREND_SERIES),
            total: OutcomeCounts::default(),
        }
    }

    /// Folds one decision into the aggregates. Every update here must be
    /// a deterministic function of the record alone (never the clock, and
    /// never `record.seq`) so [`AwarenessAggregates::rebuild`] from the
    /// ledger reproduces the live state byte for byte.
    pub fn observe(&mut self, record: &DecisionRecord) {
        let baseline = record.matched_rules.is_empty();
        self.total.count(record.outcome, baseline);
        let c = self
            .contributors
            .entry(record.contributor.clone())
            .or_default();
        c.outcomes.count(record.outcome, baseline);
        c.suppressed_channels += record.suppressed_channels;
        c.last_unix_ms = c.last_unix_ms.max(record.unix_ms);
        c.consumers
            .entry(record.consumer.clone())
            .or_default()
            .count(record.outcome, baseline);
        for &rule in &record.matched_rules {
            let hit = c
                .rule_hits
                .entry(record.rule_epoch)
                .or_default()
                .entry(rule)
                .or_default();
            hit.hits += 1;
            hit.last_unix_ms = hit.last_unix_ms.max(record.unix_ms);
        }
        while c.rule_hits.len() > MAX_EPOCHS_RETAINED {
            c.rule_hits.pop_first();
        }
        let bucket = record.unix_ms / 1000 / TREND_BUCKET_SECS * TREND_BUCKET_SECS;
        let key = format!("{}|{}", record.contributor, record.outcome.as_str());
        self.trend.accumulate(&key, bucket as f64, 1.0);
    }

    /// Replays a decision-record stream (typically the verified contents
    /// of a `FileLedger`) into a fresh aggregate state.
    pub fn rebuild<'a>(records: impl IntoIterator<Item = &'a DecisionRecord>) -> Self {
        let mut aggregates = AwarenessAggregates::new();
        for record in records {
            aggregates.observe(record);
        }
        aggregates
    }

    /// The rollup for one contributor, if any decision mentioned them.
    pub fn contributor(&self, name: &str) -> Option<&ContributorAggregates> {
        self.contributors.get(name)
    }

    /// Decision counts across every contributor.
    pub fn total(&self) -> OutcomeCounts {
        self.total
    }

    /// The per-(contributor, outcome) trend table.
    pub fn trend(&self) -> &SeriesTable {
        &self.trend
    }

    /// Canonical byte serialization covering every aggregate field, in a
    /// fixed order. Used for byte-identical live-vs-replay comparison and
    /// hashed into [`AwarenessAggregates::digest`].
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(256);
        self.total.encode_into(&mut out);
        out.extend_from_slice(&(self.contributors.len() as u64).to_le_bytes());
        for (name, c) in &self.contributors {
            put_str(&mut out, name);
            c.outcomes.encode_into(&mut out);
            out.extend_from_slice(&c.suppressed_channels.to_le_bytes());
            out.extend_from_slice(&c.last_unix_ms.to_le_bytes());
            out.extend_from_slice(&(c.consumers.len() as u64).to_le_bytes());
            for (consumer, counts) in &c.consumers {
                put_str(&mut out, consumer);
                counts.encode_into(&mut out);
            }
            out.extend_from_slice(&(c.rule_hits.len() as u64).to_le_bytes());
            for (epoch, rules) in &c.rule_hits {
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&(rules.len() as u64).to_le_bytes());
                for (rule, hit) in rules {
                    out.extend_from_slice(&rule.to_le_bytes());
                    out.extend_from_slice(&hit.hits.to_le_bytes());
                    out.extend_from_slice(&hit.last_unix_ms.to_le_bytes());
                }
            }
        }
        let series: Vec<_> = self.trend.with_prefix("").collect();
        out.extend_from_slice(&(series.len() as u64).to_le_bytes());
        for (key, ring) in series {
            put_str(&mut out, key);
            out.extend_from_slice(&(ring.len() as u64).to_le_bytes());
            for sample in ring.iter() {
                out.extend_from_slice(&sample.at_secs.to_bits().to_le_bytes());
                out.extend_from_slice(&sample.value.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// SHA-256 of the canonical encoding — a compact fingerprint two
    /// parties can compare without shipping the aggregates themselves.
    pub fn digest(&self) -> [u8; 32] {
        let mut hasher = Sha256::new();
        hasher.update(&self.encode());
        hasher.finalize()
    }
}

/// Live-only metadata about a contributor's *current* rule set, reported
/// by the datastore whenever rules change. Not part of the aggregates
/// (the ledger does not record rule documents), but required to derive
/// dead rules: a rule index is dead when the current epoch's hit set
/// doesn't contain it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RuleSetMeta {
    /// The rule-set epoch currently live for the contributor.
    pub epoch: u64,
    /// Rules in that set.
    pub rule_count: u32,
}

struct PlaneState {
    aggregates: AwarenessAggregates,
    rules: BTreeMap<String, RuleSetMeta>,
    dead: BTreeMap<String, u64>,
    dead_total: u64,
}

impl PlaneState {
    /// Recomputes the contributor's dead-rule count after an observation
    /// or rule change, keeping the plane-wide total incremental.
    fn refresh_dead(&mut self, contributor: &str) {
        let fresh = match self.rules.get(contributor) {
            None => 0,
            Some(meta) => {
                let hit = self
                    .aggregates
                    .contributor(contributor)
                    .and_then(|c| c.rule_hits.get(&meta.epoch))
                    .map(|rules| rules.keys().filter(|&&r| r < meta.rule_count).count() as u64)
                    .unwrap_or(0);
                u64::from(meta.rule_count).saturating_sub(hit)
            }
        };
        let prev = if fresh == 0 {
            self.dead.remove(contributor).unwrap_or(0)
        } else {
            let slot = self.dead.entry(contributor.to_string()).or_insert(0);
            std::mem::replace(slot, fresh)
        };
        self.dead_total = self.dead_total - prev + fresh;
    }
}

/// One consumer's flow in a contributor's summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsumerFlow {
    /// The consumer's registered name (exact, not cardinality-capped).
    pub consumer: String,
    /// Their decision counts.
    pub counts: OutcomeCounts,
    /// True when *every* decision for this consumer was baseline-only —
    /// no rule the contributor wrote has ever governed this flow.
    pub baseline_only: bool,
}

/// One rule's hit row in a contributor's summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleHitRow {
    /// Attribution epoch the hits belong to.
    pub epoch: u64,
    /// Rule index within that epoch's rule document.
    pub rule: u32,
    /// Decisions the rule matched.
    pub hits: u64,
    /// `unix_ms` of the newest match.
    pub last_unix_ms: u64,
    /// Whether the row belongs to the currently live epoch.
    pub current: bool,
}

/// One bucket of the contributor's recent decision trend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrendPoint {
    /// Bucket start, seconds since the Unix epoch.
    pub bucket_unix_secs: u64,
    /// Decisions allowed in the bucket.
    pub allowed: u64,
    /// Decisions abstracted in the bucket.
    pub abstracted: u64,
    /// Decisions denied in the bucket.
    pub denied: u64,
}

/// Everything `/api/privacy/summary` and `/ui/privacy` present for one
/// contributor, assembled under a single lock acquisition.
#[derive(Clone, Debug, Default)]
pub struct ContributorSummary {
    /// The contributor's decision counts across all consumers.
    pub counts: OutcomeCounts,
    /// Channels withheld by the dependency-closure rule, totalled.
    pub suppressed_channels: u64,
    /// `unix_ms` of the newest decision observed.
    pub last_unix_ms: u64,
    /// The currently live rule-set epoch (0 when never reported).
    pub rule_epoch: u64,
    /// Rules in the current set.
    pub rule_count: u32,
    /// Per-consumer flows, busiest first.
    pub consumers: Vec<ConsumerFlow>,
    /// Rule hit rows, newest epoch first, rule index ascending.
    pub rule_hits: Vec<RuleHitRow>,
    /// Indices of current-epoch rules that have never matched.
    pub dead_rules: Vec<u32>,
    /// Consumers whose every decision was baseline-only.
    pub baseline_only_consumers: Vec<String>,
    /// Recent decision trend, oldest bucket first.
    pub trend: Vec<TrendPoint>,
    /// Hex SHA-256 of the plane's full canonical aggregate encoding —
    /// what an offline ledger replay must reproduce.
    pub digest: String,
}

/// The live analytics plane: deterministic aggregates plus the live-only
/// rule-set metadata needed for posture findings, behind one mutex. A
/// datastore owns one plane and feeds it through [`awareness_scope`] +
/// [`crate::audit::record_decision`].
pub struct AwarenessPlane {
    enabled: AtomicBool,
    state: Mutex<PlaneState>,
}

impl Default for AwarenessPlane {
    fn default() -> AwarenessPlane {
        AwarenessPlane::new()
    }
}

impl AwarenessPlane {
    /// An empty, enabled plane.
    pub fn new() -> AwarenessPlane {
        AwarenessPlane {
            enabled: AtomicBool::new(true),
            state: Mutex::new(PlaneState {
                aggregates: AwarenessAggregates::new(),
                rules: BTreeMap::new(),
                dead: BTreeMap::new(),
                dead_total: 0,
            }),
        }
    }

    /// Kill switch (the O4 overhead experiment's "aggregator off" arm):
    /// a disabled plane ignores observations entirely.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether observations are currently aggregated.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Folds one decision into the live aggregates and bumps the
    /// fleet-facing metric families.
    pub fn observe(&self, record: &DecisionRecord) {
        if !self.enabled() {
            return;
        }
        {
            let mut state = self.state.lock();
            state.aggregates.observe(record);
            state.refresh_dead(&record.contributor);
            let dead_total = state.dead_total;
            drop(state);
            dead_rules_gauge().set(dead_total as i64);
        }
        global()
            .counter(
                FAMILY_OUTCOMES,
                "Policy enforcement decisions by outcome.",
                &[("outcome", record.outcome.as_str())],
            )
            .inc();
        if record.matched_rules.is_empty() {
            global()
                .counter(
                    FAMILY_BASELINE,
                    "Enforcement decisions that matched no rule (outcome from the default baseline).",
                    &[],
                )
                .inc();
        } else {
            global()
                .counter(
                    FAMILY_RULE_HITS,
                    "Rule hits across enforcement decisions (one per matched rule).",
                    &[],
                )
                .add(record.matched_rules.len() as u64);
        }
    }

    /// Reports that `contributor`'s rule set changed: `epoch` is now live
    /// with `rule_count` rules. Called by the datastore wherever rules are
    /// installed (API, web UI, replication adoption, journal recovery).
    pub fn note_rule_set(&self, contributor: &str, epoch: u64, rule_count: usize) {
        let mut state = self.state.lock();
        state.rules.insert(
            contributor.to_string(),
            RuleSetMeta {
                epoch,
                rule_count: rule_count.min(u32::MAX as usize) as u32,
            },
        );
        state.refresh_dead(contributor);
        let dead_total = state.dead_total;
        drop(state);
        dead_rules_gauge().set(dead_total as i64);
    }

    /// The live rule-set metadata for `contributor`, if ever reported.
    pub fn rule_meta(&self, contributor: &str) -> Option<RuleSetMeta> {
        self.state.lock().rules.get(contributor).copied()
    }

    /// Dead rules across every contributor (the gauge's current value).
    pub fn dead_rule_total(&self) -> u64 {
        self.state.lock().dead_total
    }

    /// A clone of the current aggregate state, for replay comparison.
    pub fn aggregates(&self) -> AwarenessAggregates {
        self.state.lock().aggregates.clone()
    }

    /// SHA-256 fingerprint of the live aggregates (see
    /// [`AwarenessAggregates::digest`]).
    pub fn digest(&self) -> [u8; 32] {
        self.state.lock().aggregates.digest()
    }

    /// Assembles the owner-facing summary for one contributor. Returns a
    /// zeroed summary (with live rule metadata and the plane digest) when
    /// no decision has mentioned them yet.
    pub fn contributor_summary(&self, contributor: &str) -> ContributorSummary {
        let state = self.state.lock();
        let meta = state.rules.get(contributor).copied().unwrap_or_default();
        let mut summary = ContributorSummary {
            rule_epoch: meta.epoch,
            rule_count: meta.rule_count,
            digest: hex(&state.aggregates.digest()),
            ..ContributorSummary::default()
        };
        if meta.rule_count > 0 {
            // Until a hit proves otherwise, every current rule is dead.
            summary.dead_rules = (0..meta.rule_count).collect();
        }
        let Some(c) = state.aggregates.contributor(contributor) else {
            return summary;
        };
        summary.counts = c.outcomes;
        summary.suppressed_channels = c.suppressed_channels;
        summary.last_unix_ms = c.last_unix_ms;
        summary.consumers = c
            .consumers
            .iter()
            .map(|(name, counts)| ConsumerFlow {
                consumer: name.clone(),
                counts: *counts,
                baseline_only: counts.total() > 0 && counts.baseline == counts.total(),
            })
            .collect();
        summary.consumers.sort_by(|a, b| {
            b.counts
                .total()
                .cmp(&a.counts.total())
                .then(a.consumer.cmp(&b.consumer))
        });
        summary.baseline_only_consumers = summary
            .consumers
            .iter()
            .filter(|f| f.baseline_only)
            .map(|f| f.consumer.clone())
            .collect();
        for (&epoch, rules) in c.rule_hits.iter().rev() {
            for (&rule, hit) in rules {
                summary.rule_hits.push(RuleHitRow {
                    epoch,
                    rule,
                    hits: hit.hits,
                    last_unix_ms: hit.last_unix_ms,
                    current: epoch == meta.epoch,
                });
            }
        }
        let current_hits = c.rule_hits.get(&meta.epoch);
        summary.dead_rules = (0..meta.rule_count)
            .filter(|rule| current_hits.is_none_or(|hits| !hits.contains_key(rule)))
            .collect();
        let mut buckets: BTreeMap<u64, TrendPoint> = BTreeMap::new();
        for outcome in [Outcome::Allowed, Outcome::Abstracted, Outcome::Denied] {
            let key = format!("{}|{}", contributor, outcome.as_str());
            let Some(ring) = state.aggregates.trend().get(&key) else {
                continue;
            };
            for sample in ring.iter() {
                let point = buckets
                    .entry(sample.at_secs as u64)
                    .or_insert_with(|| TrendPoint {
                        bucket_unix_secs: sample.at_secs as u64,
                        ..TrendPoint::default()
                    });
                match outcome {
                    Outcome::Allowed => point.allowed += sample.value as u64,
                    Outcome::Abstracted => point.abstracted += sample.value as u64,
                    Outcome::Denied => point.denied += sample.value as u64,
                }
            }
        }
        summary.trend = buckets.into_values().collect();
        summary
    }
}

/// Lower-hex rendering of a digest.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn dead_rules_gauge() -> Arc<crate::Gauge> {
    global().gauge(
        FAMILY_DEAD_RULES,
        "Current-epoch rules that have never matched a decision, across contributors.",
        &[],
    )
}

thread_local! {
    static CURRENT_AWARENESS: RefCell<Vec<(Arc<AwarenessPlane>, String, u64)>> =
        const { RefCell::new(Vec::new()) };
}

/// RAII guard detaching the awareness scope on drop.
pub struct AwarenessScope {
    _private: (),
}

impl Drop for AwarenessScope {
    fn drop(&mut self) {
        CURRENT_AWARENESS.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Routes decisions recorded on this thread into `plane`, attributed to
/// `contributor` under their currently live `rule_epoch`. Installed by the
/// datastore next to the ledger scope so the live aggregates and the
/// hash-chained ledger see the same stream. Scopes nest; the innermost
/// wins.
pub fn awareness_scope(
    plane: Arc<AwarenessPlane>,
    contributor: impl Into<String>,
    rule_epoch: u64,
) -> AwarenessScope {
    CURRENT_AWARENESS.with(|stack| {
        stack
            .borrow_mut()
            .push((plane, contributor.into(), rule_epoch))
    });
    AwarenessScope { _private: () }
}

/// The innermost awareness scope on this thread, if any.
pub(crate) fn current_scope() -> Option<(Arc<AwarenessPlane>, String, u64)> {
    CURRENT_AWARENESS.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        contributor: &str,
        consumer: &str,
        outcome: Outcome,
        matched: &[u32],
        epoch: u64,
        unix_ms: u64,
    ) -> DecisionRecord {
        DecisionRecord {
            seq: 0,
            unix_ms,
            trace_id: 0,
            rule_epoch: epoch,
            contributor: contributor.into(),
            consumer: consumer.into(),
            matched_rules: matched.to_vec(),
            outcome,
            suppressed_channels: if outcome == Outcome::Abstracted { 1 } else { 0 },
        }
    }

    #[test]
    fn live_and_rebuilt_aggregates_are_byte_identical() {
        let plane = AwarenessPlane::new();
        let records = vec![
            record("alice", "doctor", Outcome::Allowed, &[0], 1, 60_000),
            record("alice", "doctor", Outcome::Abstracted, &[1, 2], 1, 61_000),
            record("alice", "insurer", Outcome::Denied, &[], 1, 120_500),
            record("bob", "doctor", Outcome::Allowed, &[], 3, 180_000),
        ];
        for (i, r) in records.iter().enumerate() {
            // Live observations carry seq 0 (the ledger assigns seq on
            // append); replayed records carry the real seq. Equality must
            // hold regardless.
            let mut live = r.clone();
            live.seq = 0;
            plane.observe(&live);
            let _ = i;
        }
        let mut replayed = records.clone();
        for (i, r) in replayed.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let rebuilt = AwarenessAggregates::rebuild(replayed.iter());
        assert_eq!(plane.aggregates(), rebuilt);
        assert_eq!(plane.digest(), rebuilt.digest());
        assert_eq!(plane.aggregates().encode(), rebuilt.encode());
    }

    #[test]
    fn summary_surfaces_flows_rules_and_trend() {
        let plane = AwarenessPlane::new();
        plane.note_rule_set("alice", 1, 3);
        plane.observe(&record(
            "alice",
            "doctor",
            Outcome::Allowed,
            &[0],
            1,
            60_000,
        ));
        plane.observe(&record(
            "alice",
            "doctor",
            Outcome::Allowed,
            &[0],
            1,
            60_500,
        ));
        plane.observe(&record(
            "alice",
            "insurer",
            Outcome::Denied,
            &[],
            1,
            121_000,
        ));
        let summary = plane.contributor_summary("alice");
        assert_eq!(summary.counts.total(), 3);
        assert_eq!(summary.counts.allowed, 2);
        assert_eq!(summary.counts.denied, 1);
        assert_eq!(summary.rule_epoch, 1);
        assert_eq!(summary.rule_count, 3);
        // Busiest consumer first.
        assert_eq!(summary.consumers[0].consumer, "doctor");
        assert!(!summary.consumers[0].baseline_only);
        // The insurer flow never matched a rule: baseline-only.
        assert_eq!(summary.baseline_only_consumers, vec!["insurer".to_string()]);
        // Rule 0 hit twice; rules 1 and 2 are dead.
        assert_eq!(summary.dead_rules, vec![1, 2]);
        assert_eq!(summary.rule_hits.len(), 1);
        assert_eq!(summary.rule_hits[0].rule, 0);
        assert_eq!(summary.rule_hits[0].hits, 2);
        assert_eq!(summary.rule_hits[0].last_unix_ms, 60_500);
        assert!(summary.rule_hits[0].current);
        assert_eq!(plane.dead_rule_total(), 2);
        // Two one-minute buckets: (allowed=2) then (denied=1).
        assert_eq!(summary.trend.len(), 2);
        assert_eq!(summary.trend[0].bucket_unix_secs, 60);
        assert_eq!(summary.trend[0].allowed, 2);
        assert_eq!(summary.trend[1].bucket_unix_secs, 120);
        assert_eq!(summary.trend[1].denied, 1);
    }

    #[test]
    fn epoch_bump_snapshots_old_attribution() {
        let plane = AwarenessPlane::new();
        plane.note_rule_set("alice", 1, 2);
        plane.observe(&record("alice", "doctor", Outcome::Allowed, &[0], 1, 1_000));
        plane.note_rule_set("alice", 2, 2);
        // After the bump, old hits no longer count for the new epoch:
        // both rules are dead again.
        assert_eq!(plane.contributor_summary("alice").dead_rules, vec![0, 1]);
        plane.observe(&record("alice", "doctor", Outcome::Allowed, &[1], 2, 2_000));
        let summary = plane.contributor_summary("alice");
        assert_eq!(summary.dead_rules, vec![0]);
        // Both attributions are visible, newest epoch first.
        assert_eq!(summary.rule_hits.len(), 2);
        assert_eq!(
            (summary.rule_hits[0].epoch, summary.rule_hits[0].rule),
            (2, 1)
        );
        assert!(summary.rule_hits[0].current);
        assert_eq!(
            (summary.rule_hits[1].epoch, summary.rule_hits[1].rule),
            (1, 0)
        );
        assert!(!summary.rule_hits[1].current);
    }

    #[test]
    fn epoch_retention_is_bounded_and_deterministic() {
        let mut a = AwarenessAggregates::new();
        let mut b = AwarenessAggregates::new();
        for epoch in 1..=(MAX_EPOCHS_RETAINED as u64 + 3) {
            let r = record(
                "alice",
                "doctor",
                Outcome::Allowed,
                &[0],
                epoch,
                epoch * 1000,
            );
            a.observe(&r);
            b.observe(&r);
        }
        let kept = &a.contributor("alice").unwrap().rule_hits;
        assert_eq!(kept.len(), MAX_EPOCHS_RETAINED);
        // The newest epochs survive.
        assert!(kept.contains_key(&(MAX_EPOCHS_RETAINED as u64 + 3)));
        assert!(!kept.contains_key(&1));
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_plane_ignores_observations() {
        let plane = AwarenessPlane::new();
        plane.set_enabled(false);
        plane.observe(&record("alice", "doctor", Outcome::Allowed, &[0], 1, 1_000));
        assert_eq!(plane.aggregates().total().total(), 0);
        plane.set_enabled(true);
        plane.observe(&record("alice", "doctor", Outcome::Allowed, &[0], 1, 1_000));
        assert_eq!(plane.aggregates().total().total(), 1);
    }

    #[test]
    fn scoped_decisions_feed_plane_and_ledger_identically() {
        use crate::audit::{consumer_scope, ledger_scope, record_decision};
        use crate::ledger::{AuditLedger, MemoryLedger};

        let plane = Arc::new(AwarenessPlane::new());
        let ledger = Arc::new(MemoryLedger::new());
        plane.note_rule_set("alice", 7, 2);
        {
            let _ledger = ledger_scope(ledger.clone() as Arc<dyn AuditLedger>, "alice");
            let _aware = awareness_scope(plane.clone(), "alice", 7);
            let _consumer = consumer_scope("awareness-scope-consumer");
            record_decision(Outcome::Allowed, 0, &[0]);
            record_decision(Outcome::Denied, 0, &[]);
        }
        let records = ledger.recent(usize::MAX);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].rule_epoch, 7);
        let rebuilt = AwarenessAggregates::rebuild(records.iter());
        assert_eq!(plane.aggregates(), rebuilt);
        assert_eq!(plane.digest(), rebuilt.digest());
        let summary = plane.contributor_summary("alice");
        assert_eq!(summary.counts.allowed, 1);
        assert_eq!(summary.counts.denied, 1);
        assert_eq!(summary.counts.baseline, 1);
        assert_eq!(summary.dead_rules, vec![1]);
    }
}
