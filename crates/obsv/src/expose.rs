//! Prometheus text-format exposition (version 0.0.4).
//!
//! Families are emitted in name order, series in sorted-label order, so the
//! output is deterministic — the broker's rule-mirror takes the same
//! canonical-form stance and it makes scrape diffs trivial in tests.

use crate::metrics::{LabelSet, Registry};
use std::fmt::Write;

/// Escapes a HELP string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn write_labels(out: &mut String, labels: &LabelSet, extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

/// Formats a bucket bound the way Prometheus clients conventionally do.
fn format_bound(b: f64) -> String {
    format!("{b}")
}

pub fn encode(registry: &Registry) -> String {
    let inner = registry.inner.read();
    let mut out = String::new();

    for (name, family) in &inner.counters {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, counter) in &family.series {
            out.push_str(name);
            write_labels(&mut out, labels, None);
            let _ = writeln!(out, " {}", counter.get());
        }
    }

    for (name, family) in &inner.gauges {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (labels, gauge) in &family.series {
            out.push_str(name);
            write_labels(&mut out, labels, None);
            let _ = writeln!(out, " {}", gauge.get());
        }
    }

    for (name, family) in &inner.histograms {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (labels, histogram) in &family.series {
            let snap = histogram.snapshot();
            let mut cumulative = 0u64;
            for (i, bound) in snap.bounds.iter().enumerate() {
                cumulative += snap.counts[i];
                let _ = write!(out, "{name}_bucket");
                write_labels(&mut out, labels, Some(("le", &format_bound(*bound))));
                let _ = writeln!(out, " {cumulative}");
            }
            cumulative += snap.counts[snap.bounds.len()];
            let _ = write!(out, "{name}_bucket");
            write_labels(&mut out, labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {cumulative}");
            let _ = write!(out, "{name}_sum");
            write_labels(&mut out, labels, None);
            let _ = writeln!(out, " {}", snap.sum());
            let _ = write!(out, "{name}_count");
            write_labels(&mut out, labels, None);
            let _ = writeln!(out, " {cumulative}");
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_exposition_shape() {
        let registry = Registry::new();
        registry
            .counter("requests_total", "Requests served.", &[("code", "200")])
            .add(3);
        registry
            .counter("requests_total", "Requests served.", &[("code", "404")])
            .inc();
        let text = registry.encode();
        assert!(text.contains("# HELP requests_total Requests served.\n"));
        assert!(text.contains("# TYPE requests_total counter\n"));
        assert!(text.contains("requests_total{code=\"200\"} 3\n"));
        assert!(text.contains("requests_total{code=\"404\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter(
                "odd_total",
                "Help with \\ and\nnewline.",
                &[("who", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.encode();
        assert!(
            text.contains("# HELP odd_total Help with \\\\ and\\nnewline.\n"),
            "{text}"
        );
        assert!(
            text.contains("odd_total{who=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn labels_are_sorted_by_key() {
        let registry = Registry::new();
        registry
            .counter("s_total", "s", &[("zeta", "1"), ("alpha", "2")])
            .inc();
        let text = registry.encode();
        assert!(
            text.contains("s_total{alpha=\"2\",zeta=\"1\"} 1\n"),
            "labels must be emitted in sorted key order: {text}"
        );
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let registry = Registry::new();
        let hist = registry.histogram("lat_seconds", "Latency.", &[], Some(&[0.01, 0.1]));
        hist.observe_secs(0.005);
        hist.observe_secs(0.005);
        hist.observe_secs(0.05);
        hist.observe_secs(5.0);
        let text = registry.encode();
        assert!(text.contains("# TYPE lat_seconds histogram\n"));
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.01\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"0.1\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("lat_seconds_bucket{le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("lat_seconds_count 4\n"), "{text}");
    }

    #[test]
    fn families_emit_in_name_order() {
        let registry = Registry::new();
        registry.counter("zz_total", "z", &[]).inc();
        registry.counter("aa_total", "a", &[]).inc();
        let text = registry.encode();
        let a = text.find("aa_total").unwrap();
        let z = text.find("zz_total").unwrap();
        assert!(a < z);
    }
}
