//! Privacy-audit counters and the bridge into the durable ledger.
//!
//! SensorSafe's accountability story needs more than logs: contributors
//! should be able to see, per consumer, how many requests were served as-is,
//! served abstracted, or denied, and how often the dependency-closure rule
//! suppressed extra channels beyond what the consumer asked for. Those
//! counts are emitted from `policy::enforce`, which has no idea which
//! consumer triggered it — the datastore request handler knows. The bridge
//! is a thread-local consumer scope: the handler wraps enforcement in
//! [`consumer_scope`], and [`record_decision`] picks the name up from
//! thread-local storage (requests are served start-to-finish on one worker
//! thread, so this is sound).
//!
//! The same bridge carries the durable record: when the handler also
//! installs a [`ledger_scope`], every decision is appended to that
//! contributor's [`AuditLedger`] with the consumer, matched rule indices,
//! and the request's trace id; the scope's drop syncs the ledger so the
//! response never outruns its audit trail.
//!
//! Consumer names are attacker-influenced label values (anyone the broker
//! registers), so the counter families cap distinct consumer labels at
//! [`MAX_CONSUMER_LABELS`] and fold the overflow into `"__other__"` —
//! the ledger keeps exact names, the metrics keep bounded cardinality.

use crate::global;
use crate::ledger::{AuditLedger, DecisionRecord};
use crate::trace;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

thread_local! {
    static CURRENT_CONSUMER: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    static CURRENT_LEDGER: RefCell<Vec<(Arc<dyn AuditLedger>, String)>> =
        RefCell::new(Vec::new());
}

/// Most distinct `consumer` label values any one metric family will emit;
/// consumers beyond this are folded into `consumer="__other__"`.
pub const MAX_CONSUMER_LABELS: usize = 64;

/// The fold label for consumers past the cardinality cap.
pub const OTHER_CONSUMER_LABEL: &str = "__other__";

/// The outcome of a single policy enforcement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Data released at full fidelity.
    Allowed,
    /// Data released, but behavior-abstracted (inference label instead of
    /// raw samples).
    Abstracted,
    /// Request refused outright.
    Denied,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Allowed => "allowed",
            Outcome::Abstracted => "abstracted",
            Outcome::Denied => "denied",
        }
    }
}

/// RAII guard restoring the previous consumer scope on drop.
pub struct ConsumerScope {
    _private: (),
}

impl Drop for ConsumerScope {
    fn drop(&mut self) {
        CURRENT_CONSUMER.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Tags this thread with the consumer on whose behalf the enclosed work
/// runs. Scopes nest; the innermost wins.
pub fn consumer_scope(consumer: impl Into<String>) -> ConsumerScope {
    CURRENT_CONSUMER.with(|stack| stack.borrow_mut().push(consumer.into()));
    ConsumerScope { _private: () }
}

/// The consumer the current thread is serving, or `"unknown"` when
/// enforcement runs outside a request scope (tests, offline tools).
pub fn current_consumer() -> String {
    CURRENT_CONSUMER.with(|stack| {
        stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// RAII guard detaching the ledger scope; syncs the ledger on drop so the
/// enclosed decisions are durable before the response leaves.
pub struct LedgerScope {
    _private: (),
}

impl Drop for LedgerScope {
    fn drop(&mut self) {
        let popped = CURRENT_LEDGER.with(|stack| stack.borrow_mut().pop());
        if let Some((ledger, _)) = popped {
            ledger.sync();
        }
    }
}

/// Routes decisions recorded on this thread into `ledger`, attributed to
/// `contributor` (whose data is being decided over). Scopes nest; the
/// innermost wins.
pub fn ledger_scope(ledger: Arc<dyn AuditLedger>, contributor: impl Into<String>) -> LedgerScope {
    CURRENT_LEDGER.with(|stack| stack.borrow_mut().push((ledger, contributor.into())));
    LedgerScope { _private: () }
}

/// The bounded consumer label for `family`: the consumer's own name while
/// the family has seen fewer than [`MAX_CONSUMER_LABELS`] distinct
/// consumers (or this one already has a slot), else
/// [`OTHER_CONSUMER_LABEL`]. Used by every counter family keyed on
/// consumer so an open-registration deployment cannot blow up scrape
/// cardinality.
pub fn consumer_label(family: &str, consumer: &str) -> String {
    static SEEN: OnceLock<Mutex<BTreeMap<String, BTreeSet<String>>>> = OnceLock::new();
    let mut seen = SEEN.get_or_init(|| Mutex::new(BTreeMap::new())).lock();
    let consumers = seen.entry(family.to_string()).or_default();
    if consumers.contains(consumer) {
        return consumer.to_string();
    }
    if consumers.len() < MAX_CONSUMER_LABELS {
        consumers.insert(consumer.to_string());
        return consumer.to_string();
    }
    OTHER_CONSUMER_LABEL.to_string()
}

/// Records one enforcement decision in the global registry:
/// `sensorsafe_policy_decisions_total{consumer, decision}` plus, when the
/// dependency-closure rule suppressed channels, the suppression counters.
/// Decision metadata-free variant of [`record_decision`], kept for callers
/// with no rule provenance.
pub fn record_enforcement(outcome: Outcome, suppressed_channels: u64) {
    record_decision(outcome, suppressed_channels, &[]);
}

/// Records one enforcement decision with its rule provenance: bumps the
/// per-consumer counters (bounded labels) and, when a [`ledger_scope`] is
/// active, appends a [`DecisionRecord`] — exact consumer name, matched
/// rule indices, current trace id — to the contributor's audit ledger.
pub fn record_decision(outcome: Outcome, suppressed_channels: u64, matched_rules: &[u32]) {
    let consumer = current_consumer();
    let label = consumer_label("sensorsafe_policy_decisions_total", &consumer);
    global()
        .counter(
            "sensorsafe_policy_decisions_total",
            "Policy enforcement decisions by consumer and decision.",
            &[("consumer", &label), ("decision", outcome.as_str())],
        )
        .inc();
    if suppressed_channels > 0 {
        let label = consumer_label("sensorsafe_policy_closure_suppressions_total", &consumer);
        global()
            .counter(
                "sensorsafe_policy_closure_suppressions_total",
                "Enforcement decisions in which the dependency-closure rule suppressed at least one channel.",
                &[("consumer", &label)],
            )
            .inc();
        global()
            .counter(
                "sensorsafe_policy_closure_suppressed_channels_total",
                "Channels withheld by the dependency-closure rule.",
                &[("consumer", &label)],
            )
            .add(suppressed_channels);
    }
    let scope = CURRENT_LEDGER.with(|stack| stack.borrow().last().cloned());
    let aware = crate::awareness::current_scope();
    if scope.is_none() && aware.is_none() {
        return;
    }
    // One record serves both sinks: the ledger append and the awareness
    // observation must carry identical fields (timestamp included) so a
    // replay of the chain reproduces the live aggregates byte for byte.
    let unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let contributor = scope
        .as_ref()
        .map(|(_, c)| c.clone())
        .or_else(|| aware.as_ref().map(|(_, c, _)| c.clone()))
        .unwrap_or_default();
    let record = DecisionRecord {
        seq: 0, // assigned by the ledger
        unix_ms,
        trace_id: trace::current_context().map(|c| c.trace_id).unwrap_or(0),
        rule_epoch: aware.as_ref().map(|(_, _, e)| *e).unwrap_or(0),
        contributor,
        consumer,
        matched_rules: matched_rules.to_vec(),
        outcome,
        suppressed_channels,
    };
    if let Some((plane, _, _)) = aware {
        plane.observe(&record);
    }
    if let Some((ledger, _)) = scope {
        ledger.append(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::MemoryLedger;

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_consumer(), "unknown");
        {
            let _outer = consumer_scope("alice-doctor");
            assert_eq!(current_consumer(), "alice-doctor");
            {
                let _inner = consumer_scope("bob-insurer");
                assert_eq!(current_consumer(), "bob-insurer");
            }
            assert_eq!(current_consumer(), "alice-doctor");
        }
        assert_eq!(current_consumer(), "unknown");
    }

    #[test]
    fn record_enforcement_counts_by_consumer_and_decision() {
        let _scope = consumer_scope("audit-test-consumer");
        record_enforcement(Outcome::Allowed, 0);
        record_enforcement(Outcome::Allowed, 0);
        record_enforcement(Outcome::Abstracted, 0);
        record_enforcement(Outcome::Denied, 3);

        let get = |decision: &str| {
            global()
                .counter(
                    "sensorsafe_policy_decisions_total",
                    "Policy enforcement decisions by consumer and decision.",
                    &[("consumer", "audit-test-consumer"), ("decision", decision)],
                )
                .get()
        };
        assert_eq!(get("allowed"), 2);
        assert_eq!(get("abstracted"), 1);
        assert_eq!(get("denied"), 1);
        let suppressed = global()
            .counter(
                "sensorsafe_policy_closure_suppressed_channels_total",
                "Channels withheld by the dependency-closure rule.",
                &[("consumer", "audit-test-consumer")],
            )
            .get();
        assert_eq!(suppressed, 3);
    }

    #[test]
    fn outcome_strings() {
        assert_eq!(Outcome::Allowed.as_str(), "allowed");
        assert_eq!(Outcome::Abstracted.as_str(), "abstracted");
        assert_eq!(Outcome::Denied.as_str(), "denied");
    }

    #[test]
    fn consumer_labels_fold_into_other_past_the_cap() {
        // A synthetic family, so this flood cannot steal label slots from
        // the real families other tests (and processes) assert on.
        let family = "sensorsafe_test_cardinality_family";
        for i in 0..MAX_CONSUMER_LABELS {
            assert_eq!(consumer_label(family, &format!("c{i}")), format!("c{i}"));
        }
        // Known consumers keep their slots forever...
        assert_eq!(consumer_label(family, "c0"), "c0");
        assert_eq!(
            consumer_label(family, &format!("c{}", MAX_CONSUMER_LABELS - 1)),
            format!("c{}", MAX_CONSUMER_LABELS - 1)
        );
        // ...newcomers beyond the cap all fold into one label.
        for i in MAX_CONSUMER_LABELS..MAX_CONSUMER_LABELS + 10 {
            assert_eq!(
                consumer_label(family, &format!("c{i}")),
                OTHER_CONSUMER_LABEL
            );
        }
        // Folding is per family: a fresh family still hands out real labels.
        assert_eq!(
            consumer_label("sensorsafe_test_cardinality_family_2", "c9999"),
            "c9999"
        );
    }

    #[test]
    fn decisions_reach_the_scoped_ledger_with_exact_names() {
        let ledger = Arc::new(MemoryLedger::new());
        {
            let _ledger = ledger_scope(ledger.clone() as Arc<dyn AuditLedger>, "alice");
            let _consumer = consumer_scope("ledger-test-consumer");
            record_decision(Outcome::Abstracted, 2, &[1, 4]);
            record_decision(Outcome::Denied, 0, &[2]);
        }
        let records = ledger.recent(10);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].contributor, "alice");
        assert_eq!(records[0].consumer, "ledger-test-consumer");
        assert_eq!(records[0].matched_rules, vec![1, 4]);
        assert_eq!(records[0].outcome, Outcome::Abstracted);
        assert_eq!(records[0].suppressed_channels, 2);
        assert_eq!(records[1].matched_rules, vec![2]);
        assert_eq!(records[1].outcome, Outcome::Denied);
        assert_eq!(records[1].seq, 1);
        // Outside the scope, decisions no longer reach the ledger.
        record_decision(Outcome::Allowed, 0, &[]);
        assert_eq!(ledger.len(), 2);
    }

    #[test]
    fn ledger_records_carry_the_ambient_trace_id() {
        let ledger = Arc::new(MemoryLedger::new());
        let ctx = trace::TraceContext::root();
        {
            let _trace = trace::context_scope(ctx);
            let _ledger = ledger_scope(ledger.clone() as Arc<dyn AuditLedger>, "alice");
            record_decision(Outcome::Allowed, 0, &[0]);
        }
        assert_eq!(ledger.recent(1)[0].trace_id, ctx.trace_id);
    }
}
