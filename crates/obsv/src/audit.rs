//! Privacy-audit counters.
//!
//! SensorSafe's accountability story needs more than logs: contributors
//! should be able to see, per consumer, how many requests were served as-is,
//! served abstracted, or denied, and how often the dependency-closure rule
//! suppressed extra channels beyond what the consumer asked for. Those
//! counts are emitted from `policy::enforce`, which has no idea which
//! consumer triggered it — the datastore request handler knows. The bridge
//! is a thread-local consumer scope: the handler wraps enforcement in
//! [`consumer_scope`], and [`record_enforcement`] picks the name up from
//! thread-local storage (requests are served start-to-finish on one worker
//! thread, so this is sound).

use crate::global;
use std::cell::RefCell;

thread_local! {
    static CURRENT_CONSUMER: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The outcome of a single policy enforcement decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Data released at full fidelity.
    Allowed,
    /// Data released, but behavior-abstracted (inference label instead of
    /// raw samples).
    Abstracted,
    /// Request refused outright.
    Denied,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Allowed => "allowed",
            Outcome::Abstracted => "abstracted",
            Outcome::Denied => "denied",
        }
    }
}

/// RAII guard restoring the previous consumer scope on drop.
pub struct ConsumerScope {
    _private: (),
}

impl Drop for ConsumerScope {
    fn drop(&mut self) {
        CURRENT_CONSUMER.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Tags this thread with the consumer on whose behalf the enclosed work
/// runs. Scopes nest; the innermost wins.
pub fn consumer_scope(consumer: impl Into<String>) -> ConsumerScope {
    CURRENT_CONSUMER.with(|stack| stack.borrow_mut().push(consumer.into()));
    ConsumerScope { _private: () }
}

/// The consumer the current thread is serving, or `"unknown"` when
/// enforcement runs outside a request scope (tests, offline tools).
pub fn current_consumer() -> String {
    CURRENT_CONSUMER.with(|stack| {
        stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| "unknown".to_string())
    })
}

/// Records one enforcement decision in the global registry:
/// `sensorsafe_policy_decisions_total{consumer, decision}` plus, when the
/// dependency-closure rule suppressed channels, the suppression counters.
pub fn record_enforcement(outcome: Outcome, suppressed_channels: u64) {
    let consumer = current_consumer();
    global()
        .counter(
            "sensorsafe_policy_decisions_total",
            "Policy enforcement decisions by consumer and decision.",
            &[("consumer", &consumer), ("decision", outcome.as_str())],
        )
        .inc();
    if suppressed_channels > 0 {
        global()
            .counter(
                "sensorsafe_policy_closure_suppressions_total",
                "Enforcement decisions in which the dependency-closure rule suppressed at least one channel.",
                &[("consumer", &consumer)],
            )
            .inc();
        global()
            .counter(
                "sensorsafe_policy_closure_suppressed_channels_total",
                "Channels withheld by the dependency-closure rule.",
                &[("consumer", &consumer)],
            )
            .add(suppressed_channels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_consumer(), "unknown");
        {
            let _outer = consumer_scope("alice-doctor");
            assert_eq!(current_consumer(), "alice-doctor");
            {
                let _inner = consumer_scope("bob-insurer");
                assert_eq!(current_consumer(), "bob-insurer");
            }
            assert_eq!(current_consumer(), "alice-doctor");
        }
        assert_eq!(current_consumer(), "unknown");
    }

    #[test]
    fn record_enforcement_counts_by_consumer_and_decision() {
        let _scope = consumer_scope("audit-test-consumer");
        record_enforcement(Outcome::Allowed, 0);
        record_enforcement(Outcome::Allowed, 0);
        record_enforcement(Outcome::Abstracted, 0);
        record_enforcement(Outcome::Denied, 3);

        let get = |decision: &str| {
            global()
                .counter(
                    "sensorsafe_policy_decisions_total",
                    "Policy enforcement decisions by consumer and decision.",
                    &[("consumer", "audit-test-consumer"), ("decision", decision)],
                )
                .get()
        };
        assert_eq!(get("allowed"), 2);
        assert_eq!(get("abstracted"), 1);
        assert_eq!(get("denied"), 1);
        let suppressed = global()
            .counter(
                "sensorsafe_policy_closure_suppressed_channels_total",
                "Channels withheld by the dependency-closure rule.",
                &[("consumer", "audit-test-consumer")],
            )
            .get();
        assert_eq!(suppressed, 3);
    }

    #[test]
    fn outcome_strings() {
        assert_eq!(Outcome::Allowed.as_str(), "allowed");
        assert_eq!(Outcome::Abstracted.as_str(), "abstracted");
        assert_eq!(Outcome::Denied.as_str(), "denied");
    }
}
