//! Tamper-evident audit ledger: the durable half of the accountability
//! story.
//!
//! Counters (see [`crate::audit`]) answer "how many times"; contributors
//! also deserve "exactly when, by whom, under which rule" — and that record
//! must survive restarts and resist after-the-fact editing. This module
//! defines the ledger's *content and integrity model*; file persistence
//! (with the WAL's fsync discipline) lives in the `store` crate's
//! `FileLedger`, keeping obsv free of I/O policy.
//!
//! Integrity model: each [`DecisionRecord`] is encoded to a canonical
//! binary payload and hash-chained — `hash_i = SHA256(hash_{i-1} ||
//! payload_i)`, genesis all-zero. A frame on disk is
//! `u32 payload_len (LE) | payload | 32-byte hash`. [`verify_frames`]
//! recomputes the chain: any in-place byte flip breaks a hash (or tears a
//! frame), and any lost tail is caught against the expected [`ChainHead`]
//! (count + final hash), which the file backend persists in a sidecar.

use crate::audit::Outcome;
use parking_lot::Mutex;
use sensorsafe_auth::Sha256;

/// The all-zero hash the chain starts from.
pub const GENESIS_HASH: [u8; 32] = [0u8; 32];

/// One enforcement decision as remembered forever: who asked, whose data,
/// which rules fired, and what left the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Position in the chain (0-based), assigned by the ledger on append.
    pub seq: u64,
    /// Wall-clock time of the decision (ms since the Unix epoch).
    pub unix_ms: u64,
    /// The request tree that triggered enforcement (0 when untraced).
    pub trace_id: u64,
    /// The contributor's rule-set epoch that was live when the decision
    /// was made (0 when unknown). Awareness analytics attribute rule hits
    /// to the epoch so an epoch bump snapshots the old attribution.
    pub rule_epoch: u64,
    /// Whose data was decided over.
    pub contributor: String,
    /// Who asked for it.
    pub consumer: String,
    /// Indices (into the contributor's rule document) of the rules that
    /// matched this window, in evaluation order.
    pub matched_rules: Vec<u32>,
    /// What enforcement concluded.
    pub outcome: Outcome,
    /// Channels withheld by the dependency-closure rule.
    pub suppressed_channels: u64,
}

impl DecisionRecord {
    /// Canonical binary payload (what the hash chain covers).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.contributor.len() + self.consumer.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.unix_ms.to_le_bytes());
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.extend_from_slice(&self.rule_epoch.to_le_bytes());
        encode_str(&mut out, &self.contributor);
        encode_str(&mut out, &self.consumer);
        out.push(match self.outcome {
            Outcome::Allowed => 0,
            Outcome::Abstracted => 1,
            Outcome::Denied => 2,
        });
        out.extend_from_slice(&self.suppressed_channels.to_le_bytes());
        out.extend_from_slice(&(self.matched_rules.len() as u16).to_le_bytes());
        for idx in &self.matched_rules {
            out.extend_from_slice(&idx.to_le_bytes());
        }
        out
    }

    /// Decodes a payload produced by [`DecisionRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<DecisionRecord, LedgerError> {
        let mut cursor = Cursor {
            bytes: payload,
            pos: 0,
        };
        let seq = cursor.u64()?;
        let unix_ms = cursor.u64()?;
        let trace_id = cursor.u64()?;
        let rule_epoch = cursor.u64()?;
        let contributor = cursor.string()?;
        let consumer = cursor.string()?;
        let outcome = match cursor.u8()? {
            0 => Outcome::Allowed,
            1 => Outcome::Abstracted,
            2 => Outcome::Denied,
            tag => return Err(LedgerError::Decode(format!("bad outcome tag {tag}"))),
        };
        let suppressed_channels = cursor.u64()?;
        let matched = cursor.u16()? as usize;
        let mut matched_rules = Vec::with_capacity(matched.min(1024));
        for _ in 0..matched {
            matched_rules.push(cursor.u32()?);
        }
        if cursor.pos != payload.len() {
            return Err(LedgerError::Decode("trailing payload bytes".into()));
        }
        Ok(DecisionRecord {
            seq,
            unix_ms,
            trace_id,
            rule_epoch,
            contributor,
            consumer,
            matched_rules,
            outcome,
            suppressed_channels,
        })
    }
}

fn encode_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(u16::MAX as usize);
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], LedgerError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| LedgerError::Decode("payload too short".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, LedgerError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, LedgerError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, LedgerError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, LedgerError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self) -> Result<String, LedgerError> {
        let len = self.u16()? as usize;
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| LedgerError::Decode("non-UTF-8 string".into()))
    }
}

/// Why a ledger failed to verify (or load).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LedgerError {
    /// A frame was cut short — mid-frame truncation or a corrupted length.
    Torn { offset: usize },
    /// A record's stored hash does not match the recomputed chain: the
    /// bytes were edited after being written.
    HashMismatch { seq: u64 },
    /// The payload bytes hash correctly but do not parse.
    Decode(String),
    /// The chain ends early or on the wrong hash vs. the recorded head —
    /// whole records were removed from the tail (or the head is stale).
    HeadMismatch { expected: u64, found: u64 },
    /// Underlying I/O failure (file backend).
    Io(String),
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::Torn { offset } => write!(f, "torn ledger frame at byte {offset}"),
            LedgerError::HashMismatch { seq } => {
                write!(f, "hash chain broken at record {seq} (tampered)")
            }
            LedgerError::Decode(msg) => write!(f, "undecodable ledger record: {msg}"),
            LedgerError::HeadMismatch { expected, found } => write!(
                f,
                "ledger truncated: head records {expected}, file has {found}"
            ),
            LedgerError::Io(msg) => write!(f, "ledger i/o error: {msg}"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The chain's expected end state: how many records and the final hash.
/// The file backend persists this in a sidecar so tail truncation of the
/// ledger file itself is detectable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainHead {
    pub count: u64,
    pub hash: [u8; 32],
}

impl ChainHead {
    /// The head of an empty chain.
    pub fn genesis() -> ChainHead {
        ChainHead {
            count: 0,
            hash: GENESIS_HASH,
        }
    }

    /// 40-byte sidecar encoding.
    pub fn encode(&self) -> [u8; 40] {
        let mut out = [0u8; 40];
        out[..8].copy_from_slice(&self.count.to_le_bytes());
        out[8..].copy_from_slice(&self.hash);
        out
    }

    /// Decodes a sidecar written by [`ChainHead::encode`].
    pub fn decode(bytes: &[u8]) -> Result<ChainHead, LedgerError> {
        if bytes.len() != 40 {
            return Err(LedgerError::Decode(format!(
                "chain head must be 40 bytes, got {}",
                bytes.len()
            )));
        }
        let mut hash = [0u8; 32];
        hash.copy_from_slice(&bytes[8..]);
        Ok(ChainHead {
            count: u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            hash,
        })
    }
}

/// `SHA256(prev || payload)` — one link of the chain.
pub fn chain_hash(prev: &[u8; 32], payload: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(prev);
    hasher.update(payload);
    hasher.finalize()
}

/// Appends one framed record (`u32 len | payload | hash`) to `out`,
/// returning the new chain hash.
pub fn encode_frame(out: &mut Vec<u8>, prev: &[u8; 32], record: &DecisionRecord) -> [u8; 32] {
    let payload = record.encode();
    let hash = chain_hash(prev, &payload);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&hash);
    hash
}

/// Walks a ledger byte image, recomputing the hash chain, and returns the
/// records it attests to. With `expected` (the persisted [`ChainHead`]),
/// tail truncation at frame granularity is also detected; without it, only
/// in-place tampering and torn frames are.
pub fn verify_frames(
    bytes: &[u8],
    expected: Option<&ChainHead>,
) -> Result<Vec<DecisionRecord>, LedgerError> {
    let mut records = Vec::new();
    let mut prev = GENESIS_HASH;
    let mut pos = 0usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(LedgerError::Torn { offset: pos });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let payload_start = pos + 4;
        let hash_start = payload_start
            .checked_add(len)
            .ok_or(LedgerError::Torn { offset: pos })?;
        let frame_end = hash_start
            .checked_add(32)
            .ok_or(LedgerError::Torn { offset: pos })?;
        if frame_end > bytes.len() {
            return Err(LedgerError::Torn { offset: pos });
        }
        let payload = &bytes[payload_start..hash_start];
        let stored: [u8; 32] = bytes[hash_start..frame_end].try_into().unwrap();
        let computed = chain_hash(&prev, payload);
        if stored != computed {
            return Err(LedgerError::HashMismatch {
                seq: records.len() as u64,
            });
        }
        let record = DecisionRecord::decode(payload)?;
        if record.seq != records.len() as u64 {
            return Err(LedgerError::Decode(format!(
                "record claims seq {} at position {}",
                record.seq,
                records.len()
            )));
        }
        records.push(record);
        prev = computed;
        pos = frame_end;
    }
    if let Some(head) = expected {
        if head.count != records.len() as u64 || head.hash != prev {
            return Err(LedgerError::HeadMismatch {
                expected: head.count,
                found: records.len() as u64,
            });
        }
    }
    Ok(records)
}

fn appends_counter() -> std::sync::Arc<crate::Counter> {
    crate::global().counter(
        "sensorsafe_audit_ledger_appends_total",
        "Enforcement decisions appended to an audit ledger.",
        &[],
    )
}

/// A pushed-down ledger query: which records to match and how large a
/// page to materialize. Matching happens inside the backend so a page
/// view never clones the whole ledger (the old `/ui/audit` bug).
#[derive(Clone, Debug, Default)]
pub struct AuditFilter {
    /// Only records for this contributor (all contributors when `None`).
    pub contributor: Option<String>,
    /// Only records for this consumer.
    pub consumer: Option<String>,
    /// Only records with `unix_ms >= from_ms`.
    pub from_ms: Option<u64>,
    /// Only records with `unix_ms <= to_ms`.
    pub to_ms: Option<u64>,
    /// Only records with `seq < before` — the pagination cursor: pass the
    /// oldest seq of the previous page to walk backwards in time.
    pub before: Option<u64>,
    /// Maximum records to materialize (the newest matches win).
    pub limit: usize,
}

impl AuditFilter {
    /// Whether `record` passes every set criterion.
    pub fn matches(&self, record: &DecisionRecord) -> bool {
        if let Some(c) = &self.contributor {
            if &record.contributor != c {
                return false;
            }
        }
        if let Some(c) = &self.consumer {
            if &record.consumer != c {
                return false;
            }
        }
        if let Some(from) = self.from_ms {
            if record.unix_ms < from {
                return false;
            }
        }
        if let Some(to) = self.to_ms {
            if record.unix_ms > to {
                return false;
            }
        }
        if let Some(before) = self.before {
            if record.seq >= before {
                return false;
            }
        }
        true
    }
}

/// One page of ledger query results.
#[derive(Clone, Debug, Default)]
pub struct AuditPage {
    /// The newest `limit` matching records, oldest first (same ordering
    /// as [`AuditLedger::recent`]).
    pub records: Vec<DecisionRecord>,
    /// Total records matching the filter's contributor/consumer/time
    /// criteria, ignoring `before` and `limit` — lets callers say
    /// "showing 50 of 1,204".
    pub matched: u64,
}

/// Shared backend implementation of [`AuditLedger::page`] for backends
/// that mirror records in memory: one backward scan, cloning only the
/// records that land in the page.
pub fn page_records(records: &[DecisionRecord], filter: &AuditFilter) -> AuditPage {
    let mut page = Vec::new();
    let mut matched = 0u64;
    let unpaged = AuditFilter {
        before: None,
        limit: 0,
        ..filter.clone()
    };
    for record in records.iter().rev() {
        if !unpaged.matches(record) {
            continue;
        }
        matched += 1;
        if page.len() < filter.limit && filter.before.is_none_or(|b| record.seq < b) {
            page.push(record.clone());
        }
    }
    page.reverse();
    AuditPage {
        records: page,
        matched,
    }
}

/// Where the ledger's decision stream is persisted and queried from.
/// `append` assigns the record's `seq` and returns it; callers must not
/// set `seq` themselves. Durability is backend-defined: `sync` is the
/// point after which appended records must survive a crash (a no-op for
/// the in-memory backend).
pub trait AuditLedger: Send + Sync {
    /// Appends one decision, assigning and returning its chain position.
    fn append(&self, record: DecisionRecord) -> u64;
    /// Makes every appended record durable (file backends fsync here).
    fn sync(&self);
    /// Records appended so far.
    fn len(&self) -> u64;
    /// Whether no record has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// The newest `limit` records, oldest first.
    fn recent(&self, limit: usize) -> Vec<DecisionRecord>;
    /// Filtered, limited page of records — matching runs inside the
    /// backend so callers never materialize the whole ledger.
    fn page(&self, filter: &AuditFilter) -> AuditPage;
}

/// Volatile ledger for memory-only stores and tests: same chain-position
/// semantics as the file backend, no durability.
#[derive(Default)]
pub struct MemoryLedger {
    records: Mutex<Vec<DecisionRecord>>,
}

impl MemoryLedger {
    pub fn new() -> MemoryLedger {
        MemoryLedger::default()
    }
}

impl AuditLedger for MemoryLedger {
    fn append(&self, mut record: DecisionRecord) -> u64 {
        let mut records = self.records.lock();
        record.seq = records.len() as u64;
        let seq = record.seq;
        records.push(record);
        appends_counter().inc();
        seq
    }

    fn sync(&self) {}

    fn len(&self) -> u64 {
        self.records.lock().len() as u64
    }

    fn recent(&self, limit: usize) -> Vec<DecisionRecord> {
        let records = self.records.lock();
        let skip = records.len().saturating_sub(limit);
        records[skip..].to_vec()
    }

    fn page(&self, filter: &AuditFilter) -> AuditPage {
        page_records(&self.records.lock(), filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, consumer: &str) -> DecisionRecord {
        DecisionRecord {
            seq,
            unix_ms: 1_700_000_000_000 + seq,
            trace_id: 0xfeed_0000 + seq,
            rule_epoch: 1 + seq / 4,
            contributor: "alice".into(),
            consumer: consumer.into(),
            matched_rules: vec![0, 3],
            outcome: Outcome::Abstracted,
            suppressed_channels: 2,
        }
    }

    fn chain(n: u64) -> (Vec<u8>, ChainHead) {
        let mut bytes = Vec::new();
        let mut prev = GENESIS_HASH;
        for seq in 0..n {
            prev = encode_frame(&mut bytes, &prev, &record(seq, "bob"));
        }
        (
            bytes,
            ChainHead {
                count: n,
                hash: prev,
            },
        )
    }

    #[test]
    fn record_roundtrips() {
        let original = record(7, "bob");
        let decoded = DecisionRecord::decode(&original.encode()).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn empty_strings_and_rules_roundtrip() {
        let original = DecisionRecord {
            seq: 0,
            unix_ms: 0,
            trace_id: 0,
            rule_epoch: 0,
            contributor: String::new(),
            consumer: String::new(),
            matched_rules: vec![],
            outcome: Outcome::Denied,
            suppressed_channels: 0,
        };
        assert_eq!(
            DecisionRecord::decode(&original.encode()).unwrap(),
            original
        );
    }

    #[test]
    fn intact_chain_verifies_to_its_records() {
        let (bytes, head) = chain(5);
        let records = verify_frames(&bytes, Some(&head)).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4], record(4, "bob"));
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let (bytes, head) = chain(3);
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x40;
            assert!(
                verify_frames(&tampered, Some(&head)).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let (bytes, head) = chain(3);
        // Every proper prefix fails: mid-frame cuts are torn, frame-aligned
        // cuts miss the head.
        for cut in 0..bytes.len() {
            assert!(
                verify_frames(&bytes[..cut], Some(&head)).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn frame_aligned_truncation_needs_the_head() {
        let (bytes, _head) = chain(3);
        let (two, head_two) = chain(2);
        // Without an expected head, dropping the last record still verifies
        // (it is a valid shorter chain) — which is exactly why the file
        // backend persists the head sidecar.
        assert_eq!(verify_frames(&two, None).unwrap().len(), 2);
        assert_eq!(bytes[..two.len()], two[..]);
        assert!(verify_frames(&two, Some(&head_two)).is_ok());
    }

    #[test]
    fn chain_head_roundtrips() {
        let (_, head) = chain(4);
        assert_eq!(ChainHead::decode(&head.encode()).unwrap(), head);
        assert!(ChainHead::decode(&[0u8; 39]).is_err());
    }

    #[test]
    fn memory_ledger_assigns_sequence_and_serves_recent() {
        let ledger = MemoryLedger::new();
        for i in 0..10 {
            let assigned = ledger.append(record(999, &format!("c{i}")));
            assert_eq!(assigned, i);
        }
        assert_eq!(ledger.len(), 10);
        let recent = ledger.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].consumer, "c7");
        assert_eq!(recent[2].consumer, "c9");
        assert_eq!(recent[2].seq, 9);
    }

    #[test]
    fn page_filters_limits_and_paginates_without_full_scans() {
        let ledger = MemoryLedger::new();
        for i in 0..20u64 {
            let mut r = record(0, if i % 2 == 0 { "bob" } else { "carol" });
            r.contributor = if i % 4 == 0 {
                "dana".into()
            } else {
                "alice".into()
            };
            ledger.append(r);
        }
        // Contributor filter + limit: the newest matches win, oldest first.
        let page = ledger.page(&AuditFilter {
            contributor: Some("alice".into()),
            limit: 5,
            ..AuditFilter::default()
        });
        assert_eq!(page.matched, 15);
        assert_eq!(page.records.len(), 5);
        assert!(page.records.iter().all(|r| r.contributor == "alice"));
        assert!(page.records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(page.records.last().unwrap().seq, 19);

        // Pagination cursor: `before` pages backwards while `matched`
        // still reports the full filtered population.
        let oldest = page.records.first().unwrap().seq;
        let older = ledger.page(&AuditFilter {
            contributor: Some("alice".into()),
            before: Some(oldest),
            limit: 5,
            ..AuditFilter::default()
        });
        assert_eq!(older.matched, 15);
        assert_eq!(older.records.len(), 5);
        assert!(older.records.iter().all(|r| r.seq < oldest));

        // Consumer filter composes.
        let bob = ledger.page(&AuditFilter {
            contributor: Some("alice".into()),
            consumer: Some("bob".into()),
            limit: 100,
            ..AuditFilter::default()
        });
        assert_eq!(bob.matched as usize, bob.records.len());
        assert!(bob
            .records
            .iter()
            .all(|r| r.consumer == "bob" && r.contributor == "alice"));
    }
}
