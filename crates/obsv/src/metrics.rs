//! Lock-minimal metric primitives and the registry that owns them.
//!
//! Handles (`Arc<Counter>`, `Arc<Gauge>`, `Arc<Histogram>`) are fetched once
//! (registry lookup takes a short `RwLock` read) and then updated with
//! relaxed atomics only. Counters and histograms are sharded: each thread is
//! pinned to one of [`SHARDS`] cache-padded cells on first use, so
//! concurrent writers on different cores do not bounce a cache line.
//! Scrapes merge the shards.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of per-metric shards; a small power of two is enough to take
/// contention off the hot path without bloating scrape cost.
pub const SHARDS: usize = 16;

/// Upper bounds (seconds) for request-latency histograms, log-ish spaced
/// from 50µs to 2.5s. The final +Inf bucket is implicit.
pub const DEFAULT_LATENCY_BUCKETS: &[f64] = &[
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5,
];

#[repr(align(64))]
struct CachePadded<T>(T);

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Sticky shard index: threads round-robin onto shards at first use.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// Monotonic counter.
pub struct Counter {
    enabled: Arc<AtomicBool>,
    shards: Box<[CachePadded<AtomicU64>]>,
}

impl Counter {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Counter {
            enabled,
            shards: (0..SHARDS)
                .map(|_| CachePadded(AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Merged value across shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-write-wins signed gauge.
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: AtomicI64,
}

impl Gauge {
    fn new(enabled: Arc<AtomicBool>) -> Self {
        Gauge {
            enabled,
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistogramShard {
    /// One cell per finite bound plus the +Inf overflow bucket.
    counts: Box<[AtomicU64]>,
    sum_nanos: AtomicU64,
}

/// Fixed-bucket histogram; quantiles come from bucket interpolation on a
/// merged [`HistogramSnapshot`].
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    bounds: Arc<[f64]>,
    shards: Box<[CachePadded<HistogramShard>]>,
}

impl Histogram {
    fn new(enabled: Arc<AtomicBool>, bounds: Arc<[f64]>) -> Self {
        let buckets = bounds.len() + 1;
        Histogram {
            enabled,
            bounds: bounds.clone(),
            shards: (0..SHARDS)
                .map(|_| {
                    CachePadded(HistogramShard {
                        counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
                        sum_nanos: AtomicU64::new(0),
                    })
                })
                .collect(),
        }
    }

    #[inline]
    pub fn observe(&self, duration: Duration) {
        self.observe_secs(duration.as_secs_f64());
    }

    #[inline]
    pub fn observe_secs(&self, value: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let bucket = self.bounds.partition_point(|&b| b < value);
        let shard = &self.shards[shard_index()].0;
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        let nanos = (value * 1e9).clamp(0.0, u64::MAX as f64) as u64;
        shard.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Merges every shard into one scrape-stable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.bounds.len() + 1];
        let mut sum_nanos = 0u64;
        for shard in self.shards.iter() {
            for (cell, total) in shard.0.counts.iter().zip(counts.iter_mut()) {
                *total += cell.load(Ordering::Relaxed);
            }
            sum_nanos = sum_nanos.saturating_add(shard.0.sum_nanos.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts,
            sum: sum_nanos as f64 * 1e-9,
        }
    }
}

/// A merged point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket (not cumulative) counts; `counts[bounds.len()]` is +Inf.
    pub counts: Vec<u64>,
    /// Sum of observed values in seconds.
    pub sum: f64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Combines two snapshots observed against identical bucket layouts.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, other.bounds, "bucket layouts differ");
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            sum: self.sum + other.sum,
        }
    }

    /// Quantile estimate by linear interpolation inside the bucket that
    /// holds the requested rank. Returns 0.0 for an empty histogram; values
    /// landing in the +Inf bucket report the largest finite bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &bucket_count) in self.counts.iter().enumerate() {
            let next = cumulative + bucket_count;
            if (next as f64) >= rank && bucket_count > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // +Inf bucket: report the largest finite bound rather
                    // than inventing an extrapolation.
                    return self.bounds.last().copied().unwrap_or(0.0);
                };
                let into_bucket =
                    ((rank - cumulative as f64) / bucket_count as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * into_bucket;
            }
            cumulative = next;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Sorted `(key, value)` label pairs identifying one series in a family.
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

pub(crate) struct Family<M> {
    pub(crate) help: String,
    pub(crate) series: BTreeMap<LabelSet, Arc<M>>,
}

#[derive(Default)]
pub(crate) struct RegistryInner {
    pub(crate) counters: BTreeMap<String, Family<Counter>>,
    pub(crate) gauges: BTreeMap<String, Family<Gauge>>,
    pub(crate) histograms: BTreeMap<String, Family<Histogram>>,
}

/// A namespace of metric families. Lookups are idempotent: the same
/// `(name, labels)` always yields the same shared handle.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    pub(crate) inner: RwLock<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            inner: RwLock::new(RegistryInner::default()),
        }
    }

    /// Runtime kill switch: disabled registries reduce every update to a
    /// relaxed load and branch (the overhead-bench baseline).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let set = label_set(labels);
        if let Some(family) = self.inner.read().counters.get(name) {
            if let Some(handle) = family.series.get(&set) {
                return handle.clone();
            }
        }
        let mut inner = self.inner.write();
        let family = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        family
            .series
            .entry(set)
            .or_insert_with(|| Arc::new(Counter::new(self.enabled.clone())))
            .clone()
    }

    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let set = label_set(labels);
        if let Some(family) = self.inner.read().gauges.get(name) {
            if let Some(handle) = family.series.get(&set) {
                return handle.clone();
            }
        }
        let mut inner = self.inner.write();
        let family = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        family
            .series
            .entry(set)
            .or_insert_with(|| Arc::new(Gauge::new(self.enabled.clone())))
            .clone()
    }

    /// `bounds: None` uses [`DEFAULT_LATENCY_BUCKETS`]. All series of one
    /// family share the bucket layout of the first registration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
    ) -> Arc<Histogram> {
        let set = label_set(labels);
        if let Some(family) = self.inner.read().histograms.get(name) {
            if let Some(handle) = family.series.get(&set) {
                return handle.clone();
            }
        }
        let mut inner = self.inner.write();
        let family = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        let layout: Arc<[f64]> = family
            .series
            .values()
            .next()
            .map(|h| h.bounds.clone())
            .unwrap_or_else(|| bounds.unwrap_or(DEFAULT_LATENCY_BUCKETS).into());
        family
            .series
            .entry(set)
            .or_insert_with(|| Arc::new(Histogram::new(self.enabled.clone(), layout)))
            .clone()
    }

    /// Prometheus text exposition of every family (see [`crate::expose`]).
    pub fn encode(&self) -> String {
        crate::expose::encode(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_merges_across_threads() {
        let registry = Registry::new();
        let counter = registry.counter("jobs_total", "jobs", &[]);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = registry.counter("jobs_total", "jobs", &[]);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 8000);
    }

    #[test]
    fn same_labels_same_handle() {
        let registry = Registry::new();
        let a = registry.counter("x_total", "x", &[("b", "2"), ("a", "1")]);
        let b = registry.counter("x_total", "x", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn disabled_registry_drops_updates() {
        let registry = Registry::new();
        let counter = registry.counter("y_total", "y", &[]);
        let histogram = registry.histogram("y_seconds", "y", &[], None);
        registry.set_enabled(false);
        counter.inc();
        histogram.observe_secs(0.001);
        assert_eq!(counter.get(), 0);
        assert_eq!(histogram.snapshot().count(), 0);
        registry.set_enabled(true);
        counter.inc();
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let registry = Registry::new();
        let gauge = registry.gauge("depth", "queue depth", &[]);
        gauge.set(7);
        gauge.add(-2);
        assert_eq!(gauge.get(), 5);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let registry = Registry::new();
        let hist = registry.histogram(
            "lat_seconds",
            "latency",
            &[],
            Some(&[0.001, 0.01, 0.1, 1.0]),
        );
        for _ in 0..90 {
            hist.observe_secs(0.005);
        }
        for _ in 0..10 {
            hist.observe_secs(0.05);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.p50();
        assert!((0.001..=0.01).contains(&p50), "p50 = {p50}");
        let p99 = snap.p99();
        assert!((0.01..=0.1).contains(&p99), "p99 = {p99}");
        assert!(snap.p90() <= p99);
        assert!((snap.sum() - (90.0 * 0.005 + 10.0 * 0.05)).abs() < 1e-6);
    }

    #[test]
    fn histogram_overflow_bucket_reports_last_bound() {
        let registry = Registry::new();
        let hist = registry.histogram("h_seconds", "h", &[], Some(&[0.1, 1.0]));
        hist.observe_secs(50.0);
        let snap = hist.snapshot();
        assert_eq!(snap.counts, vec![0, 0, 1]);
        assert_eq!(snap.quantile(0.99), 1.0);
    }
}
